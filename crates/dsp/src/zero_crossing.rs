//! Zero-crossing detection on band-limited signals.
//!
//! TagBreathe estimates the instantaneous breathing rate from the timestamps
//! of zero crossings of the extracted (low-pass-filtered, zero-mean)
//! breathing signal (Eq. 5). Each breath contributes two crossings, so
//! `M` buffered crossings span `(M − 1)/2` breaths.
//!
//! The core is the incremental [`ZeroCrossingStream`]: push `(time, value)`
//! samples one at a time and receive crossings as they are confirmed. The
//! batch [`find_zero_crossings`] is a thin driver over it, so both the
//! recorded-trace and the real-time paths share one state machine.

use std::collections::VecDeque;

/// Direction of a zero crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrossingDirection {
    /// Signal goes from negative to positive.
    Rising,
    /// Signal goes from positive to negative.
    Falling,
}

/// A detected zero crossing with linearly interpolated sub-sample timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZeroCrossing {
    /// Interpolated crossing time in seconds.
    pub time: f64,
    /// Crossing direction.
    pub direction: CrossingDirection,
}

/// Incremental zero-crossing detector with hysteresis.
///
/// State per stream: the last confirmed polarity plus the short run of
/// samples since the last confirmed sample (the confirmed sample itself and
/// any in-band samples after it). On a polarity flip the crossing is located
/// by scanning that run for the first adjacent pair straddling zero and
/// interpolating linearly — exactly what the batch scan does, so driving
/// this operator over a slice reproduces [`find_zero_crossings`].
///
/// The buffered run is bounded by the longest stay inside the hysteresis
/// band, which for a band-limited breathing signal is a handful of samples.
///
/// # Examples
///
/// ```
/// use tagbreathe_dsp::zero_crossing::{CrossingDirection, ZeroCrossingStream};
///
/// let mut zc = ZeroCrossingStream::new(0.0);
/// assert!(zc.push(0.0, -1.0).is_none());
/// let c = zc.push(0.5, 1.0).expect("crossing");
/// assert_eq!(c.direction, CrossingDirection::Rising);
/// assert!((c.time - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ZeroCrossingStream {
    hysteresis: f64,
    /// Last confirmed polarity (+1 / −1), `None` until the signal exceeds
    /// the hysteresis band the first time.
    polarity: Option<i8>,
    /// The last confirmed sample followed by every in-band sample since,
    /// as `(time, value)`. Empty until the first confirmed sample.
    pending: Vec<(f64, f64)>,
}

impl ZeroCrossingStream {
    /// Creates a detector. `hysteresis` suppresses chatter: after a crossing
    /// the signal must exceed `±hysteresis` before another crossing is
    /// accepted. Pass `0.0` for plain sign-change detection.
    ///
    /// # Panics
    ///
    /// Panics if `hysteresis` is negative.
    #[must_use]
    pub fn new(hysteresis: f64) -> Self {
        assert!(hysteresis >= 0.0, "hysteresis must be non-negative");
        ZeroCrossingStream {
            hysteresis,
            polarity: None,
            pending: Vec::new(),
        }
    }

    /// Pushes one `(time, value)` sample; returns a crossing when this
    /// sample confirms a polarity flip.
    pub fn push(&mut self, time: f64, value: f64) -> Option<ZeroCrossing> {
        let confirmed = if value > self.hysteresis {
            Some(1i8)
        } else if value < -self.hysteresis {
            Some(-1i8)
        } else {
            None
        };
        let Some(p) = confirmed else {
            // In-band sample: remember it (it may hold the true sign change)
            // but only once a confirmed sample anchors the run.
            if !self.pending.is_empty() {
                self.pending.push((time, value));
            }
            return None;
        };
        let crossing = match self.polarity {
            Some(prev) if prev != p => {
                self.pending.push((time, value));
                Some(interpolate_pending(&self.pending, p))
            }
            _ => None,
        };
        self.polarity = Some(p);
        self.pending.clear();
        self.pending.push((time, value));
        crossing
    }

    /// Number of samples currently buffered while waiting for a confirmed
    /// polarity.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Resets to the initial (no polarity seen) state.
    pub fn reset(&mut self) {
        self.polarity = None;
        self.pending.clear();
    }
}

/// Locates the crossing inside a pending run ending in a confirmed flip:
/// first adjacent pair straddling zero, else the last pair, interpolated
/// linearly between the pair's timestamps.
fn interpolate_pending(pending: &[(f64, f64)], new_polarity: i8) -> ZeroCrossing {
    debug_assert!(pending.len() >= 2);
    let mut a = 0;
    for i in 0..pending.len() - 1 {
        let ya = pending[i].1;
        let yb = pending[i + 1].1;
        let crosses = (ya <= 0.0 && yb > 0.0) || (ya >= 0.0 && yb < 0.0);
        a = i;
        if crosses {
            break;
        }
    }
    let (ta, ya) = pending[a];
    let (tb, yb) = pending[a + 1];
    let frac = if (yb - ya).abs() > f64::EPSILON {
        (-ya / (yb - ya)).clamp(0.0, 1.0)
    } else {
        0.5
    };
    let direction = if new_polarity > 0 {
        CrossingDirection::Rising
    } else {
        CrossingDirection::Falling
    };
    ZeroCrossing {
        time: ta + frac * (tb - ta),
        direction,
    }
}

/// Detects zero crossings in a uniformly sampled signal.
///
/// `start_time` is the time of `signal[0]` and `dt` the sample spacing.
/// `hysteresis` suppresses chatter: after a crossing the signal must exceed
/// `±hysteresis` before another crossing is accepted. Pass `0.0` for plain
/// sign-change detection.
///
/// This is the batch driver over [`ZeroCrossingStream`].
///
/// # Panics
///
/// Panics if `dt` is not positive or `hysteresis` is negative.
///
/// # Examples
///
/// ```
/// use tagbreathe_dsp::zero_crossing::{find_zero_crossings, CrossingDirection};
///
/// let signal = [-1.0, 1.0, -1.0];
/// let crossings = find_zero_crossings(&signal, 0.0, 0.5, 0.0);
/// assert_eq!(crossings.len(), 2);
/// assert_eq!(crossings[0].direction, CrossingDirection::Rising);
/// assert!((crossings[0].time - 0.25).abs() < 1e-12);
/// ```
pub fn find_zero_crossings(
    signal: &[f64],
    start_time: f64,
    dt: f64,
    hysteresis: f64,
) -> Vec<ZeroCrossing> {
    assert!(dt > 0.0, "sample spacing must be positive");
    let mut stream = ZeroCrossingStream::new(hysteresis);
    signal
        .iter()
        .enumerate()
        .filter_map(|(i, &x)| stream.push(start_time + i as f64 * dt, x))
        .collect()
}

/// Computes a rate in hertz from `M` buffered crossing times per Eq. (5):
/// `f = (M − 1) / (2 (t_i − t_{i−M+1}))`.
///
/// Returns `None` when fewer than two crossings are available or the span is
/// degenerate.
pub fn rate_from_crossings(crossing_times: &[f64]) -> Option<f64> {
    let m = crossing_times.len();
    if m < 2 {
        return None;
    }
    let span = crossing_times[m - 1] - crossing_times[0];
    if span <= 0.0 {
        return None;
    }
    Some((m - 1) as f64 / (2.0 * span))
}

/// Incremental Eq. (5) rate estimator: a ring buffer of the last `M`
/// crossing times. Pushing the `M`-th and every later crossing yields an
/// instantaneous rate over the trailing `M`-crossing window.
///
/// # Examples
///
/// ```
/// use tagbreathe_dsp::zero_crossing::CrossingRateEstimator;
///
/// // Crossings every 2.5 s (a 0.2 Hz breath) with the paper's M = 7.
/// let mut est = CrossingRateEstimator::new(7);
/// let mut last = None;
/// for i in 0..10 {
///     if let Some(hz) = est.push(f64::from(i) * 2.5) {
///         last = Some(hz);
///     }
/// }
/// let hz = last.expect("buffer filled");
/// assert!((hz - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CrossingRateEstimator {
    m: usize,
    times: VecDeque<f64>,
}

impl CrossingRateEstimator {
    /// Creates an estimator buffering `m` crossings (the paper uses 7).
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` (no span to divide by).
    #[must_use]
    pub fn new(m: usize) -> Self {
        assert!(m >= 2, "rate estimation needs at least two crossings");
        CrossingRateEstimator {
            m,
            times: VecDeque::with_capacity(m),
        }
    }

    /// Pushes a crossing timestamp; returns the trailing-window rate in Hz
    /// once `m` crossings are buffered (and `None` for degenerate spans).
    pub fn push(&mut self, time_s: f64) -> Option<f64> {
        if self.times.len() == self.m {
            self.times.pop_front();
        }
        self.times.push_back(time_s);
        if self.times.len() < self.m {
            return None;
        }
        rate_from_crossings(self.times.make_contiguous())
    }

    /// Number of crossings currently buffered.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether no crossings have been buffered yet.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The configured buffer length `M`.
    pub fn window(&self) -> usize {
        self.m
    }

    /// Clears the buffered crossings.
    pub fn reset(&mut self) {
        self.times.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn sine(freq: f64, sr: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * freq * i as f64 / sr).sin())
            .collect()
    }

    #[test]
    fn counts_crossings_of_sine() {
        // 0.25 Hz over 20 s → 5 full periods → 10 crossings; the signal
        // starts at exactly 0 rising, so the first crossing at t=0 has no
        // preceding negative sample and is not counted.
        let sr = 64.0;
        let signal = sine(0.25, sr, (20.0 * sr) as usize);
        let crossings = find_zero_crossings(&signal, 0.0, 1.0 / sr, 0.0);
        assert!(
            (9..=10).contains(&crossings.len()),
            "got {} crossings",
            crossings.len()
        );
    }

    #[test]
    fn crossing_times_are_interpolated() {
        let signal = [-1.0, 3.0];
        let c = find_zero_crossings(&signal, 10.0, 1.0, 0.0);
        assert_eq!(c.len(), 1);
        assert!((c[0].time - 10.25).abs() < 1e-12);
    }

    #[test]
    fn directions_alternate() {
        let signal = sine(0.5, 64.0, 640);
        let c = find_zero_crossings(&signal, 0.0, 1.0 / 64.0, 0.0);
        for pair in c.windows(2) {
            assert_ne!(pair[0].direction, pair[1].direction);
        }
    }

    #[test]
    fn hysteresis_suppresses_chatter() {
        // Small oscillation around zero should produce no crossings with a
        // hysteresis above its amplitude.
        let noise: Vec<f64> = (0..100)
            .map(|i| 0.05 * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(find_zero_crossings(&noise, 0.0, 0.01, 0.1).is_empty());
        assert!(!find_zero_crossings(&noise, 0.0, 0.01, 0.0).is_empty());
    }

    #[test]
    fn hysteresis_still_detects_large_swings() {
        let signal = sine(0.25, 64.0, 64 * 8);
        let with = find_zero_crossings(&signal, 0.0, 1.0 / 64.0, 0.2);
        let without = find_zero_crossings(&signal, 0.0, 1.0 / 64.0, 0.0);
        assert_eq!(with.len(), without.len());
    }

    #[test]
    fn rate_from_crossings_matches_eq5() -> TestResult {
        // 7 crossings of a 0.2 Hz signal: crossings every 2.5 s.
        let times: Vec<f64> = (0..7).map(|i| i as f64 * 2.5).collect();
        let f = rate_from_crossings(&times).ok_or("no rate")?;
        assert!((f - 0.2).abs() < 1e-12);
        Ok(())
    }

    #[test]
    fn rate_from_crossings_degenerate() {
        assert!(rate_from_crossings(&[]).is_none());
        assert!(rate_from_crossings(&[1.0]).is_none());
        assert!(rate_from_crossings(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn constant_signal_has_no_crossings() {
        assert!(find_zero_crossings(&[1.0; 50], 0.0, 0.1, 0.0).is_empty());
        assert!(find_zero_crossings(&[0.0; 50], 0.0, 0.1, 0.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_panics() {
        find_zero_crossings(&[1.0, -1.0], 0.0, 0.0, 0.0);
    }

    #[test]
    fn recovered_rate_of_filtered_sine() -> TestResult {
        let sr = 64.0;
        let freq = 10.0 / 60.0; // 10 bpm
        let signal = sine(freq, sr, (60.0 * sr) as usize);
        let c = find_zero_crossings(&signal, 0.0, 1.0 / sr, 0.0);
        let times: Vec<f64> = c.iter().rev().take(7).map(|z| z.time).collect();
        let times: Vec<f64> = times.into_iter().rev().collect();
        let f = rate_from_crossings(&times).ok_or("no rate")?;
        assert!((f * 60.0 - 10.0).abs() < 0.1, "got {} bpm", f * 60.0);
        Ok(())
    }

    #[test]
    fn stream_push_matches_batch_driver() {
        // Irregular-looking signal exercising in-band runs and both
        // directions; the operator and the driver must agree exactly.
        let signal: Vec<f64> = (0..400)
            .map(|i| {
                let t = i as f64 * 0.05;
                (2.0 * PI * 0.23 * t).sin() + 0.3 * (2.0 * PI * 1.7 * t).sin()
            })
            .collect();
        for hysteresis in [0.0, 0.1, 0.4] {
            let batch = find_zero_crossings(&signal, 5.0, 0.05, hysteresis);
            let mut zc = ZeroCrossingStream::new(hysteresis);
            let streamed: Vec<ZeroCrossing> = signal
                .iter()
                .enumerate()
                .filter_map(|(i, &x)| zc.push(5.0 + i as f64 * 0.05, x))
                .collect();
            assert_eq!(batch, streamed, "hysteresis {hysteresis}");
        }
    }

    #[test]
    fn stream_locates_crossing_inside_in_band_run() -> TestResult {
        // −1, (in-band) −0.05, 0.05, then confirmed 1: the true sign change
        // is between the two in-band samples, not at the confirmed pair.
        let mut zc = ZeroCrossingStream::new(0.5);
        assert!(zc.push(0.0, -1.0).is_none());
        assert!(zc.push(1.0, -0.05).is_none());
        assert!(zc.push(2.0, 0.05).is_none());
        let c = zc.push(3.0, 1.0).ok_or("crossing not confirmed")?;
        assert_eq!(c.direction, CrossingDirection::Rising);
        assert!((c.time - 1.5).abs() < 1e-12, "got {}", c.time);
        Ok(())
    }

    #[test]
    fn stream_reset_forgets_polarity() {
        let mut zc = ZeroCrossingStream::new(0.0);
        assert!(zc.push(0.0, -1.0).is_none());
        zc.reset();
        // Without the remembered negative polarity this is a first sample,
        // not a crossing.
        assert!(zc.push(1.0, 1.0).is_none());
    }

    #[test]
    fn estimator_emits_after_m_crossings() -> TestResult {
        let mut est = CrossingRateEstimator::new(4);
        assert!(est.push(0.0).is_none());
        assert!(est.push(1.0).is_none());
        assert!(est.push(2.0).is_none());
        let hz = est.push(3.0).ok_or("buffer full, rate expected")?;
        // 4 crossings over 3 s → (4−1)/(2·3) = 0.5 Hz.
        assert!((hz - 0.5).abs() < 1e-12);
        // Sliding: next crossing drops t=0.
        let hz = est.push(4.0).ok_or("rate expected")?;
        assert!((hz - 0.5).abs() < 1e-12);
        assert_eq!(est.len(), 4);
        Ok(())
    }

    #[test]
    fn estimator_matches_batch_instantaneous_loop() {
        // The estimator over a crossing list reproduces the windowed
        // rate_from_crossings sweep used by the batch rate stage.
        let times: Vec<f64> = (0..20).map(|i| 2.0 + i as f64 * 1.7).collect();
        let m = 7;
        let batch: Vec<f64> = ((m - 1)..times.len())
            .filter_map(|i| rate_from_crossings(&times[i + 1 - m..=i]))
            .collect();
        let mut est = CrossingRateEstimator::new(m);
        let streamed: Vec<f64> = times.iter().filter_map(|&t| est.push(t)).collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn estimator_degenerate_span_yields_none() {
        let mut est = CrossingRateEstimator::new(2);
        assert!(est.push(1.0).is_none());
        assert!(est.push(1.0).is_none(), "zero span must not divide");
    }

    #[test]
    #[should_panic(expected = "two crossings")]
    fn estimator_rejects_tiny_window() {
        let _ = CrossingRateEstimator::new(1);
    }
}

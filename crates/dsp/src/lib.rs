//! # tagbreathe-dsp
//!
//! Signal-processing substrate for the [TagBreathe] reproduction: everything
//! the breath-extraction pipeline needs to turn irregular phase readings into
//! a breathing-rate estimate.
//!
//! The paper's pipeline (Section IV) uses:
//!
//! * phase wrapping/differencing ([`phase`]) for the displacement computation
//!   of Eq. (3);
//! * time binning and resampling ([`resample`]) for multi-tag fusion
//!   (Eq. 6) and uniform-grid analysis;
//! * an FFT ([`fft`]) and FFT-based low-pass filter
//!   ([`filter::FftLowPass`], cutoff 0.67 Hz) — or the windowed-sinc FIR
//!   alternative ([`filter::FirFilter`]) — for breath-signal extraction;
//! * zero-crossing detection ([`zero_crossing`]) for the instantaneous rate
//!   of Eq. (5) — batch scans and the incremental
//!   [`zero_crossing::ZeroCrossingStream`] /
//!   [`zero_crossing::CrossingRateEstimator`] share one state machine;
//! * the push-based [`stream::Operator`] layer with causal filter state
//!   ([`filter::FirStream`], [`filter::Biquad`]) for real-time pipelines;
//! * spectral-peak estimation ([`spectrum`]) as the coarser FFT-peak
//!   baseline the paper discusses (resolution `1/w`).
//!
//! [TagBreathe]: https://doi.org/10.1109/ICDCS.2017.270
//!
//! # Examples
//!
//! Extract a 12 bpm tone buried in high-frequency noise:
//!
//! ```
//! use tagbreathe_dsp::filter::FftLowPass;
//! use tagbreathe_dsp::zero_crossing::{find_zero_crossings, rate_from_crossings};
//!
//! let sample_rate = 64.0;
//! let signal: Vec<f64> = (0..(64 * 60))
//!     .map(|i| {
//!         let t = i as f64 / sample_rate;
//!         (2.0 * std::f64::consts::PI * 0.2 * t).sin()
//!             + 0.4 * (2.0 * std::f64::consts::PI * 9.0 * t).sin()
//!     })
//!     .collect();
//!
//! let clean = FftLowPass::breathing_band(sample_rate)?.filter(&signal);
//! let crossings = find_zero_crossings(&clean, 0.0, 1.0 / sample_rate, 0.0);
//! let times: Vec<f64> = crossings.iter().map(|c| c.time).collect();
//! let rate_hz = rate_from_crossings(&times).expect("enough crossings");
//! assert!((rate_hz * 60.0 - 12.0).abs() < 0.5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod autocorr;
mod complex;
pub mod fft;
pub mod filter;
pub mod goertzel;
pub mod phase;
pub mod resample;
pub mod spectrum;
pub mod stats;
pub mod stft;
pub mod stream;
pub mod units;
pub mod window;
pub mod zero_crossing;

pub use complex::Complex;
pub use resample::Sample;

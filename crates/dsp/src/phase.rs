//! Phase wrapping and unwrapping helpers.
//!
//! Reader-reported phase lives in `[0, 2π)` and wraps; the displacement
//! computation of Eq. (3) needs the *smallest* phase difference between
//! consecutive same-channel readings, which is valid because the tag moves
//! far less than λ/4 between readings at ≥60 Hz sampling.

use std::f64::consts::PI;

/// Wraps an angle into `[0, 2π)`.
///
/// # Examples
///
/// ```
/// use tagbreathe_dsp::phase::wrap_to_2pi;
/// use std::f64::consts::PI;
/// assert!((wrap_to_2pi(-PI / 2.0) - 1.5 * PI).abs() < 1e-12);
/// assert!((wrap_to_2pi(5.0 * PI) - PI).abs() < 1e-12);
/// ```
#[must_use]
pub fn wrap_to_2pi(theta: f64) -> f64 {
    let tau = 2.0 * PI;
    let r = theta % tau;
    let r = if r < 0.0 { r + tau } else { r };
    // `r + tau` can round up to exactly tau for tiny negative inputs
    // (|r| below half an ulp of tau); keep the result inside [0, 2π).
    if r >= tau {
        0.0
    } else {
        r
    }
}

/// Wraps an angle difference into `(-π, π]`.
///
/// This is the minimal-rotation interpretation used when differencing two
/// consecutive phase readings.
///
/// # Examples
///
/// ```
/// use tagbreathe_dsp::phase::wrap_to_pi;
/// use std::f64::consts::PI;
/// assert!((wrap_to_pi(1.9 * PI) - (-0.1 * PI)).abs() < 1e-12);
/// ```
#[must_use]
pub fn wrap_to_pi(delta: f64) -> f64 {
    let tau = 2.0 * PI;
    let mut d = delta % tau;
    if d > PI {
        d -= tau;
    } else if d <= -PI {
        d += tau;
    }
    d
}

/// Unwraps a sequence of wrapped phase samples into a continuous sequence.
///
/// Consecutive jumps strictly larger than π are interpreted as wraps; a
/// jump of exactly ±π is ambiguous and left as-is.
///
/// Non-finite samples (NaN/±∞ from a corrupted reading) are replaced by
/// the last finite unwrapped value (0 if there is none yet) and excluded
/// from the wrap tracking, so a single bad reading cannot poison the
/// displacement integrated from this sequence (Eq. 4).
#[must_use]
pub fn unwrap(phases: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(phases.len());
    let mut offset = 0.0;
    let tau = 2.0 * PI;
    let mut prev: Option<f64> = None; // last finite raw sample
    let mut held = 0.0; // last emitted value
    for &p in phases {
        if !p.is_finite() {
            out.push(held);
            continue;
        }
        if let Some(q) = prev {
            let delta = p - q;
            if delta > PI {
                offset -= tau;
            } else if delta < -PI {
                offset += tau;
            }
        }
        held = p + offset;
        out.push(held);
        prev = Some(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_to_2pi_range() {
        for k in -20..20 {
            let theta = k as f64 * 1.7;
            let w = wrap_to_2pi(theta);
            assert!((0.0..2.0 * PI).contains(&w), "{theta} -> {w}");
            // Same angle modulo 2π.
            assert!(((w - theta) / (2.0 * PI)).fract().abs() < 1e-9);
        }
    }

    #[test]
    fn wrap_to_pi_range_and_identity_in_range() {
        assert_eq!(wrap_to_pi(0.5), 0.5);
        assert_eq!(wrap_to_pi(-0.5), -0.5);
        for k in -20..20 {
            let d = k as f64 * 0.9;
            let w = wrap_to_pi(d);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12);
        }
    }

    #[test]
    fn wrap_to_pi_picks_minimal_rotation() {
        // A reading going from 0.1 to 2π-0.1 is a -0.2 rad move, not +2π-0.2.
        let d = wrap_to_pi((2.0 * PI - 0.1) - 0.1);
        assert!((d + 0.2).abs() < 1e-12);
    }

    #[test]
    fn unwrap_recovers_linear_ramp() {
        let true_phase: Vec<f64> = (0..200).map(|i| i as f64 * 0.2).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_to_2pi(p)).collect();
        let unwrapped = unwrap(&wrapped);
        for (u, t) in unwrapped.iter().zip(&true_phase) {
            assert!((u - t).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_handles_descending_phase() {
        let true_phase: Vec<f64> = (0..200).map(|i| 100.0 - i as f64 * 0.15).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_to_2pi(p)).collect();
        let unwrapped = unwrap(&wrapped);
        // Differences must match the original.
        for i in 1..unwrapped.len() {
            let got = unwrapped[i] - unwrapped[i - 1];
            let want = true_phase[i] - true_phase[i - 1];
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_empty_and_single() {
        assert!(unwrap(&[]).is_empty());
        assert_eq!(unwrap(&[1.5]), vec![1.5]);
    }

    #[test]
    fn wrap_boundaries_are_exact() {
        // (-π, π]: +π maps to itself, -π maps to +π (the half-open edge).
        assert_eq!(wrap_to_pi(PI), PI);
        assert_eq!(wrap_to_pi(-PI), PI);
        // [0, 2π): both edges of the reader's phase range.
        assert_eq!(wrap_to_2pi(0.0), 0.0);
        assert_eq!(wrap_to_2pi(2.0 * PI), 0.0);
        assert!(wrap_to_2pi(-f64::EPSILON) < 2.0 * PI);
    }

    #[test]
    fn unwrap_jump_of_exactly_pi_is_ambiguous_and_kept() {
        // A +π step is not strictly greater than π, so it is not treated
        // as a wrap — the minimal-rotation rule has no unique answer there.
        assert_eq!(unwrap(&[0.0, PI]), vec![0.0, PI]);
        assert_eq!(unwrap(&[PI, 0.0]), vec![PI, 0.0]);
    }

    #[test]
    fn oscillation_straddling_the_wrap_boundary() {
        // A tag breathing right at the 2π seam: readings alternate between
        // just below 2π and just above 0. The unwrapped deltas must stay
        // small (the ±0.04 rad breathing motion), never jump by ~2π.
        let seam = 2.0 * PI - 0.02;
        let wrapped: Vec<f64> = (0..40)
            .map(|i| wrap_to_2pi(seam + 0.04 * ((i % 2) as f64)))
            .collect();
        let unwrapped = unwrap(&wrapped);
        for pair in unwrapped.windows(2) {
            assert!(
                (pair[1] - pair[0]).abs() < 0.05,
                "delta {} across the seam",
                pair[1] - pair[0]
            );
        }
        // Integrated displacement (sum of deltas) stays bounded by one step.
        let net = unwrapped[unwrapped.len() - 1] - unwrapped[0];
        assert!(net.abs() < 0.05, "net drift {net}");
    }

    #[test]
    fn non_finite_samples_do_not_poison_the_unwrapped_series() {
        let mut wrapped: Vec<f64> = (0..100).map(|i| wrap_to_2pi(i as f64 * 0.2)).collect();
        wrapped[30] = f64::NAN;
        wrapped[31] = f64::INFINITY;
        wrapped[60] = f64::NEG_INFINITY;
        let unwrapped = unwrap(&wrapped);
        assert_eq!(unwrapped.len(), wrapped.len());
        // Every output is finite, so any cumulative sum over it is finite.
        assert!(unwrapped.iter().all(|v| v.is_finite()));
        // Bad samples hold the last good value.
        assert_eq!(unwrapped[30], unwrapped[29]);
        assert_eq!(unwrapped[31], unwrapped[29]);
        // After the glitch the ramp is tracked again: deltas return to 0.2.
        let d = unwrapped[80] - unwrapped[79];
        assert!((d - 0.2).abs() < 1e-9, "post-glitch delta {d}");
    }

    #[test]
    fn leading_non_finite_samples_yield_zeros() {
        let unwrapped = unwrap(&[f64::NAN, f64::INFINITY, 1.0, 1.2]);
        assert_eq!(unwrapped[0], 0.0);
        assert_eq!(unwrapped[1], 0.0);
        assert_eq!(unwrapped[2], 1.0);
        assert!((unwrapped[3] - 1.2).abs() < 1e-12);
    }
}

//! Phase wrapping and unwrapping helpers.
//!
//! Reader-reported phase lives in `[0, 2π)` and wraps; the displacement
//! computation of Eq. (3) needs the *smallest* phase difference between
//! consecutive same-channel readings, which is valid because the tag moves
//! far less than λ/4 between readings at ≥60 Hz sampling.

use std::f64::consts::PI;

/// Wraps an angle into `[0, 2π)`.
///
/// # Examples
///
/// ```
/// use tagbreathe_dsp::phase::wrap_to_2pi;
/// use std::f64::consts::PI;
/// assert!((wrap_to_2pi(-PI / 2.0) - 1.5 * PI).abs() < 1e-12);
/// assert!((wrap_to_2pi(5.0 * PI) - PI).abs() < 1e-12);
/// ```
pub fn wrap_to_2pi(theta: f64) -> f64 {
    let tau = 2.0 * PI;
    let r = theta % tau;
    if r < 0.0 {
        r + tau
    } else {
        r
    }
}

/// Wraps an angle difference into `(-π, π]`.
///
/// This is the minimal-rotation interpretation used when differencing two
/// consecutive phase readings.
///
/// # Examples
///
/// ```
/// use tagbreathe_dsp::phase::wrap_to_pi;
/// use std::f64::consts::PI;
/// assert!((wrap_to_pi(1.9 * PI) - (-0.1 * PI)).abs() < 1e-12);
/// ```
pub fn wrap_to_pi(delta: f64) -> f64 {
    let tau = 2.0 * PI;
    let mut d = delta % tau;
    if d > PI {
        d -= tau;
    } else if d <= -PI {
        d += tau;
    }
    d
}

/// Unwraps a sequence of wrapped phase samples into a continuous sequence.
///
/// Consecutive jumps larger than π are interpreted as wraps.
pub fn unwrap(phases: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(phases.len());
    let mut offset = 0.0;
    let tau = 2.0 * PI;
    for (i, &p) in phases.iter().enumerate() {
        if i > 0 {
            let delta = p - phases[i - 1];
            if delta > PI {
                offset -= tau;
            } else if delta < -PI {
                offset += tau;
            }
        }
        out.push(p + offset);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_to_2pi_range() {
        for k in -20..20 {
            let theta = k as f64 * 1.7;
            let w = wrap_to_2pi(theta);
            assert!((0.0..2.0 * PI).contains(&w), "{theta} -> {w}");
            // Same angle modulo 2π.
            assert!(((w - theta) / (2.0 * PI)).fract().abs() < 1e-9);
        }
    }

    #[test]
    fn wrap_to_pi_range_and_identity_in_range() {
        assert_eq!(wrap_to_pi(0.5), 0.5);
        assert_eq!(wrap_to_pi(-0.5), -0.5);
        for k in -20..20 {
            let d = k as f64 * 0.9;
            let w = wrap_to_pi(d);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12);
        }
    }

    #[test]
    fn wrap_to_pi_picks_minimal_rotation() {
        // A reading going from 0.1 to 2π-0.1 is a -0.2 rad move, not +2π-0.2.
        let d = wrap_to_pi((2.0 * PI - 0.1) - 0.1);
        assert!((d + 0.2).abs() < 1e-12);
    }

    #[test]
    fn unwrap_recovers_linear_ramp() {
        let true_phase: Vec<f64> = (0..200).map(|i| i as f64 * 0.2).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_to_2pi(p)).collect();
        let unwrapped = unwrap(&wrapped);
        for (u, t) in unwrapped.iter().zip(&true_phase) {
            assert!((u - t).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_handles_descending_phase() {
        let true_phase: Vec<f64> = (0..200).map(|i| 100.0 - i as f64 * 0.15).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_to_2pi(p)).collect();
        let unwrapped = unwrap(&wrapped);
        // Differences must match the original.
        for i in 1..unwrapped.len() {
            let got = unwrapped[i] - unwrapped[i - 1];
            let want = true_phase[i] - true_phase[i - 1];
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_empty_and_single() {
        assert!(unwrap(&[]).is_empty());
        assert_eq!(unwrap(&[1.5]), vec![1.5]);
    }
}

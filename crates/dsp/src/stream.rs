//! The push-based operator abstraction shared by the batch and real-time
//! pipelines.
//!
//! A [`Operator`] is a stateful stage: push one input, receive zero or more
//! outputs. Batch functions throughout the workspace are thin drivers that
//! fold a slice through an operator (see e.g.
//! [`zero_crossing::find_zero_crossings`](crate::zero_crossing::find_zero_crossings)),
//! so the incremental state machine is the single source of truth and the
//! batch/streaming equivalence is structural rather than re-tested numerics.
//!
//! # Examples
//!
//! Chain a causal low-pass with a crossing detector:
//!
//! ```
//! use tagbreathe_dsp::filter::Biquad;
//! use tagbreathe_dsp::stream::Operator;
//!
//! let mut lp = Biquad::low_pass(0.67, 16.0, Biquad::BUTTERWORTH_Q)?;
//! let mut out = Vec::new();
//! for i in 0..64 {
//!     lp.push_into(f64::from(i % 2), &mut out);
//! }
//! assert_eq!(out.len(), 64); // one filtered sample per input
//! # Ok::<(), tagbreathe_dsp::filter::BiquadDesignError>(())
//! ```

use crate::filter::{Biquad, FirStream, MovingAverage};
use crate::zero_crossing::{CrossingRateEstimator, ZeroCrossing, ZeroCrossingStream};

/// A stateful incremental pipeline stage: push one input, get zero or more
/// outputs appended to `out`.
///
/// Implementations must be deterministic in their input sequence so that a
/// batch driver folding a slice through the operator reproduces the
/// streaming path exactly.
pub trait Operator {
    /// Input item type.
    type In;
    /// Output item type.
    type Out;

    /// Pushes one input item, appending any produced outputs to `out`.
    fn push_into(&mut self, input: Self::In, out: &mut Vec<Self::Out>);

    /// Flushes any buffered state at end of input (batch drivers call this
    /// once; live pipelines usually never do).
    fn finish_into(&mut self, out: &mut Vec<Self::Out>) {
        let _ = out;
    }
}

/// Folds every item of `inputs` through `op` and flushes, collecting all
/// outputs — the canonical batch driver over a streaming operator.
pub fn run_operator<O, I>(op: &mut O, inputs: I) -> Vec<O::Out>
where
    O: Operator,
    I: IntoIterator<Item = O::In>,
{
    let mut out = Vec::new();
    for item in inputs {
        op.push_into(item, &mut out);
    }
    op.finish_into(&mut out);
    out
}

/// Two operators composed in sequence; build with [`then`].
#[derive(Debug, Clone)]
pub struct Chain<A, B> {
    first: A,
    second: B,
}

/// Composes two operators: everything `first` emits is pushed into `second`.
pub fn then<A, B>(first: A, second: B) -> Chain<A, B>
where
    A: Operator,
    B: Operator<In = A::Out>,
{
    Chain { first, second }
}

impl<A, B> Chain<A, B> {
    /// The upstream operator.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The downstream operator.
    pub fn second(&self) -> &B {
        &self.second
    }
}

impl<A, B> Operator for Chain<A, B>
where
    A: Operator,
    B: Operator<In = A::Out>,
{
    type In = A::In;
    type Out = B::Out;

    fn push_into(&mut self, input: Self::In, out: &mut Vec<Self::Out>) {
        let mut mid = Vec::new();
        self.first.push_into(input, &mut mid);
        for item in mid {
            self.second.push_into(item, out);
        }
    }

    fn finish_into(&mut self, out: &mut Vec<Self::Out>) {
        let mut mid = Vec::new();
        self.first.finish_into(&mut mid);
        for item in mid {
            self.second.push_into(item, out);
        }
        self.second.finish_into(out);
    }
}

impl Operator for FirStream {
    type In = f64;
    type Out = f64;

    fn push_into(&mut self, input: f64, out: &mut Vec<f64>) {
        out.push(self.push(input));
    }
}

impl Operator for Biquad {
    type In = f64;
    type Out = f64;

    fn push_into(&mut self, input: f64, out: &mut Vec<f64>) {
        out.push(self.push(input));
    }
}

impl Operator for MovingAverage {
    type In = f64;
    type Out = f64;

    fn push_into(&mut self, input: f64, out: &mut Vec<f64>) {
        out.push(self.push(input));
    }
}

impl Operator for ZeroCrossingStream {
    /// `(time_s, value)` pairs.
    type In = (f64, f64);
    type Out = ZeroCrossing;

    fn push_into(&mut self, (time, value): (f64, f64), out: &mut Vec<ZeroCrossing>) {
        out.extend(self.push(time, value));
    }
}

impl Operator for CrossingRateEstimator {
    /// Crossing timestamps in, instantaneous rates (Hz) out.
    type In = f64;
    type Out = f64;

    fn push_into(&mut self, time: f64, out: &mut Vec<f64>) {
        out.extend(self.push(time));
    }
}

/// Adapter feeding [`ZeroCrossing`] times into a [`CrossingRateEstimator`],
/// so a detector and a rate estimator can be [`then`]-chained.
#[derive(Debug, Clone)]
pub struct CrossingTimes(pub CrossingRateEstimator);

impl Operator for CrossingTimes {
    type In = ZeroCrossing;
    type Out = f64;

    fn push_into(&mut self, crossing: ZeroCrossing, out: &mut Vec<f64>) {
        out.extend(self.0.push(crossing.time));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::FirFilter;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn run_operator_matches_manual_pushes() -> TestResult {
        let fir = FirFilter::low_pass(0.67, 16.0, 17)?;
        let signal: Vec<f64> = (0..64).map(|i| f64::from(i % 4)).collect();

        let mut a = FirStream::new(&fir);
        let manual: Vec<f64> = signal.iter().map(|&x| a.push(x)).collect();

        let mut b = FirStream::new(&fir);
        let driven = run_operator(&mut b, signal);
        assert_eq!(manual, driven);
        Ok(())
    }

    #[test]
    fn chain_feeds_first_into_second() -> TestResult {
        // Identity FIR chained with a 1-sample moving average is identity.
        let id = FirStream::from_taps(vec![1.0])?;
        let ma = MovingAverage::new(1).map_err(String::from)?;
        let mut chain = then(id, ma);
        let out = run_operator(&mut chain, [1.0, -2.0, 3.0]);
        assert_eq!(out, vec![1.0, -2.0, 3.0]);
        Ok(())
    }

    #[test]
    fn chain_crossings_to_rates() -> TestResult {
        // A square-ish alternating signal at 1 Hz sampling: crossings every
        // sample, rates once the M-buffer fills.
        let zc = ZeroCrossingStream::new(0.0);
        let est = CrossingRateEstimator::new(3);
        let mut chain = then(zc, CrossingTimes(est));

        let inputs: Vec<(f64, f64)> = (0..10)
            .map(|i| (f64::from(i), if i % 2 == 0 { 1.0 } else { -1.0 }))
            .collect();
        let rates = run_operator(&mut chain, inputs);
        assert!(!rates.is_empty());
        for r in rates {
            assert!((r - 0.5).abs() < 1e-9, "rate {r}");
        }
        Ok(())
    }
}

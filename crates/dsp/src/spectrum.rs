//! Spectral peak estimation.
//!
//! The paper notes (Section IV-B) that taking the FFT peak directly limits
//! rate resolution to `1/w` for a `w`-second window (2.4 bpm at 25 s).
//! Quadratic interpolation of the peak bin recovers sub-bin resolution and is
//! used by the FFT-peak estimator baseline.

use crate::fft::{bin_frequency, power_spectrum};
use crate::window::Window;

/// A spectral peak estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralPeak {
    /// Peak frequency in hertz (sub-bin interpolated).
    pub frequency_hz: f64,
    /// Power at the raw peak bin.
    pub power: f64,
    /// Index of the raw peak bin.
    pub bin: usize,
}

/// Finds the dominant spectral peak of `signal` within `[f_min, f_max]` Hz.
///
/// The signal is windowed (Hann), transformed, and the highest-power bin in
/// range is refined by quadratic (parabolic) interpolation over log-power.
/// Returns `None` if the range holds no bins or the signal is empty /
/// all-zero in the range.
///
/// # Examples
///
/// ```
/// use tagbreathe_dsp::spectrum::dominant_frequency;
///
/// let sr = 64.0;
/// let signal: Vec<f64> = (0..2048)
///     .map(|i| (2.0 * std::f64::consts::PI * 0.3 * i as f64 / sr).sin())
///     .collect();
/// let peak = dominant_frequency(&signal, sr, 0.05, 1.0).unwrap();
/// assert!((peak.frequency_hz - 0.3).abs() < 0.01);
/// ```
pub fn dominant_frequency(
    signal: &[f64],
    sample_rate: f64,
    f_min: f64,
    f_max: f64,
) -> Option<SpectralPeak> {
    if signal.len() < 4 || sample_rate.is_nan() || sample_rate <= 0.0 || f_max <= f_min {
        return None;
    }
    let mut windowed = signal.to_vec();
    // Remove mean so DC leakage does not mask the breathing peak.
    let mean = windowed.iter().sum::<f64>() / windowed.len() as f64;
    for x in &mut windowed {
        *x -= mean;
    }
    Window::Hann.apply(&mut windowed);
    let ps = power_spectrum(&windowed);
    let n = (ps.len() - 1) * 2; // original FFT length
    let lo = ((f_min * n as f64 / sample_rate).ceil() as usize).max(1);
    let hi = ((f_max * n as f64 / sample_rate).floor() as usize).min(ps.len() - 1);
    if lo > hi {
        return None;
    }
    let (bin, &power) = ps[lo..=hi]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, p)| (i + lo, p))?;
    if power <= 0.0 {
        return None;
    }
    // Parabolic interpolation over log power (Gaussian peak assumption).
    let freq = if bin > 0 && bin + 1 < ps.len() && ps[bin - 1] > 0.0 && ps[bin + 1] > 0.0 {
        let alpha = ps[bin - 1].ln();
        let beta = ps[bin].ln();
        let gamma = ps[bin + 1].ln();
        let denom = alpha - 2.0 * beta + gamma;
        let delta = if denom.abs() > f64::EPSILON {
            (0.5 * (alpha - gamma) / denom).clamp(-0.5, 0.5)
        } else {
            0.0
        };
        (bin as f64 + delta) * sample_rate / n as f64
    } else {
        bin_frequency(bin, sample_rate, n)
    };
    Some(SpectralPeak {
        frequency_hz: freq,
        power,
        bin,
    })
}

/// The raw FFT frequency resolution for a window of `seconds` seconds: `1/w`.
///
/// # Examples
///
/// ```
/// use tagbreathe_dsp::spectrum::fft_resolution_hz;
/// // The paper's 25 s window gives 0.04 Hz = 2.4 breaths/minute.
/// assert!((fft_resolution_hz(25.0) - 0.04).abs() < 1e-12);
/// ```
#[must_use]
pub fn fft_resolution_hz(seconds: f64) -> f64 {
    1.0 / seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn tone(freq: f64, sr: f64, secs: f64) -> Vec<f64> {
        (0..(sr * secs) as usize)
            .map(|i| (2.0 * PI * freq * i as f64 / sr).sin())
            .collect()
    }

    #[test]
    fn finds_exact_bin_tone() -> TestResult {
        let sr = 64.0;
        let signal = tone(0.25, sr, 32.0); // 2048 samples, exact bin
        let peak = dominant_frequency(&signal, sr, 0.05, 1.0).ok_or("unexpected None")?;
        assert!((peak.frequency_hz - 0.25).abs() < 0.005);
        Ok(())
    }

    #[test]
    fn interpolation_beats_bin_resolution() -> TestResult {
        let sr = 64.0;
        let signal = tone(0.21, sr, 25.0); // off-bin tone, 25 s window
        let peak = dominant_frequency(&signal, sr, 0.05, 1.0).ok_or("unexpected None")?;
        // Raw resolution is 1/25 = 0.04 Hz; interpolation should do better
        // than half a bin.
        assert!(
            (peak.frequency_hz - 0.21).abs() < 0.02,
            "got {}",
            peak.frequency_hz
        );
        Ok(())
    }

    #[test]
    fn respects_search_range() -> TestResult {
        let sr = 64.0;
        // Strong 5 Hz tone plus weak 0.3 Hz tone.
        let n = 2048;
        let signal: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / sr;
                3.0 * (2.0 * PI * 5.0 * t).sin() + 0.3 * (2.0 * PI * 0.3 * t).sin()
            })
            .collect();
        let peak = dominant_frequency(&signal, sr, 0.05, 1.0).ok_or("unexpected None")?;
        assert!((peak.frequency_hz - 0.3).abs() < 0.02);
        Ok(())
    }

    #[test]
    fn dc_is_excluded() -> TestResult {
        let sr = 64.0;
        let signal: Vec<f64> = tone(0.2, sr, 20.0).iter().map(|x| x + 100.0).collect();
        let peak = dominant_frequency(&signal, sr, 0.05, 1.0).ok_or("unexpected None")?;
        assert!((peak.frequency_hz - 0.2).abs() < 0.02);
        Ok(())
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(dominant_frequency(&[], 64.0, 0.1, 1.0).is_none());
        assert!(dominant_frequency(&[1.0, 2.0], 64.0, 0.1, 1.0).is_none());
        assert!(dominant_frequency(&[0.0; 1024], 64.0, 1.0, 0.5).is_none());
        // All-zero signal has no peak.
        assert!(dominant_frequency(&[0.0; 1024], 64.0, 0.1, 1.0).is_none());
    }

    #[test]
    fn resolution_formula() {
        assert_eq!(fft_resolution_hz(10.0), 0.1);
        // 0.04 Hz × 60 = 2.4 bpm as the paper states.
        assert!((fft_resolution_hz(25.0) * 60.0 - 2.4).abs() < 1e-9);
    }

    #[test]
    fn breathing_rates_recoverable_across_band() -> TestResult {
        let sr = 64.0;
        for bpm in [6.0, 10.0, 15.0, 20.0, 30.0] {
            let f = bpm / 60.0;
            let signal = tone(f, sr, 60.0);
            let peak = dominant_frequency(&signal, sr, 0.05, 0.7).ok_or("unexpected None")?;
            assert!(
                (peak.frequency_hz * 60.0 - bpm).abs() < 0.5,
                "bpm {bpm}: got {}",
                peak.frequency_hz * 60.0
            );
        }
        Ok(())
    }
}

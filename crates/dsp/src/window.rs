//! Window functions for spectral analysis and FIR filter design.

/// A window-function shape.
///
/// TagBreathe's FIR alternative low-pass (Section IV-B) uses a windowed-sinc
/// design; [`Window::Hamming`] is the default there, while spectral plots use
/// [`Window::Hann`] to reduce leakage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// All-ones window (no tapering).
    Rectangular,
    /// Hann (raised cosine) window.
    Hann,
    /// Hamming window.
    #[default]
    Hamming,
    /// Blackman window (wider main lobe, lower side lobes).
    Blackman,
}

impl Window {
    /// Evaluates the window at sample `i` of an `n`-point window.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[must_use]
    pub fn value(self, i: usize, n: usize) -> f64 {
        assert!(i < n, "window index {i} out of range for length {n}");
        if n == 1 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64;
        let tau = 2.0 * std::f64::consts::PI;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * (tau * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (tau * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos(),
        }
    }

    /// Generates the full `n`-point window as a vector.
    ///
    /// # Examples
    ///
    /// ```
    /// use tagbreathe_dsp::window::Window;
    /// let w = Window::Hann.coefficients(5);
    /// assert!((w[2] - 1.0).abs() < 1e-12); // peak at the centre
    /// assert!(w[0].abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.value(i, n)).collect()
    }

    /// Multiplies `signal` by the window in place (window length = signal
    /// length).
    pub fn apply(self, signal: &mut [f64]) {
        let n = signal.len();
        if n == 0 {
            return;
        }
        for (i, x) in signal.iter_mut().enumerate() {
            *x *= self.value(i, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(8)
            .iter()
            .all(|&w| w == 1.0));
    }

    #[test]
    fn hann_is_zero_at_endpoints_and_one_at_centre() {
        let w = Window::Hann.coefficients(9);
        assert!(w[0].abs() < 1e-12);
        assert!(w[8].abs() < 1e-12);
        assert!((w[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints_are_point_zero_eight() {
        let w = Window::Hamming.coefficients(11);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[10] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn blackman_is_nonnegative_and_peaks_at_centre() {
        let w = Window::Blackman.coefficients(33);
        assert!(w.iter().all(|&x| x >= -1e-12));
        let max = w.iter().cloned().fold(f64::MIN, f64::max);
        assert!((max - w[16]).abs() < 1e-12);
    }

    #[test]
    fn windows_are_symmetric() {
        for win in [Window::Hann, Window::Hamming, Window::Blackman] {
            let w = win.coefficients(17);
            for i in 0..17 {
                assert!((w[i] - w[16 - i]).abs() < 1e-12, "{win:?} asymmetric");
            }
        }
    }

    #[test]
    fn apply_multiplies_in_place() {
        let mut s = vec![2.0; 5];
        Window::Hann.apply(&mut s);
        assert!((s[2] - 2.0).abs() < 1e-12);
        assert!(s[0].abs() < 1e-12);
    }

    #[test]
    fn length_one_window_is_unity() {
        for win in [
            Window::Rectangular,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
        ] {
            assert_eq!(win.value(0, 1), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let _ = Window::Hann.value(5, 5);
    }
}

//! Small statistics helpers shared across the workspace.

/// Default absolute tolerance for float comparisons across the
/// workspace. Signals here are metre-scale displacements and
/// radian-scale phases, so anything below this is numerical dust.
pub const EPSILON: f64 = 1e-9;

/// Absolute-tolerance equality: `|a - b| <= eps`. `NaN` never compares
/// equal to anything (including itself), matching IEEE semantics.
#[must_use]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// Whether `x` lies within [`EPSILON`] of zero.
#[must_use]
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= EPSILON
}

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance; `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Root-mean-square value; `None` for an empty slice.
pub fn rms(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some((xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt())
    }
}

/// Median (interpolated for even lengths); `None` for an empty slice.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    if n % 2 == 1 {
        Some(sorted[n / 2])
    } else {
        Some(0.5 * (sorted[n / 2 - 1] + sorted[n / 2]))
    }
}

/// Percentile in `[0, 100]` by linear interpolation; `None` for empty input.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Normalises a signal to zero mean and unit peak amplitude
/// (max |x| = 1). A constant signal normalises to all zeros.
///
/// This mirrors the paper's "we normalize the displacement values"
/// (Figure 6).
#[must_use]
pub fn normalize_peak(xs: &[f64]) -> Vec<f64> {
    let Some(m) = mean(xs) else { return Vec::new() };
    let centred: Vec<f64> = xs.iter().map(|x| x - m).collect();
    let peak = centred.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
    if peak > 0.0 {
        centred.into_iter().map(|x| x / peak).collect()
    } else {
        centred
    }
}

/// Normalises a signal to zero mean and unit standard deviation (z-score).
/// A constant signal normalises to all zeros.
#[must_use]
pub fn normalize_zscore(xs: &[f64]) -> Vec<f64> {
    let Some(m) = mean(xs) else { return Vec::new() };
    let sd = std_dev(xs).unwrap_or(0.0);
    if sd > 0.0 {
        xs.iter().map(|x| (x - m) / sd).collect()
    } else {
        xs.iter().map(|x| x - m).collect()
    }
}

/// Pearson correlation coefficient of two equal-length series; `None` for
/// mismatched lengths, fewer than two points, or zero variance.
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let ma = mean(a)?;
    let mb = mean(b)?;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return None;
    }
    Some(cov / (va * vb).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn approx_helpers() {
        assert!(approx_eq(0.1 + 0.2, 0.3, 1e-12));
        assert!(!approx_eq(0.1, 0.2, 1e-3));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1.0));
        assert!(approx_zero(0.0));
        assert!(approx_zero(-1e-12));
        assert!(!approx_zero(1e-6));
        assert!(!approx_zero(f64::NAN));
    }

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(variance(&xs), Some(4.0));
        assert_eq!(std_dev(&xs), Some(2.0));
    }

    #[test]
    fn empty_inputs_give_none() {
        assert!(mean(&[]).is_none());
        assert!(variance(&[]).is_none());
        assert!(std_dev(&[]).is_none());
        assert!(rms(&[]).is_none());
        assert!(median(&[]).is_none());
        assert!(percentile(&[], 50.0).is_none());
    }

    #[test]
    fn rms_of_alternating() {
        assert_eq!(rms(&[3.0, -3.0, 3.0, -3.0]), Some(3.0));
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 0.0), Some(0.0));
        assert_eq!(percentile(&xs, 50.0), Some(5.0));
        assert_eq!(percentile(&xs, 100.0), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_out_of_range_panics() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn normalize_peak_bounds() {
        let xs = [1.0, 3.0, 5.0];
        let n = normalize_peak(&xs);
        let peak = n.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
        assert!((peak - 1.0).abs() < 1e-12);
        let m: f64 = n.iter().sum::<f64>() / n.len() as f64;
        assert!(m.abs() < 1e-12);
    }

    #[test]
    fn normalize_constant_is_zeros() {
        assert_eq!(normalize_peak(&[4.0, 4.0]), vec![0.0, 0.0]);
        assert_eq!(normalize_zscore(&[4.0, 4.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn zscore_has_unit_std() -> TestResult {
        let xs: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 2.0)
            .collect();
        let z = normalize_zscore(&xs);
        assert!((std_dev(&z).ok_or("unexpected None")? - 1.0).abs() < 1e-9);
        assert!(mean(&z).ok_or("unexpected None")?.abs() < 1e-9);
        Ok(())
    }

    #[test]
    fn pearson_perfect_correlation() -> TestResult {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        let c = [-1.0, -2.0, -3.0];
        assert!((pearson(&a, &b).ok_or("unexpected None")? - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c).ok_or("unexpected None")? + 1.0).abs() < 1e-12);
        Ok(())
    }

    #[test]
    fn pearson_degenerate() {
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }
}

//! Body blockage of the line-of-sight path.
//!
//! The paper (Figure 15) rotates a tagged user from facing the antenna (0°)
//! to facing away (180°): RSSI stays roughly flat while the line of sight is
//! clear (0–90°), the read rate falls from ~50 Hz to ~10 Hz, and beyond 90°
//! the body blocks the path entirely and the tag cannot be read. The human
//! torso attenuates UHF signals by tens of dB, so we model blockage as an
//! orientation-dependent attenuation that is mild in the front half-plane
//! and severe once the tag moves behind the body.

/// Orientation-dependent body attenuation model.
///
/// `orientation_deg` is the angle between the user's facing direction and
/// the direction from the user toward the antenna: 0° = facing the antenna
/// (tags have a clear line of sight), 180° = back turned.
#[derive(Debug, Clone, PartialEq)]
pub struct BodyBlockage {
    /// Orientation below which the body adds no attenuation (degrees).
    clear_until_deg: f64,
    /// Attenuation at 90° (grazing), dB.
    grazing_db: f64,
    /// Attenuation once fully shadowed, dB.
    shadow_db: f64,
    /// Orientation at which full shadowing is reached (degrees).
    shadow_at_deg: f64,
}

impl BodyBlockage {
    /// The calibrated default: clear to 60°, 6 dB at 90°, ramping to 45 dB
    /// of through-body attenuation by 130°.
    pub fn paper_default() -> Self {
        BodyBlockage {
            clear_until_deg: 60.0,
            grazing_db: 6.0,
            shadow_db: 45.0,
            shadow_at_deg: 130.0,
        }
    }

    /// Creates a custom blockage profile.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ clear_until < 90 < shadow_at ≤ 180` and the
    /// attenuations are non-negative with `grazing ≤ shadow`.
    pub fn new(clear_until_deg: f64, grazing_db: f64, shadow_db: f64, shadow_at_deg: f64) -> Self {
        assert!(
            (0.0..90.0).contains(&clear_until_deg),
            "clear_until must be in [0, 90)"
        );
        assert!(
            shadow_at_deg > 90.0 && shadow_at_deg <= 180.0,
            "shadow_at must be in (90, 180]"
        );
        assert!(grazing_db >= 0.0 && shadow_db >= grazing_db);
        BodyBlockage {
            clear_until_deg,
            grazing_db,
            shadow_db,
            shadow_at_deg,
        }
    }

    /// Attenuation in dB at a given orientation.
    ///
    /// Orientation is folded into `[0, 180]` (rotating left or right is
    /// symmetric).
    pub fn attenuation_db(&self, orientation_deg: f64) -> f64 {
        let theta = fold_orientation(orientation_deg);
        if theta <= self.clear_until_deg {
            0.0
        } else if theta <= 90.0 {
            // Quadratic onset from clear to grazing.
            let x = (theta - self.clear_until_deg) / (90.0 - self.clear_until_deg);
            self.grazing_db * x * x
        } else if theta < self.shadow_at_deg {
            // Power-law ramp from grazing to full shadow.
            let x = (theta - 90.0) / (self.shadow_at_deg - 90.0);
            self.grazing_db + (self.shadow_db - self.grazing_db) * x.powf(1.5)
        } else {
            self.shadow_db
        }
    }

    /// Whether a clear line-of-sight path exists at this orientation
    /// (the paper treats ≤ 90° as "with LOS").
    pub fn has_los(&self, orientation_deg: f64) -> bool {
        fold_orientation(orientation_deg) <= 90.0
    }
}

impl Default for BodyBlockage {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Folds an arbitrary orientation angle into `[0, 180]` degrees.
fn fold_orientation(deg: f64) -> f64 {
    let wrapped = deg.rem_euclid(360.0);
    if wrapped > 180.0 {
        360.0 - wrapped
    } else {
        wrapped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facing_has_zero_attenuation() {
        let b = BodyBlockage::paper_default();
        assert_eq!(b.attenuation_db(0.0), 0.0);
        assert_eq!(b.attenuation_db(30.0), 0.0);
        assert_eq!(b.attenuation_db(60.0), 0.0);
    }

    #[test]
    fn grazing_matches_configuration() {
        let b = BodyBlockage::paper_default();
        assert!((b.attenuation_db(90.0) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn full_shadow_beyond_ramp() {
        let b = BodyBlockage::paper_default();
        assert_eq!(b.attenuation_db(130.0), 45.0);
        assert_eq!(b.attenuation_db(180.0), 45.0);
    }

    #[test]
    fn attenuation_is_monotonic_in_orientation() {
        let b = BodyBlockage::paper_default();
        let mut last = -1.0;
        for deg in 0..=180 {
            let a = b.attenuation_db(deg as f64);
            assert!(a + 1e-9 >= last, "non-monotonic at {deg}°");
            last = a;
        }
    }

    #[test]
    fn symmetric_in_rotation_direction() {
        let b = BodyBlockage::paper_default();
        for deg in [30.0, 75.0, 100.0, 150.0] {
            assert!((b.attenuation_db(deg) - b.attenuation_db(-deg)).abs() < 1e-12);
            assert!((b.attenuation_db(deg) - b.attenuation_db(360.0 - deg)).abs() < 1e-12);
        }
    }

    #[test]
    fn los_flag_matches_paper_convention() {
        let b = BodyBlockage::paper_default();
        assert!(b.has_los(0.0));
        assert!(b.has_los(90.0));
        assert!(!b.has_los(91.0));
        assert!(!b.has_los(180.0));
    }

    #[test]
    fn fold_orientation_cases() {
        assert_eq!(fold_orientation(0.0), 0.0);
        assert_eq!(fold_orientation(190.0), 170.0);
        assert_eq!(fold_orientation(-45.0), 45.0);
        assert_eq!(fold_orientation(360.0), 0.0);
        assert_eq!(fold_orientation(540.0), 180.0);
    }

    #[test]
    #[should_panic(expected = "clear_until")]
    fn invalid_clear_until_panics() {
        BodyBlockage::new(95.0, 6.0, 45.0, 130.0);
    }

    #[test]
    fn custom_profile_respected() {
        let b = BodyBlockage::new(45.0, 10.0, 50.0, 120.0);
        assert_eq!(b.attenuation_db(45.0), 0.0);
        assert!((b.attenuation_db(90.0) - 10.0).abs() < 1e-9);
        assert_eq!(b.attenuation_db(120.0), 50.0);
    }
}

//! Backscatter link budget.
//!
//! Passive UHF tags are **forward-link limited**: the tag must harvest
//! enough power from the reader's carrier to turn on (threshold around
//! −14 dBm for the tag generation the paper uses). The reverse (backscatter)
//! link then loses path loss a second time plus a modulation loss. Both
//! directions see antenna gains, polarisation mismatch, body blockage and
//! per-channel fading.

use crate::units::{Db, Dbm};

/// Constants of the radio link, calibrated to the paper's hardware
/// (Impinj R420 at 30 dBm, 8.5 dBic panel antenna, Alien 9640 tags).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Reader transmit power (paper default 30 dBm; Table I range 15–30).
    pub tx_power: Dbm,
    /// Tag antenna gain, dBi (dipole ≈ 2 dBi).
    pub tag_gain_dbi: f64,
    /// Tag power-up sensitivity (dBm at the chip).
    pub tag_sensitivity: Dbm,
    /// Circular→linear polarisation mismatch loss per pass, dB.
    pub polarization_loss_db: f64,
    /// Backscatter modulation loss, dB.
    pub backscatter_loss_db: f64,
    /// Reader noise floor, dBm.
    pub noise_floor: Dbm,
    /// Reader receive sensitivity, dBm.
    pub reader_sensitivity: Dbm,
    /// Logistic detection midpoint on forward margin, dB.
    pub detection_midpoint_db: f64,
    /// Logistic detection scale on forward margin, dB.
    pub detection_scale_db: f64,
}

impl LinkConfig {
    /// The calibrated paper-default link constants.
    pub fn paper_default() -> Self {
        LinkConfig {
            tx_power: Dbm(30.0),
            tag_gain_dbi: 2.0,
            tag_sensitivity: Dbm(-14.0),
            polarization_loss_db: 3.0,
            backscatter_loss_db: 6.0,
            noise_floor: Dbm(-85.0),
            reader_sensitivity: Dbm(-84.0),
            detection_midpoint_db: 5.2,
            detection_scale_db: 2.05,
        }
    }

    /// Returns a copy with a different transmit power (Table I sweeps
    /// 15–30 dBm).
    pub fn with_tx_power(mut self, tx_power: Dbm) -> Self {
        self.tx_power = tx_power;
        self
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Free-space path loss in dB for a one-way distance `d` metres at
/// wavelength `lambda` metres: `20 log₁₀(4πd/λ)`.
///
/// # Panics
///
/// Panics if `d` or `lambda` is not positive.
///
/// # Examples
///
/// ```
/// use tagbreathe_rfchannel::link::free_space_path_loss_db;
/// let fspl = free_space_path_loss_db(1.0, 0.3276);
/// assert!((fspl - 31.68).abs() < 0.05);
/// ```
pub fn free_space_path_loss_db(d: f64, lambda: f64) -> f64 {
    assert!(d > 0.0, "distance must be positive");
    assert!(lambda > 0.0, "wavelength must be positive");
    20.0 * (4.0 * std::f64::consts::PI * d / lambda).log10()
}

/// Which propagation model supplies the one-way path loss.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Propagation {
    /// Free-space path loss (the default; stochastic fading covers
    /// multipath).
    #[default]
    FreeSpace,
    /// Two-ray ground reflection: deterministic floor-bounce interference
    /// on top of which fading still applies.
    TwoRay {
        /// Floor reflection magnitude `Γ ∈ [0, 1]`.
        reflection_coeff: f64,
    },
}

/// Power levels of one reader↔tag link evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    /// Power delivered to the tag chip, dBm.
    pub tag_power: Dbm,
    /// Forward-link margin over the tag sensitivity, dB.
    pub forward_margin: Db,
    /// Backscatter power at the reader, dBm.
    pub rx_power: Dbm,
    /// Reverse-link SNR over the reader noise floor, dB.
    pub snr: Db,
    /// Whether the tag harvests enough power to respond at all.
    pub powered: bool,
}

impl LinkBudget {
    /// Evaluates the two-way budget.
    ///
    /// * `distance_m` — antenna↔tag distance;
    /// * `lambda_m` — carrier wavelength of the active channel;
    /// * `reader_gain_dbi` — antenna gain toward the tag (pattern applied);
    /// * `blockage_db` — one-way body attenuation;
    /// * `fading_db` — one-way fading gain in dB (`20 log₁₀ amplitude`).
    pub fn evaluate(
        config: &LinkConfig,
        distance_m: f64,
        lambda_m: f64,
        reader_gain_dbi: f64,
        blockage_db: f64,
        fading_db: f64,
    ) -> LinkBudget {
        Self::evaluate_with_ripple(
            config,
            distance_m,
            lambda_m,
            reader_gain_dbi,
            blockage_db,
            fading_db,
            0.0,
        )
    }

    /// Like [`LinkBudget::evaluate`] with an additional **reverse-link-only**
    /// gain deviation (`reverse_ripple_db`).
    ///
    /// The distance-sensitive multipath/detuning ripple mainly modulates the
    /// backscattered power the reader sees (hence RSSI, Figure 2 of the
    /// paper), while the tag's power-up margin is set by the slowly varying
    /// forward link — so the ripple is applied after the forward margin is
    /// computed.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_with_ripple(
        config: &LinkConfig,
        distance_m: f64,
        lambda_m: f64,
        reader_gain_dbi: f64,
        blockage_db: f64,
        fading_db: f64,
        reverse_ripple_db: f64,
    ) -> LinkBudget {
        Self::evaluate_from_path_loss(
            config,
            free_space_path_loss_db(distance_m, lambda_m),
            reader_gain_dbi,
            blockage_db,
            fading_db,
            reverse_ripple_db,
        )
    }

    /// Like [`LinkBudget::evaluate_with_ripple`] but with the one-way path
    /// loss supplied directly — the entry point for alternative
    /// propagation models (e.g. two-ray ground reflection, where the loss
    /// depends on geometry beyond the slant distance).
    pub fn evaluate_from_path_loss(
        config: &LinkConfig,
        path_loss_db: f64,
        reader_gain_dbi: f64,
        blockage_db: f64,
        fading_db: f64,
        reverse_ripple_db: f64,
    ) -> LinkBudget {
        let one_way = reader_gain_dbi + config.tag_gain_dbi
            - path_loss_db
            - blockage_db
            - config.polarization_loss_db
            + fading_db;
        let tag_power = config.tx_power + Db(one_way);
        let forward_margin = tag_power - config.tag_sensitivity;
        let rx_power = tag_power + Db(one_way - config.backscatter_loss_db + reverse_ripple_db);
        let snr = rx_power - config.noise_floor;
        let powered = tag_power >= config.tag_sensitivity && rx_power >= config.reader_sensitivity;
        LinkBudget {
            tag_power,
            forward_margin,
            rx_power,
            snr,
            powered,
        }
    }

    /// Per-interrogation read success probability: a logistic of the
    /// forward margin, calibrated so a facing user at 4 m is read at ~78%
    /// of attempts (≈50 Hz of the 64 Hz attempt rate, Figure 15) and a 90°
    /// grazing user at ~16% (≈10 Hz).
    pub fn read_probability(&self, config: &LinkConfig) -> f64 {
        if !self.powered {
            return 0.0;
        }
        let x = (self.forward_margin.0 - config.detection_midpoint_db) / config.detection_scale_db;
        1.0 / (1.0 + (-x).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAMBDA: f64 = 0.3276; // ~915 MHz

    fn budget(d: f64, blockage: f64) -> LinkBudget {
        LinkBudget::evaluate(&LinkConfig::paper_default(), d, LAMBDA, 8.5, blockage, 0.0)
    }

    #[test]
    fn fspl_doubles_distance_adds_6db() {
        let a = free_space_path_loss_db(1.0, LAMBDA);
        let b = free_space_path_loss_db(2.0, LAMBDA);
        assert!((b - a - 6.0206).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn zero_distance_panics() {
        free_space_path_loss_db(0.0, LAMBDA);
    }

    #[test]
    fn four_metre_facing_link_matches_calibration() {
        let b = budget(4.0, 0.0);
        // Tag power ≈ -6.2 dBm, margin ≈ 7.8 dB, p ≈ 0.78.
        assert!(
            (b.tag_power.0 + 6.2).abs() < 0.2,
            "tag power {}",
            b.tag_power
        );
        assert!((b.forward_margin.0 - 7.8).abs() < 0.2);
        let p = b.read_probability(&LinkConfig::paper_default());
        assert!((p - 0.78).abs() < 0.03, "p = {p}");
    }

    #[test]
    fn grazing_orientation_drops_to_ten_hertz_regime() {
        let b = budget(4.0, 6.0);
        let p = b.read_probability(&LinkConfig::paper_default());
        assert!((p - 0.16).abs() < 0.04, "p = {p}");
    }

    #[test]
    fn behind_body_is_unreadable() {
        let b = budget(4.0, 40.0);
        assert!(!b.powered);
        assert_eq!(b.read_probability(&LinkConfig::paper_default()), 0.0);
    }

    #[test]
    fn close_range_reads_nearly_always() {
        let b = budget(1.0, 0.0);
        let p = b.read_probability(&LinkConfig::paper_default());
        assert!(p > 0.99, "p = {p}");
    }

    #[test]
    fn six_metres_still_reads_but_slower() {
        let b = budget(6.0, 0.0);
        let p = b.read_probability(&LinkConfig::paper_default());
        assert!(p > 0.2 && p < 0.6, "p = {p}");
        assert!(b.powered);
    }

    #[test]
    fn read_probability_monotone_in_distance() {
        let cfg = LinkConfig::paper_default();
        let mut last = 1.0;
        for d in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0] {
            let p = budget(d, 0.0).read_probability(&cfg);
            assert!(p <= last + 1e-12, "p increased at {d} m");
            last = p;
        }
    }

    #[test]
    fn rssi_plausible_at_typical_range() {
        let b = budget(4.0, 0.0);
        assert!(
            b.rx_power.0 > -60.0 && b.rx_power.0 < -35.0,
            "RSSI {} out of plausible range",
            b.rx_power
        );
        assert!(b.snr.0 > 20.0);
    }

    #[test]
    fn lower_tx_power_weakens_link() {
        let cfg = LinkConfig::paper_default().with_tx_power(Dbm(15.0));
        let weak = LinkBudget::evaluate(&cfg, 4.0, LAMBDA, 8.5, 0.0, 0.0);
        let strong = budget(4.0, 0.0);
        assert!(weak.forward_margin < strong.forward_margin);
        assert!(weak.read_probability(&cfg) < 0.05);
    }

    #[test]
    fn path_loss_entry_point_matches_free_space_wrapper() {
        let cfg = LinkConfig::paper_default();
        let a = LinkBudget::evaluate(&cfg, 4.0, LAMBDA, 8.5, 2.0, -1.0);
        let b = LinkBudget::evaluate_from_path_loss(
            &cfg,
            free_space_path_loss_db(4.0, LAMBDA),
            8.5,
            2.0,
            -1.0,
            0.0,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn propagation_default_is_free_space() {
        assert_eq!(Propagation::default(), Propagation::FreeSpace);
    }

    #[test]
    fn fading_shifts_margin() {
        let faded = LinkBudget::evaluate(&LinkConfig::paper_default(), 4.0, LAMBDA, 8.5, 0.0, -3.0);
        let clear = budget(4.0, 0.0);
        assert!((clear.forward_margin.0 - faded.forward_margin.0 - 3.0).abs() < 1e-9);
        // Fading applies twice in the reverse direction.
        assert!((clear.rx_power.0 - faded.rx_power.0 - 6.0).abs() < 1e-9);
    }
}

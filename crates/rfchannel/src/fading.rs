//! Per-channel static multipath (Rician) fading.
//!
//! In an office, each carrier channel sees a different superposition of
//! static reflections (desks, walls, appliances). This is exactly why the
//! EPC protocol hops: a tag unreadable on one channel is usually readable on
//! the next. For a static environment the complex channel gain per
//! (channel, tag) pair is constant over a measurement, so we sample it once
//! per simulation from a Rician distribution and cache it.

use crate::noise::{gaussian, rician_amplitude};
use prng::Xoshiro256;
use std::collections::HashMap;

/// A static complex channel gain: amplitude (linear) and phase (radians).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelGain {
    /// Linear amplitude factor relative to pure line-of-sight (mean 1).
    pub amplitude: f64,
    /// Excess phase contributed by multipath and circuit responses, radians.
    pub phase: f64,
}

/// A lazily populated table of static fading gains keyed by
/// `(channel_index, tag_key)`.
///
/// Gains are derived deterministically from the table seed, so two tables
/// with the same seed agree — experiments are reproducible.
///
/// # Examples
///
/// ```
/// use tagbreathe_rfchannel::fading::FadingTable;
///
/// let mut table = FadingTable::new(42, 10.0);
/// let g1 = table.gain(3, 7);
/// let g2 = table.gain(3, 7);
/// assert_eq!(g1, g2); // cached and deterministic
/// ```
#[derive(Debug, Clone)]
pub struct FadingTable {
    seed: u64,
    k_factor: f64,
    cache: HashMap<(usize, u64), ChannelGain>,
}

impl FadingTable {
    /// Creates a fading table.
    ///
    /// `k_factor` is the Rician K (specular-to-scattered power ratio,
    /// linear). Office LOS scenarios are typically K ≈ 5–15.
    ///
    /// # Panics
    ///
    /// Panics if `k_factor` is negative.
    pub fn new(seed: u64, k_factor: f64) -> Self {
        assert!(k_factor >= 0.0, "Rician K-factor must be non-negative");
        FadingTable {
            seed,
            k_factor,
            cache: HashMap::new(),
        }
    }

    /// A strongly line-of-sight office environment (K = 10).
    pub fn office(seed: u64) -> Self {
        FadingTable::new(seed, 10.0)
    }

    /// The static gain for `(channel, tag_key)`.
    pub fn gain(&mut self, channel: usize, tag_key: u64) -> ChannelGain {
        let seed = self.seed;
        let k = self.k_factor;
        *self.cache.entry((channel, tag_key)).or_insert_with(|| {
            // Derive an independent, deterministic stream per key.
            let mix = seed
                ^ (channel as u64).wrapping_mul(0x9E3779B97F4A7C15)
                ^ tag_key.wrapping_mul(0xC2B2AE3D27D4EB4F);
            let mut rng = Xoshiro256::seed_from_u64(mix);
            ChannelGain {
                amplitude: rician_amplitude(&mut rng, k),
                // Multipath excess phase is uniform; model it as wrapped
                // Gaussian for mild channel-to-channel correlation.
                phase: gaussian(&mut rng, 1.5).rem_euclid(2.0 * std::f64::consts::PI),
            }
        })
    }

    /// Number of gains materialised so far.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether any gain has been materialised.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Distance-sensitive ripple parameters for `(channel, tag_key)`.
    pub fn ripple(&self, channel: usize, tag_key: u64) -> Ripple {
        let mix = self.seed.wrapping_mul(0x2545F4914F6CDD1D)
            ^ (channel as u64).wrapping_mul(0x9E3779B97F4A7C15)
            ^ tag_key.wrapping_mul(0xFF51AFD7ED558CCD);
        let mut rng = Xoshiro256::seed_from_u64(mix);
        use prng::Rng;
        Ripple {
            depth_db: 1.5 + 2.0 * rng.gen_f64(),
            spatial_factor: 1.5 + 1.0 * rng.gen_f64(),
            phase: rng.gen_f64() * 2.0 * std::f64::consts::PI,
        }
    }
}

/// Distance-sensitive gain ripple.
///
/// Two physical effects make received power vary steeply with millimetre
/// tag motion: interference between the direct backscatter path and static
/// reflections, and detuning of the tag antenna by the changing tag–body
/// separation. Both are periodic-ish in displacement on a scale of
/// centimetres, which is exactly why the paper's Figure 2 shows clearly
/// periodic RSSI under breathing even though free-space path-loss change
/// over 5 mm is only ~0.05 dB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ripple {
    /// Peak gain deviation, dB.
    pub depth_db: f64,
    /// Spatial frequency multiplier on the carrier's `4πd/λ` phase.
    pub spatial_factor: f64,
    /// Phase offset, radians.
    pub phase: f64,
}

impl Ripple {
    /// One-way gain deviation in dB at tag distance `d` (metres) and
    /// wavelength `lambda` (metres).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not positive.
    pub fn gain_db(&self, d: f64, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "wavelength must be positive");
        let arg = 4.0 * std::f64::consts::PI * d / lambda * self.spatial_factor + self.phase;
        self.depth_db * arg.sin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_tables_with_same_seed() {
        let mut a = FadingTable::office(5);
        let mut b = FadingTable::office(5);
        for ch in 0..10 {
            for tag in 0..4u64 {
                assert_eq!(a.gain(ch, tag), b.gain(ch, tag));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FadingTable::office(1);
        let mut b = FadingTable::office(2);
        assert_ne!(a.gain(0, 0), b.gain(0, 0));
    }

    #[test]
    fn different_channels_have_different_gains() {
        let mut t = FadingTable::office(3);
        let g0 = t.gain(0, 0);
        let g1 = t.gain(1, 0);
        assert_ne!(g0, g1);
    }

    #[test]
    fn amplitudes_cluster_near_one_for_high_k() {
        let mut t = FadingTable::new(7, 100.0);
        for ch in 0..50 {
            let g = t.gain(ch, 0);
            assert!((g.amplitude - 1.0).abs() < 0.5, "amplitude {}", g.amplitude);
        }
    }

    #[test]
    fn phases_are_wrapped() {
        let mut t = FadingTable::office(9);
        for ch in 0..50 {
            let g = t.gain(ch, 1);
            assert!((0.0..2.0 * std::f64::consts::PI).contains(&g.phase));
        }
    }

    #[test]
    fn ripple_is_deterministic_and_bounded() {
        let t = FadingTable::office(5);
        let a = t.ripple(3, 7);
        let b = t.ripple(3, 7);
        assert_eq!(a, b);
        assert_ne!(a, t.ripple(4, 7));
        assert!((1.5..=3.5).contains(&a.depth_db));
        assert!((1.5..=2.5).contains(&a.spatial_factor));
    }

    #[test]
    fn ripple_gain_varies_with_millimetre_motion() {
        let t = FadingTable::office(6);
        let r = t.ripple(0, 0);
        let lambda = 0.3276;
        // Over a 5 mm excursion the gain must move by a visible fraction
        // of a dB somewhere in the breathing cycle.
        let g: Vec<f64> = (0..100)
            .map(|i| {
                r.gain_db(
                    4.0 + 0.005 * (i as f64 / 100.0 * std::f64::consts::TAU).sin(),
                    lambda,
                )
            })
            .collect();
        let max = g.iter().cloned().fold(f64::MIN, f64::max);
        let min = g.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min > 0.2, "ripple swing {}", max - min);
        // And stay bounded by the configured depth.
        assert!(max.abs() <= r.depth_db + 1e-9);
    }

    #[test]
    #[should_panic(expected = "wavelength")]
    fn ripple_zero_wavelength_panics() {
        let t = FadingTable::office(7);
        t.ripple(0, 0).gain_db(1.0, 0.0);
    }

    #[test]
    fn cache_grows_and_reports_len() {
        let mut t = FadingTable::office(4);
        assert!(t.is_empty());
        t.gain(0, 0);
        t.gain(0, 1);
        t.gain(0, 0); // cached, no growth
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}

//! Assembly of physical-layer observations: phase (Eq. 1), RSSI and
//! Doppler (Eq. 2) as a commodity reader would report them.

use crate::fading::ChannelGain;
use crate::link::{LinkBudget, LinkConfig};
use crate::noise::gaussian;
use crate::units::Dbm;
use prng::Rng;

/// Measurement non-idealities of the reader's low-level reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementNoise {
    /// Phase measurement noise, radians (std of Gaussian).
    pub phase_noise_rad: f64,
    /// Phase quantisation step, radians (Impinj reports 2π/4096).
    pub phase_step_rad: f64,
    /// RSSI quantisation step, dB (Impinj reports 0.5 dBm steps).
    pub rssi_step_db: f64,
    /// Doppler estimate noise at the reference SNR, Hz.
    pub doppler_noise_hz: f64,
    /// Reference SNR for the Doppler noise figure, dB.
    pub doppler_ref_snr_db: f64,
}

impl MeasurementNoise {
    /// Calibrated defaults for the Impinj R420's low-level data.
    pub fn paper_default() -> Self {
        MeasurementNoise {
            phase_noise_rad: 0.1,
            phase_step_rad: 2.0 * std::f64::consts::PI / 4096.0,
            rssi_step_db: 0.5,
            doppler_noise_hz: 1.2,
            doppler_ref_snr_db: 40.0,
        }
    }

    /// An idealised noiseless reader (useful in unit tests).
    pub fn noiseless() -> Self {
        MeasurementNoise {
            phase_noise_rad: 0.0,
            phase_step_rad: 0.0,
            rssi_step_db: 0.0,
            doppler_noise_hz: 0.0,
            doppler_ref_snr_db: 40.0,
        }
    }
}

impl Default for MeasurementNoise {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One physical-layer observation of a tag, as reported by the reader.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhyObservation {
    /// Reported phase in `[0, 2π)` (Eq. 1, noisy and quantised).
    pub phase_rad: f64,
    /// Reported RSSI (quantised).
    pub rssi: Dbm,
    /// Reported Doppler frequency shift, Hz (Eq. 2, noisy).
    pub doppler_hz: f64,
}

/// Computes the ideal backscatter phase of Eq. (1):
/// `θ = (2π/λ · 2d + c) mod 2π`.
///
/// # Panics
///
/// Panics if `lambda_m` is not positive.
///
/// # Examples
///
/// ```
/// use tagbreathe_rfchannel::observation::ideal_phase;
/// let theta = ideal_phase(2.0, 0.32, 0.0);
/// assert!((0.0..2.0 * std::f64::consts::PI).contains(&theta));
/// ```
pub fn ideal_phase(distance_m: f64, lambda_m: f64, offset_rad: f64) -> f64 {
    assert!(lambda_m > 0.0, "wavelength must be positive");
    let theta = 4.0 * std::f64::consts::PI * distance_m / lambda_m + offset_rad;
    theta.rem_euclid(2.0 * std::f64::consts::PI)
}

/// Per-channel constant reader circuit offset (the `c` of Eq. 1 beyond the
/// multipath contribution): deterministic in `(seed, channel)`.
pub fn reader_phase_offset(seed: u64, channel: usize) -> f64 {
    let mut z = seed ^ (channel as u64 + 1).wrapping_mul(0xD1B54A32D192ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64) * 2.0 * std::f64::consts::PI
}

/// Builds the full reader-visible observation of a tag read.
///
/// * `distance_m` — current antenna↔tag distance (breathing modulates this);
/// * `radial_velocity_mps` — rate of change of that distance (for Doppler);
/// * `lambda_m` — wavelength of the active channel;
/// * `gain` — static per-(channel, tag) fading gain;
/// * `reader_offset_rad` — per-channel circuit phase offset;
/// * `budget` — evaluated link budget (for RSSI and SNR-scaled Doppler
///   noise).
#[allow(clippy::too_many_arguments)]
pub fn observe<R: Rng + ?Sized>(
    rng: &mut R,
    noise: &MeasurementNoise,
    _config: &LinkConfig,
    budget: &LinkBudget,
    distance_m: f64,
    radial_velocity_mps: f64,
    lambda_m: f64,
    gain: ChannelGain,
    reader_offset_rad: f64,
) -> PhyObservation {
    // Phase: geometry + constant offsets + noise, then quantisation.
    let offset = reader_offset_rad + gain.phase;
    let mut theta = ideal_phase(distance_m, lambda_m, offset);
    theta += gaussian(rng, noise.phase_noise_rad);
    if noise.phase_step_rad > 0.0 {
        theta = (theta / noise.phase_step_rad).round() * noise.phase_step_rad;
    }
    let theta = theta.rem_euclid(2.0 * std::f64::consts::PI);

    // RSSI: budget power, quantised.
    let rssi = if noise.rssi_step_db > 0.0 {
        budget.rx_power.quantized(noise.rssi_step_db)
    } else {
        budget.rx_power
    };

    // Doppler (Eq. 2 inverted): the true shift of a backscatter link is
    // f = 2v/λ; the estimate from the tiny intra-packet phase rotation is
    // noisy, with noise growing as SNR drops — this is exactly why the
    // paper finds Doppler "not reliable in practice" (Section IV-A).
    let true_doppler = -2.0 * radial_velocity_mps / lambda_m;
    let sigma =
        noise.doppler_noise_hz * 10f64.powf((noise.doppler_ref_snr_db - budget.snr.0) / 20.0);
    let doppler_hz = true_doppler + gaussian(rng, sigma);

    PhyObservation {
        phase_rad: theta,
        rssi,
        doppler_hz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use prng::Xoshiro256;

    const LAMBDA: f64 = 0.3276;

    fn setup() -> (LinkConfig, LinkBudget) {
        let cfg = LinkConfig::paper_default();
        let budget = LinkBudget::evaluate(&cfg, 2.0, LAMBDA, 8.5, 0.0, 0.0);
        (cfg, budget)
    }

    fn unity_gain() -> ChannelGain {
        ChannelGain {
            amplitude: 1.0,
            phase: 0.0,
        }
    }

    #[test]
    fn ideal_phase_period_is_half_wavelength() {
        let t1 = ideal_phase(2.0, LAMBDA, 0.0);
        let t2 = ideal_phase(2.0 + LAMBDA / 2.0, LAMBDA, 0.0);
        assert!((t1 - t2).abs() < 1e-9, "phase should repeat every λ/2");
    }

    #[test]
    fn ideal_phase_slope_matches_eq1() {
        // dθ/dd = 4π/λ.
        let d = 3.0;
        let dd = 1e-4;
        let t1 = ideal_phase(d, LAMBDA, 0.0);
        let t2 = ideal_phase(d + dd, LAMBDA, 0.0);
        let slope = (t2 - t1) / dd;
        assert!((slope - 4.0 * std::f64::consts::PI / LAMBDA).abs() < 1e-3);
    }

    #[test]
    fn reader_offset_is_deterministic_and_channel_dependent() {
        assert_eq!(reader_phase_offset(1, 0), reader_phase_offset(1, 0));
        assert_ne!(reader_phase_offset(1, 0), reader_phase_offset(1, 1));
        assert_ne!(reader_phase_offset(1, 0), reader_phase_offset(2, 0));
        for ch in 0..50 {
            let c = reader_phase_offset(7, ch);
            assert!((0.0..2.0 * std::f64::consts::PI).contains(&c));
        }
    }

    #[test]
    fn noiseless_observation_is_exact() {
        let (cfg, budget) = setup();
        let mut rng = Xoshiro256::seed_from_u64(0);
        let obs = observe(
            &mut rng,
            &MeasurementNoise::noiseless(),
            &cfg,
            &budget,
            2.0,
            0.0,
            LAMBDA,
            unity_gain(),
            0.0,
        );
        assert!((obs.phase_rad - ideal_phase(2.0, LAMBDA, 0.0)).abs() < 1e-12);
        assert_eq!(obs.rssi, budget.rx_power);
        assert_eq!(obs.doppler_hz, 0.0);
    }

    #[test]
    fn phase_is_quantised_to_reader_step() {
        let (cfg, budget) = setup();
        let noise = MeasurementNoise::paper_default();
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..50 {
            let obs = observe(
                &mut rng,
                &noise,
                &cfg,
                &budget,
                2.0,
                0.0,
                LAMBDA,
                unity_gain(),
                0.0,
            );
            let steps = obs.phase_rad / noise.phase_step_rad;
            assert!((steps - steps.round()).abs() < 1e-6, "unquantised phase");
        }
    }

    #[test]
    fn rssi_is_quantised_to_half_db() {
        let (cfg, budget) = setup();
        let mut rng = Xoshiro256::seed_from_u64(2);
        let obs = observe(
            &mut rng,
            &MeasurementNoise::paper_default(),
            &cfg,
            &budget,
            2.0,
            0.0,
            LAMBDA,
            unity_gain(),
            0.0,
        );
        let steps = obs.rssi.0 / 0.5;
        assert!((steps - steps.round()).abs() < 1e-9);
    }

    #[test]
    fn doppler_tracks_radial_velocity_on_average() {
        let (cfg, budget) = setup();
        let noise = MeasurementNoise::paper_default();
        let mut rng = Xoshiro256::seed_from_u64(3);
        let v = -0.01; // 1 cm/s toward the antenna
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| {
                observe(
                    &mut rng,
                    &noise,
                    &cfg,
                    &budget,
                    2.0,
                    v,
                    LAMBDA,
                    unity_gain(),
                    0.0,
                )
                .doppler_hz
            })
            .sum::<f64>()
            / n as f64;
        let expected = -2.0 * v / LAMBDA;
        assert!((mean - expected).abs() < 0.05, "mean {mean} vs {expected}");
    }

    #[test]
    fn doppler_noise_grows_at_low_snr() {
        let cfg = LinkConfig::paper_default();
        let near = LinkBudget::evaluate(&cfg, 1.0, LAMBDA, 8.5, 0.0, 0.0);
        let far = LinkBudget::evaluate(&cfg, 6.0, LAMBDA, 8.5, 0.0, 0.0);
        let noise = MeasurementNoise::paper_default();
        let spread = |budget: &LinkBudget, seed| {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let xs: Vec<f64> = (0..2000)
                .map(|_| {
                    observe(
                        &mut rng,
                        &noise,
                        &cfg,
                        budget,
                        2.0,
                        0.0,
                        LAMBDA,
                        unity_gain(),
                        0.0,
                    )
                    .doppler_hz
                })
                .collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        assert!(spread(&far, 4) > 2.0 * spread(&near, 5));
    }

    #[test]
    fn phase_stays_in_principal_range() {
        let (cfg, budget) = setup();
        let noise = MeasurementNoise::paper_default();
        let mut rng = Xoshiro256::seed_from_u64(6);
        for i in 0..200 {
            let d = 1.0 + i as f64 * 0.05;
            let obs = observe(
                &mut rng,
                &noise,
                &cfg,
                &budget,
                d,
                0.0,
                LAMBDA,
                unity_gain(),
                1.0,
            );
            assert!(
                (0.0..2.0 * std::f64::consts::PI).contains(&obs.phase_rad),
                "phase {} out of range",
                obs.phase_rad
            );
        }
    }
}

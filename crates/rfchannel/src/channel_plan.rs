//! UHF channel plans and the frequency-hopping schedule.
//!
//! The EPC C1G2 standard mandates frequency hopping in FCC regions to
//! mitigate frequency-selective fading and co-channel interference. The
//! paper's measurements (Figure 5) show the Impinj R420 hopping among
//! **10 channels** with a dwell time of roughly **0.2 s**; the full FCC plan
//! has 50 channels at 500 kHz spacing in 902–928 MHz.

use crate::units::Hertz;

/// A set of equally spaced carrier channels.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelPlan {
    first_channel: Hertz,
    spacing: Hertz,
    count: usize,
}

impl ChannelPlan {
    /// Creates a plan of `count` channels starting at `first_channel` with
    /// `spacing` between adjacent channels.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or spacing/first channel are non-positive.
    pub fn new(first_channel: Hertz, spacing: Hertz, count: usize) -> Self {
        assert!(count > 0, "a channel plan needs at least one channel");
        assert!(first_channel.0 > 0.0, "first channel must be positive");
        assert!(spacing.0 >= 0.0, "spacing must be non-negative");
        ChannelPlan {
            first_channel,
            spacing,
            count,
        }
    }

    /// The 10-channel plan observed in the paper's measurements (Figure 5):
    /// ten 500 kHz channels spread over the 902–928 MHz band.
    pub fn us_10() -> Self {
        // Spread 10 channels evenly across the FCC band, centred usage.
        ChannelPlan::new(Hertz::from_mhz(903.25), Hertz::from_mhz(2.5), 10)
    }

    /// The full 50-channel FCC plan: 902.75–927.25 MHz at 500 kHz spacing.
    pub fn fcc_50() -> Self {
        ChannelPlan::new(Hertz::from_mhz(902.75), Hertz::from_mhz(0.5), 50)
    }

    /// The ETSI EN 302 208 European plan: four 200 kHz channels at
    /// 865.7 / 866.3 / 866.9 / 867.5 MHz. The paper notes regional
    /// regulations differ (Section IV-A.3); European readers hop (or
    /// listen-before-talk) over these four channels.
    pub fn etsi_4() -> Self {
        ChannelPlan::new(Hertz::from_mhz(865.7), Hertz::from_mhz(0.6), 4)
    }

    /// A single fixed channel (not FCC-legal for continuous waves, but
    /// useful for controlled experiments).
    pub fn fixed(freq: Hertz) -> Self {
        ChannelPlan::new(freq, Hertz(0.0), 1)
    }

    /// Number of channels in the plan.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the plan is empty (never true — plans have ≥ 1 channel).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Carrier frequency of channel `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn frequency(&self, index: usize) -> Hertz {
        assert!(
            index < self.count,
            "channel index {index} out of range for {}-channel plan",
            self.count
        );
        Hertz(self.first_channel.0 + self.spacing.0 * index as f64)
    }

    /// Wavelength of channel `index` in metres.
    pub fn wavelength_m(&self, index: usize) -> f64 {
        self.frequency(index).wavelength_m()
    }
}

/// A deterministic pseudo-random hop sequence over a [`ChannelPlan`].
///
/// FCC rules require a pseudo-random sequence visiting every channel before
/// repeating; we use a fixed permutation generated from a seed via a simple
/// multiplicative scheme so the sequence is reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct HopSequence {
    order: Vec<usize>,
    dwell_s: f64,
}

impl HopSequence {
    /// Builds a hop sequence for `plan` with the given dwell time per
    /// channel, shuffled deterministically by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `dwell_s` is not positive.
    pub fn new(plan: &ChannelPlan, dwell_s: f64, seed: u64) -> Self {
        assert!(dwell_s > 0.0, "dwell time must be positive");
        let n = plan.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Fisher–Yates with a splitmix64 stream: deterministic, seedable,
        // and dependency-free.
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        HopSequence { order, dwell_s }
    }

    /// The paper's observed configuration: 10 channels, 0.2 s dwell.
    pub fn paper_default(seed: u64) -> Self {
        HopSequence::new(&ChannelPlan::us_10(), 0.2, seed)
    }

    /// Dwell time per channel in seconds.
    pub fn dwell_s(&self) -> f64 {
        self.dwell_s
    }

    /// Channel index active at time `t` (seconds, from 0).
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative.
    pub fn channel_at(&self, t: f64) -> usize {
        assert!(t >= 0.0, "time must be non-negative");
        let slot = (t / self.dwell_s) as usize;
        self.order[slot % self.order.len()]
    }

    /// Time of the next hop boundary strictly after `t`.
    pub fn next_hop_after(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "time must be non-negative");
        ((t / self.dwell_s).floor() + 1.0) * self.dwell_s
    }

    /// The visit order of channel indices within one period.
    pub fn order(&self) -> &[usize] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us10_spans_band() {
        let plan = ChannelPlan::us_10();
        assert_eq!(plan.len(), 10);
        assert!(plan.frequency(0).as_mhz() >= 902.0);
        assert!(plan.frequency(9).as_mhz() <= 928.0);
    }

    #[test]
    fn fcc50_matches_regulation() {
        let plan = ChannelPlan::fcc_50();
        assert_eq!(plan.len(), 50);
        assert!((plan.frequency(0).as_mhz() - 902.75).abs() < 1e-9);
        assert!((plan.frequency(49).as_mhz() - 927.25).abs() < 1e-9);
    }

    #[test]
    fn etsi4_matches_regulation() {
        let plan = ChannelPlan::etsi_4();
        assert_eq!(plan.len(), 4);
        assert!((plan.frequency(0).as_mhz() - 865.7).abs() < 1e-9);
        assert!((plan.frequency(3).as_mhz() - 867.5).abs() < 1e-9);
    }

    #[test]
    fn wavelengths_differ_across_channels() {
        let plan = ChannelPlan::us_10();
        // The wavelength difference across the band is what causes phase
        // discontinuities at hops (Figure 4 of the paper).
        let l0 = plan.wavelength_m(0);
        let l9 = plan.wavelength_m(9);
        assert!(l0 > l9);
        assert!((l0 - l9) > 0.005);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_channel_panics() {
        ChannelPlan::us_10().frequency(10);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_plan_panics() {
        ChannelPlan::new(Hertz::from_mhz(915.0), Hertz(0.0), 0);
    }

    #[test]
    fn fixed_plan_single_channel() {
        let plan = ChannelPlan::fixed(Hertz::from_mhz(915.0));
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.frequency(0), Hertz::from_mhz(915.0));
        assert!(!plan.is_empty());
    }

    #[test]
    fn hop_sequence_is_a_permutation() {
        let seq = HopSequence::paper_default(42);
        let mut seen = seq.order().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn hop_sequence_is_deterministic_per_seed() {
        let a = HopSequence::paper_default(7);
        let b = HopSequence::paper_default(7);
        let c = HopSequence::paper_default(8);
        assert_eq!(a.order(), b.order());
        assert_ne!(a.order(), c.order());
    }

    #[test]
    fn channel_at_respects_dwell() {
        let seq = HopSequence::paper_default(1);
        assert_eq!(seq.channel_at(0.0), seq.order()[0]);
        assert_eq!(seq.channel_at(0.19), seq.order()[0]);
        assert_eq!(seq.channel_at(0.21), seq.order()[1]);
        // Wraps after a full period (10 × 0.2 s = 2 s).
        assert_eq!(seq.channel_at(2.05), seq.order()[0]);
    }

    #[test]
    fn next_hop_boundary() {
        let seq = HopSequence::paper_default(1);
        assert!((seq.next_hop_after(0.0) - 0.2).abs() < 1e-12);
        assert!((seq.next_hop_after(0.35) - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        HopSequence::paper_default(1).channel_at(-1.0);
    }

    #[test]
    fn paper_default_dwell_is_200ms() {
        assert_eq!(HopSequence::paper_default(0).dwell_s(), 0.2);
    }
}

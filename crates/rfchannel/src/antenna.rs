//! Reader antenna model: placement, boresight and gain pattern.
//!
//! The prototype uses an Alien ALR-8696-C circularly polarised panel antenna
//! with 8.5 dBic boresight gain; the Impinj R420 drives up to four such
//! antennas in round-robin.

use crate::geometry::Vec3;
use crate::units::Db;

/// A directional reader antenna.
///
/// # Examples
///
/// ```
/// use tagbreathe_rfchannel::antenna::Antenna;
/// use tagbreathe_rfchannel::geometry::Vec3;
///
/// // Antenna 1 m above the floor looking down-range (+x), as in the paper.
/// let ant = Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0));
/// let on_axis = ant.gain_toward(Vec3::new(4.0, 0.0, 1.0));
/// let off_axis = ant.gain_toward(Vec3::new(0.5, 4.0, 1.0));
/// assert!(on_axis > off_axis);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Antenna {
    position: Vec3,
    boresight: Vec3,
    peak_gain_dbi: f64,
    beamwidth_deg: f64,
    front_to_back_db: f64,
}

impl Antenna {
    /// Creates an antenna.
    ///
    /// `boresight` is normalised internally. `beamwidth_deg` is the 3 dB
    /// (half-power) full beamwidth; `front_to_back_db` caps the rear-lobe
    /// attenuation.
    ///
    /// # Panics
    ///
    /// Panics if the boresight is a zero vector, the beamwidth is not in
    /// `(0, 360]`, or the front-to-back ratio is negative.
    pub fn new(
        position: Vec3,
        boresight: Vec3,
        peak_gain_dbi: f64,
        beamwidth_deg: f64,
        front_to_back_db: f64,
    ) -> Self {
        assert!(
            beamwidth_deg > 0.0 && beamwidth_deg <= 360.0,
            "beamwidth must be in (0, 360] degrees"
        );
        assert!(
            front_to_back_db >= 0.0,
            "front-to-back ratio must be non-negative"
        );
        Antenna {
            position,
            boresight: boresight.normalized(),
            peak_gain_dbi,
            beamwidth_deg,
            front_to_back_db,
        }
    }

    /// The paper's antenna: 8.5 dBic circular-polarised panel, ~65° 3 dB
    /// beamwidth, 25 dB front-to-back, boresight along +x.
    pub fn paper_default(position: Vec3) -> Self {
        Antenna::new(position, Vec3::new(1.0, 0.0, 0.0), 8.5, 65.0, 25.0)
    }

    /// Antenna position in metres.
    pub fn position(&self) -> Vec3 {
        self.position
    }

    /// Boresight unit vector.
    pub fn boresight(&self) -> Vec3 {
        self.boresight
    }

    /// Peak (boresight) gain in dBi.
    pub fn peak_gain_dbi(&self) -> f64 {
        self.peak_gain_dbi
    }

    /// Gain toward a point, using a parabolic main-lobe rolloff
    /// (−12 (θ/θ₃dB)² dB, the standard one-parameter pattern model) floored
    /// at the front-to-back ratio.
    pub fn gain_toward(&self, point: Vec3) -> Db {
        let dir = point - self.position;
        if dir.norm() < 1e-9 {
            return Db(self.peak_gain_dbi);
        }
        let theta = self.boresight.angle_to(dir).to_degrees();
        let half_bw = self.beamwidth_deg / 2.0;
        let rolloff = 3.0 * (theta / half_bw).powi(2);
        let rolloff = rolloff.min(self.front_to_back_db);
        Db(self.peak_gain_dbi - rolloff)
    }

    /// Distance from the antenna to a point, metres.
    pub fn distance_to(&self, point: Vec3) -> f64 {
        self.position.distance_to(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ant() -> Antenna {
        Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))
    }

    #[test]
    fn boresight_gain_is_peak() {
        let g = ant().gain_toward(Vec3::new(5.0, 0.0, 1.0));
        assert!((g.0 - 8.5).abs() < 1e-9);
    }

    #[test]
    fn half_beamwidth_is_3db_down() {
        let a = ant();
        // 32.5° off axis in the y-plane at the antenna height.
        let theta = (65.0f64 / 2.0).to_radians();
        let p = Vec3::new(5.0 * theta.cos(), 5.0 * theta.sin(), 1.0);
        let g = a.gain_toward(p);
        assert!((g.0 - (8.5 - 3.0)).abs() < 0.05, "gain {g}");
    }

    #[test]
    fn rear_lobe_is_floored() {
        let g = ant().gain_toward(Vec3::new(-5.0, 0.0, 1.0));
        assert!((g.0 - (8.5 - 25.0)).abs() < 1e-9);
    }

    #[test]
    fn gain_decreases_monotonically_off_axis() {
        let a = ant();
        let mut last = f64::MAX;
        for deg in [0.0f64, 10.0, 20.0, 40.0, 60.0, 90.0] {
            let theta = deg.to_radians();
            let p = Vec3::new(5.0 * theta.cos(), 5.0 * theta.sin(), 1.0);
            let g = a.gain_toward(p).0;
            assert!(g <= last + 1e-9, "gain increased at {deg}°");
            last = g;
        }
    }

    #[test]
    fn coincident_point_returns_peak() {
        let a = ant();
        assert_eq!(a.gain_toward(a.position()), Db(8.5));
    }

    #[test]
    fn distance_to_point() {
        assert_eq!(ant().distance_to(Vec3::new(3.0, 4.0, 1.0)), 5.0);
    }

    #[test]
    #[should_panic(expected = "beamwidth")]
    fn invalid_beamwidth_panics() {
        Antenna::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 8.5, 0.0, 25.0);
    }
}

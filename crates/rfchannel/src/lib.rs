//! # tagbreathe-rfchannel
//!
//! A UHF RFID backscatter channel simulator: the physical substrate the
//! TagBreathe reproduction runs on in place of real hardware (Impinj R420
//! reader, Alien 9640 tags, 8.5 dBic panel antenna).
//!
//! The model captures every channel effect the paper's pipeline depends on:
//!
//! * **Phase (Eq. 1)** — `θ = (2π/λ · 2d + c) mod 2π` with per-channel
//!   wavelength, per-(channel, tag) constant offsets, Gaussian noise and the
//!   reader's 2π/4096 quantisation ([`observation`]);
//! * **Frequency hopping** — 10-channel plan with 0.2 s dwell as measured in
//!   the paper's Figure 5 ([`channel_plan`]), which makes raw phase
//!   discontinuous at hops (Figure 4);
//! * **Link budget** — forward-limited passive-tag power-up, two-way path
//!   loss, antenna pattern, polarisation loss ([`link`], [`antenna`]);
//! * **Body blockage** — orientation-dependent attenuation reproducing the
//!   read-rate collapse beyond 90° (Figure 15) ([`blockage`]);
//! * **Fading** — static per-channel Rician multipath ([`fading`]);
//! * **RSSI / Doppler reports** — quantised RSSI (0.5 dBm) and the noisy
//!   intra-packet Doppler estimate of Eq. 2 ([`observation`]).
//!
//! # Examples
//!
//! Evaluate whether a tag 4 m from the antenna can be read:
//!
//! ```
//! use tagbreathe_rfchannel::link::{LinkBudget, LinkConfig};
//!
//! let config = LinkConfig::paper_default();
//! let budget = LinkBudget::evaluate(&config, 4.0, 0.3276, 8.5, 0.0, 0.0);
//! assert!(budget.powered);
//! let p = budget.read_probability(&config);
//! assert!(p > 0.5 && p < 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod antenna;
pub mod blockage;
pub mod channel_plan;
pub mod fading;
pub mod geometry;
pub mod link;
pub mod noise;
pub mod observation;
pub mod tworay;
pub mod units;

pub use antenna::Antenna;
pub use blockage::BodyBlockage;
pub use channel_plan::{ChannelPlan, HopSequence};
pub use fading::FadingTable;
pub use geometry::Vec3;
pub use link::{LinkBudget, LinkConfig};
pub use observation::{MeasurementNoise, PhyObservation};
pub use units::{Db, Dbm, Hertz};

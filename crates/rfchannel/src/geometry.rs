//! 3-D geometry primitives for antenna/tag placement.

use std::ops::{Add, Mul, Neg, Sub};

/// A point or vector in 3-D space, in metres.
///
/// The coordinate convention throughout the workspace: `x` points from the
/// antenna into the room (range axis), `y` is lateral, `z` is height above
/// the floor.
///
/// # Examples
///
/// ```
/// use tagbreathe_rfchannel::geometry::Vec3;
///
/// let antenna = Vec3::new(0.0, 0.0, 1.0);
/// let tag = Vec3::new(4.0, 0.0, 1.2);
/// assert!((antenna.distance_to(tag) - 4.005).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// Range axis (metres).
    pub x: f64,
    /// Lateral axis (metres).
    pub y: f64,
    /// Height axis (metres).
    pub z: f64,
}

impl Vec3 {
    /// The origin / zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Distance to another point.
    pub fn distance_to(self, other: Vec3) -> f64 {
        (other - self).norm()
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Returns the unit vector in this direction.
    ///
    /// # Panics
    ///
    /// Panics if the vector is (near-)zero.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        assert!(n > 1e-12, "cannot normalise a zero vector");
        self * (1.0 / n)
    }

    /// Angle in radians between this vector and another, in `[0, π]`.
    ///
    /// # Panics
    ///
    /// Panics if either vector is (near-)zero.
    pub fn angle_to(self, other: Vec3) -> f64 {
        let denom = self.norm() * other.norm();
        assert!(denom > 1e-12, "angle with a zero vector is undefined");
        (self.dot(other) / denom).clamp(-1.0, 1.0).acos()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_345_triangle() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(a.distance_to(b), 5.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = Vec3::new(2.0, -3.0, 6.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalizing_zero_panics() {
        Vec3::ZERO.normalized();
    }

    #[test]
    fn angle_between_axes_is_right_angle() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert!((x.angle_to(y) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!(x.angle_to(x).abs() < 1e-6);
        assert!((x.angle_to(-x) - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn dot_product() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a.dot(b), -1.0 + 1.0 + 6.0);
    }
}

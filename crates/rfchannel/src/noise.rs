//! Noise sampling helpers (Gaussian via Box–Muller, seeded and
//! reproducible).

use dsp::stats::approx_zero;
use prng::Rng;

/// Draws one sample from a zero-mean Gaussian with standard deviation
/// `sigma` using the Box–Muller transform.
///
/// # Panics
///
/// Panics if `sigma` is negative.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "standard deviation must be non-negative");
    if approx_zero(sigma) {
        return 0.0;
    }
    // Box–Muller: u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen_f64();
    let u2 = rng.gen_f64();
    let mag = (-2.0 * u1.ln()).sqrt();
    sigma * mag * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a Rician-distributed amplitude with K-factor `k_linear`
/// (ratio of specular to scattered power) and total mean power 1.
///
/// Used for per-channel static multipath gains: large K ≈ strong
/// line-of-sight, K → 0 degenerates to Rayleigh.
///
/// # Panics
///
/// Panics if `k_linear` is negative.
pub fn rician_amplitude<R: Rng + ?Sized>(rng: &mut R, k_linear: f64) -> f64 {
    assert!(k_linear >= 0.0, "Rician K-factor must be non-negative");
    let specular = (k_linear / (k_linear + 1.0)).sqrt();
    let sigma = (1.0 / (2.0 * (k_linear + 1.0))).sqrt();
    let re = specular + gaussian(rng, sigma);
    let im = gaussian(rng, sigma);
    re.hypot(im)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prng::Xoshiro256;

    #[test]
    fn gaussian_moments() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn zero_sigma_is_exactly_zero() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(gaussian(&mut rng, 0.0), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        gaussian(&mut rng, -1.0);
    }

    #[test]
    fn rician_mean_power_is_unity() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        for k in [0.0, 1.0, 10.0, 100.0] {
            let n = 50_000;
            let p: f64 = (0..n)
                .map(|_| {
                    let a = rician_amplitude(&mut rng, k);
                    a * a
                })
                .sum::<f64>()
                / n as f64;
            assert!((p - 1.0).abs() < 0.05, "K={k}: power {p}");
        }
    }

    #[test]
    fn high_k_concentrates_near_one() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let samples: Vec<f64> = (0..1000)
            .map(|_| rician_amplitude(&mut rng, 1000.0))
            .collect();
        for a in samples {
            assert!((a - 1.0).abs() < 0.2, "amplitude {a} too spread for K=1000");
        }
    }

    #[test]
    fn reproducible_with_same_seed() {
        let mut a = Xoshiro256::seed_from_u64(9);
        let mut b = Xoshiro256::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(gaussian(&mut a, 1.0), gaussian(&mut b, 1.0));
        }
    }
}

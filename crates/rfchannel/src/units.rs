//! Physical-unit newtypes (C-NEWTYPE): frequencies and power levels.

use std::fmt;
use std::ops::{Add, Sub};

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// A carrier frequency in hertz.
///
/// # Examples
///
/// ```
/// use tagbreathe_rfchannel::units::Hertz;
///
/// let f = Hertz::from_mhz(915.0);
/// assert!((f.wavelength_m() - 0.3276).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Hertz(pub f64);

impl Hertz {
    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// This frequency expressed in megahertz.
    pub fn as_mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// Free-space wavelength λ = c / f in metres.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not positive.
    pub fn wavelength_m(self) -> f64 {
        assert!(self.0 > 0.0, "wavelength of a non-positive frequency");
        SPEED_OF_LIGHT / self.0
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} MHz", self.as_mhz())
    }
}

/// A power level in dBm (decibels relative to 1 mW).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Dbm(pub f64);

impl Dbm {
    /// Converts to linear milliwatts.
    pub fn as_milliwatts(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Creates a power level from linear milliwatts.
    ///
    /// # Panics
    ///
    /// Panics if `mw` is not positive.
    pub fn from_milliwatts(mw: f64) -> Self {
        assert!(mw > 0.0, "dBm of a non-positive power");
        Dbm(10.0 * mw.log10())
    }

    /// Quantises to a step (e.g. the Impinj reader reports RSSI in 0.5 dBm
    /// steps).
    pub fn quantized(self, step_db: f64) -> Dbm {
        assert!(step_db > 0.0, "quantisation step must be positive");
        Dbm((self.0 / step_db).round() * step_db)
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, gain: Db) -> Dbm {
        Dbm(self.0 + gain.0)
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, loss: Db) -> Dbm {
        Dbm(self.0 - loss.0)
    }
}

impl Sub<Dbm> for Dbm {
    type Output = Db;
    fn sub(self, other: Dbm) -> Db {
        Db(self.0 - other.0)
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}

/// A relative gain or loss in decibels.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Db(pub f64);

impl Add for Db {
    type Output = Db;
    fn add(self, o: Db) -> Db {
        Db(self.0 + o.0)
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, o: Db) -> Db {
        Db(self.0 - o.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dB", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_at_915_mhz() {
        let lambda = Hertz::from_mhz(915.0).wavelength_m();
        assert!((lambda - 0.32764).abs() < 1e-4);
    }

    #[test]
    fn mhz_round_trip() {
        assert_eq!(Hertz::from_mhz(902.75).as_mhz(), 902.75);
    }

    #[test]
    #[should_panic(expected = "non-positive frequency")]
    fn zero_frequency_wavelength_panics() {
        Hertz(0.0).wavelength_m();
    }

    #[test]
    fn dbm_milliwatt_round_trip() {
        assert!((Dbm(30.0).as_milliwatts() - 1000.0).abs() < 1e-9);
        assert!((Dbm::from_milliwatts(1.0).0 - 0.0).abs() < 1e-12);
        assert!((Dbm::from_milliwatts(Dbm(-17.3).as_milliwatts()).0 + 17.3).abs() < 1e-9);
    }

    #[test]
    fn dbm_arithmetic_with_db() {
        let p = Dbm(30.0) + Db(8.5) - Db(31.7);
        assert!((p.0 - 6.8).abs() < 1e-12);
        let diff = Dbm(-40.0) - Dbm(-70.0);
        assert_eq!(diff, Db(30.0));
    }

    #[test]
    fn rssi_quantization_half_db() {
        assert_eq!(Dbm(-53.26).quantized(0.5), Dbm(-53.5));
        assert_eq!(Dbm(-53.24).quantized(0.5), Dbm(-53.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Hertz::from_mhz(915.0).to_string(), "915.000 MHz");
        assert_eq!(Dbm(-53.5).to_string(), "-53.5 dBm");
        assert_eq!(Db(3.0).to_string(), "3.0 dB");
    }

    #[test]
    fn db_arithmetic() {
        assert_eq!(Db(3.0) + Db(4.0), Db(7.0));
        assert_eq!(Db(3.0) - Db(4.0), Db(-1.0));
    }
}

//! Two-ray ground-reflection propagation.
//!
//! Indoor UHF links see at least one strong floor reflection. The two-ray
//! model superposes the direct ray with a ground bounce; their interference
//! makes path loss oscillate with distance (and antenna/tag heights)
//! instead of following the smooth free-space curve. The reader can be
//! configured with either model; `repro`'s quick sweeps use free space
//! (plus stochastic fading) while the two-ray model grounds a sensitivity
//! ablation.

use crate::link::free_space_path_loss_db;

/// Path loss in dB of a two-ray link.
///
/// * `ground_distance_m` — horizontal transmitter→receiver separation;
/// * `h_tx_m`, `h_rx_m` — antenna heights above the reflecting floor;
/// * `lambda_m` — wavelength;
/// * `reflection_coeff` — floor reflection magnitude `Γ ∈ [0, 1]`
///   (typical indoor floors ≈ 0.3–0.7; the reflected ray also picks up the
///   conventional π phase shift).
///
/// # Panics
///
/// Panics if the geometry is degenerate (non-positive distance/heights),
/// `lambda_m` is not positive, or `reflection_coeff` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use tagbreathe_rfchannel::tworay::two_ray_path_loss_db;
///
/// // With Γ = 0 the model reduces to free space.
/// let loss = two_ray_path_loss_db(4.0, 1.0, 1.0, 0.3276, 0.0);
/// let fspl = tagbreathe_rfchannel::link::free_space_path_loss_db(4.0, 0.3276);
/// assert!((loss - fspl).abs() < 1e-9);
/// ```
pub fn two_ray_path_loss_db(
    ground_distance_m: f64,
    h_tx_m: f64,
    h_rx_m: f64,
    lambda_m: f64,
    reflection_coeff: f64,
) -> f64 {
    assert!(ground_distance_m > 0.0, "distance must be positive");
    assert!(h_tx_m > 0.0 && h_rx_m > 0.0, "heights must be positive");
    assert!(lambda_m > 0.0, "wavelength must be positive");
    assert!(
        (0.0..=1.0).contains(&reflection_coeff),
        "reflection coefficient must be in [0, 1]"
    );
    let dh = h_tx_m - h_rx_m;
    let sh = h_tx_m + h_rx_m;
    let d_direct = (ground_distance_m * ground_distance_m + dh * dh).sqrt();
    let d_reflect = (ground_distance_m * ground_distance_m + sh * sh).sqrt();
    let k = 2.0 * std::f64::consts::PI / lambda_m;
    // Complex sum of the two rays, amplitudes ∝ 1/d, reflected ray negated
    // (π phase shift at grazing reflection).
    let (re_d, im_d) = (
        (k * d_direct).cos() / d_direct,
        -(k * d_direct).sin() / d_direct,
    );
    let (re_r, im_r) = (
        -reflection_coeff * (k * d_reflect).cos() / d_reflect,
        reflection_coeff * (k * d_reflect).sin() / d_reflect,
    );
    let magnitude = ((re_d + re_r).powi(2) + (im_d + im_r).powi(2)).sqrt();
    // Normalise so Γ = 0 reproduces free-space loss exactly.
    let free_space_field = 1.0 / d_direct;
    free_space_path_loss_db(d_direct, lambda_m) - 20.0 * (magnitude / free_space_field).log10()
}

/// The crossover distance `4 h_tx h_rx / λ` beyond which the two-ray model
/// transitions to its asymptotic 40 log₁₀ d regime.
pub fn crossover_distance_m(h_tx_m: f64, h_rx_m: f64, lambda_m: f64) -> f64 {
    assert!(lambda_m > 0.0, "wavelength must be positive");
    4.0 * h_tx_m * h_rx_m / lambda_m
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAMBDA: f64 = 0.3276;

    #[test]
    fn zero_reflection_equals_free_space() {
        for d in [1.0, 2.0, 5.0, 10.0] {
            let loss = two_ray_path_loss_db(d, 1.0, 1.0, LAMBDA, 0.0);
            let fspl = free_space_path_loss_db(d, LAMBDA);
            assert!((loss - fspl).abs() < 1e-9, "at {d} m");
        }
    }

    #[test]
    fn interference_oscillates_around_free_space() {
        // With a strong reflection, loss both exceeds and falls below the
        // free-space value across distances.
        let mut above = 0;
        let mut below = 0;
        for i in 0..200 {
            let d = 1.0 + i as f64 * 0.025;
            let loss = two_ray_path_loss_db(d, 1.0, 1.0, LAMBDA, 0.6);
            let fspl = free_space_path_loss_db(d, LAMBDA);
            if loss > fspl + 0.5 {
                above += 1;
            }
            if loss < fspl - 0.5 {
                below += 1;
            }
        }
        assert!(above > 10 && below > 10, "above {above}, below {below}");
    }

    #[test]
    fn fade_depth_bounded_by_reflection_strength() {
        // Γ = 0.3 cannot deepen a fade beyond 20·log10(1 − 0.3) ≈ −3.1 dB
        // of field cancellation (plus the path-length imbalance, small at
        // short range).
        for i in 0..400 {
            let d = 1.0 + i as f64 * 0.01;
            let loss = two_ray_path_loss_db(d, 1.0, 1.0, LAMBDA, 0.3);
            let fspl = free_space_path_loss_db(d, LAMBDA);
            assert!(loss - fspl < 3.5, "fade {:.2} dB at {d} m", loss - fspl);
        }
    }

    #[test]
    fn crossover_distance_formula() {
        let d = crossover_distance_m(1.0, 1.0, LAMBDA);
        assert!((d - 4.0 / LAMBDA).abs() < 1e-9);
    }

    #[test]
    fn beyond_crossover_loss_grows_steeper() {
        // Far past crossover the two-ray asymptote is 40 log d: doubling
        // distance adds ~12 dB, vs 6 dB in free space.
        let d0 = 4.0 * crossover_distance_m(1.0, 1.0, LAMBDA);
        let l1 = two_ray_path_loss_db(d0, 1.0, 1.0, LAMBDA, 1.0);
        let l2 = two_ray_path_loss_db(2.0 * d0, 1.0, 1.0, LAMBDA, 1.0);
        assert!(
            l2 - l1 > 9.0,
            "only {:.1} dB per doubling past crossover",
            l2 - l1
        );
    }

    #[test]
    #[should_panic(expected = "reflection coefficient")]
    fn invalid_gamma_panics() {
        two_ray_path_loss_db(4.0, 1.0, 1.0, LAMBDA, 1.5);
    }

    #[test]
    #[should_panic(expected = "heights")]
    fn zero_height_panics() {
        two_ray_path_loss_db(4.0, 0.0, 1.0, LAMBDA, 0.5);
    }
}

//! A lexed source file plus the file-level facts rules need: which crate
//! it belongs to, whether it is test-only code, and which line ranges sit
//! inside `#[cfg(test)]` modules.

use crate::lexer::{lex, Token, TokenKind};

/// A lexed workspace source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Workspace crate the file belongs to (directory under `crates/`),
    /// or `"suite"` for the root package.
    pub crate_name: String,
    /// Whole file is test/bench/example code (under `tests/`, `benches/`
    /// or `examples/`).
    pub test_only: bool,
    /// Token stream including comments.
    pub tokens: Vec<Token>,
    /// Inclusive line ranges covered by `#[cfg(test)] mod … { … }`.
    test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes `source` found at `rel_path` (workspace-relative).
    pub fn parse(rel_path: &str, source: &str) -> SourceFile {
        let rel_path = rel_path.replace('\\', "/");
        let tokens = lex(source);
        let test_ranges = find_test_ranges(&tokens);
        let crate_name = classify_crate(&rel_path);
        let test_only = is_test_only_path(&rel_path);
        SourceFile {
            rel_path,
            crate_name,
            test_only,
            tokens,
            test_ranges,
        }
    }

    /// Whether the given 1-indexed line is test code: either the whole
    /// file is test-only, or the line falls in a `#[cfg(test)]` module.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_only
            || self
                .test_ranges
                .iter()
                .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Tokens with comments filtered out — most rules want code only.
    pub fn code_tokens(&self) -> Vec<&Token> {
        self.tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
            .collect()
    }
}

/// Maps a workspace-relative path to its crate name.
fn classify_crate(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        _ => "suite".to_string(),
    }
}

/// Test-only file classes: integration tests, benches and examples — both
/// at the workspace root and inside member crates.
fn is_test_only_path(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

/// Finds `#[cfg(test)] mod name { … }` spans by token pattern + brace
/// matching. Attributes between the cfg and the `mod` keyword (e.g.
/// `#[allow(…)]`) are skipped.
fn find_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
        .collect();
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if is_cfg_test_attr(&code, i) {
            let start_line = code.get(i).map_or(0, |t| t.line);
            // Skip this attribute (7 tokens: # [ cfg ( test ) ]) and any
            // further attributes, then expect `mod ident {`.
            let mut j = i + 7;
            while code.get(j).is_some_and(|t| t.kind.is_punct("#")) {
                j = skip_attribute(&code, j);
            }
            let is_mod = code.get(j).is_some_and(|t| t.kind.is_ident("mod"))
                && code
                    .get(j + 1)
                    .is_some_and(|t| matches!(t.kind, TokenKind::Ident(_)))
                && code.get(j + 2).is_some_and(|t| t.kind.is_punct("{"));
            if is_mod {
                if let Some(end) = matching_brace(&code, j + 2) {
                    ranges.push((start_line, code.get(end).map_or(start_line, |t| t.line)));
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    ranges
}

/// Is `# [ cfg ( test ) ]` at `i`?
fn is_cfg_test_attr(code: &[&Token], i: usize) -> bool {
    let punct = |k: usize, p: &str| code.get(i + k).is_some_and(|t| t.kind.is_punct(p));
    let ident = |k: usize, id: &str| code.get(i + k).is_some_and(|t| t.kind.is_ident(id));
    punct(0, "#")
        && punct(1, "[")
        && ident(2, "cfg")
        && punct(3, "(")
        && ident(4, "test")
        && punct(5, ")")
        && punct(6, "]")
}

/// Given `#` at `i`, returns the index just past the attribute's `]`.
pub fn skip_attribute(code: &[&Token], i: usize) -> usize {
    let mut j = i + 1; // at '['
    if !code.get(j).is_some_and(|t| t.kind.is_punct("[")) {
        return i + 1;
    }
    let mut depth = 0usize;
    while let Some(t) = code.get(j) {
        if t.kind.is_punct("[") {
            depth += 1;
        } else if t.kind.is_punct("]") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    code.len()
}

/// Index of the `}` matching the `{` at `open`.
pub fn matching_brace(code: &[&Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.kind.is_punct("{") {
            depth += 1;
        } else if t.kind.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_classification() {
        assert_eq!(classify_crate("crates/dsp/src/phase.rs"), "dsp");
        assert_eq!(classify_crate("src/lib.rs"), "suite");
        assert_eq!(classify_crate("tests/cli.rs"), "suite");
    }

    #[test]
    fn test_only_paths() {
        assert!(is_test_only_path("tests/cli.rs"));
        assert!(is_test_only_path("crates/bench/benches/dsp.rs"));
        assert!(is_test_only_path("examples/quickstart.rs"));
        assert!(!is_test_only_path("crates/dsp/src/phase.rs"));
    }

    #[test]
    fn cfg_test_module_span_detected() {
        let src = "\
pub fn prod() -> f64 { 0.0 }

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t() {
        assert!(prod() == 0.0);
    }
}
";
        let f = SourceFile::parse("crates/dsp/src/x.rs", src);
        assert!(!f.is_test_line(1), "production line misclassified");
        assert!(f.is_test_line(9), "test body not detected");
    }

    #[test]
    fn attributes_between_cfg_and_mod_are_skipped() {
        let src = "#[cfg(test)]\n#[allow(clippy::float_cmp)]\nmod tests { fn f() {} }\n";
        let f = SourceFile::parse("crates/dsp/src/x.rs", src);
        assert!(f.is_test_line(3));
    }

    #[test]
    fn braces_in_strings_do_not_break_span_matching() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}}}{{{\";\n    fn f() {}\n}\npub fn after() {}\n";
        let f = SourceFile::parse("crates/dsp/src/x.rs", src);
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }
}

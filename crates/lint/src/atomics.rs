//! Atomics-discipline analysis: every atomic call site must follow the
//! ordering protocol declared for its atomic in `[atomics]` in
//! `lint.toml`.
//!
//! The `[atomics]` section names each cross-thread atomic — as
//! `Type.member` (a struct field, or an accessor method returning the
//! atomic) or a bare binding name — and declares its protocol:
//!
//! * `publish(Release) / observe(Acquire)` — a publication point. Every
//!   `store` must be `Release` (it publishes the writes before it) and
//!   every `load` must be `Acquire` (it observes them on another
//!   thread). A `Relaxed` store here is a publication that carries no
//!   release edge — the classic lost-publication bug the fleet ring's
//!   `sync_mutant` seeds deliberately.
//! * `relaxed` — a standalone statistic or payload cell ordered by some
//!   other edge; every access must be `Relaxed`.
//!
//! `SeqCst` anywhere a declared pair suffices is flagged as a cost
//! smell, and an ordering outside the declaration entirely is a
//! mixed-ordering error. Atomic operations that resolve to no
//! declaration, and `pub` signatures of `[shard]`-rooted types that
//! expose an undeclared atomic, are flagged too — the declaration table
//! is the complete inventory of the workspace's lock-free protocol.
//!
//! Call sites are resolved through the same receiver-type machinery the
//! hot-path pass uses: `self.ring.head.value.store(…)` is walked to the
//! chain `RingProducer.ring → SpscRing.head → PadAtomic.value` and
//! matched deepest-link-first against the declarations, so the shared
//! `.value` cell of a padding wrapper attributes to `SpscRing.head`
//! rather than colliding with `SpscRing.tail`. Orderings spelled via
//! `const` items (the ring's `protocol::PUBLISH`) are resolved through
//! the workspace's `Ordering`-typed constants, honouring `#[cfg(…)]`
//! gates against the analysis's active cfg set — which is how
//! `tagbreathe-lint atomics --cfg sync_mutant` proves the seeded
//! weakening is caught without rebuilding anything.
//!
//! Like every pass here the resolution is heuristic (no real type
//! inference); it is deliberately conservative — a method call only
//! counts as an atomic operation when its receiver resolves to an
//! `Atomic*` type or one of its arguments resolves to an `Ordering`
//! value, so `Vec::swap(i, j)` never trips it.

use crate::callgraph::Workspace;
use crate::config::Protocol;
use crate::parser::{Block, ConstItem, Expr, Stmt, TypeItem};
use crate::sarif::json_string;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;

/// The `std::sync::atomic::Ordering` variants.
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Methods that perform an atomic operation when their receiver is an
/// atomic cell.
const ATOMIC_METHODS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// Pass-through methods that do not change which atomic a chain names.
const PASSTHROUGH_METHODS: [&str; 5] = ["clone", "as_ref", "as_deref", "unwrap", "expect"];

/// What kind of discipline violation a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// `Relaxed` store (or RMW) on a publish/observe atomic.
    RelaxedPublish,
    /// `Relaxed` load on a publish/observe atomic.
    RelaxedObserve,
    /// `SeqCst` where the declared protocol suffices.
    SeqCstOverkill,
    /// Any other ordering outside the declaration.
    MixedOrdering,
    /// Atomic operation that resolves to no declaration.
    UndeclaredAtomic,
    /// `pub` signature of a `[shard]` root exposing an undeclared atomic.
    UndeclaredPubAtomic,
    /// Ordering argument that cannot be resolved to one variant.
    UnresolvedOrdering,
    /// Declaration that matched no call site (likely a typo or rot).
    DeadDeclaration,
}

impl FindingKind {
    /// Stable machine tag for the JSON report.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            FindingKind::RelaxedPublish => "relaxed-publish",
            FindingKind::RelaxedObserve => "relaxed-observe",
            FindingKind::SeqCstOverkill => "seqcst-overkill",
            FindingKind::MixedOrdering => "mixed-ordering",
            FindingKind::UndeclaredAtomic => "undeclared-atomic",
            FindingKind::UndeclaredPubAtomic => "undeclared-pub-atomic",
            FindingKind::UnresolvedOrdering => "unresolved-ordering",
            FindingKind::DeadDeclaration => "dead-declaration",
        }
    }
}

/// One atomics-discipline finding.
#[derive(Debug)]
pub struct Finding {
    /// Violation category.
    pub kind: FindingKind,
    /// Declared key (or receiver description for undeclared atomics).
    pub atomic: String,
    /// Workspace-relative path of the site.
    pub path: String,
    /// 1-indexed line of the site.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Witness call path from the nearest public entry point to the
    /// containing function, inclusive. Empty for config-level findings.
    pub witness: Vec<String>,
}

/// The result of one atomics scan.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (path, line, atomic).
    pub findings: Vec<Finding>,
    /// Number of `[atomics]` declarations in force.
    pub decl_count: usize,
    /// Atomic operations resolved and checked against a declaration.
    pub checked_ops: usize,
    /// The cfg flags the const resolution ran under.
    pub active_cfgs: Vec<String>,
}

/// Scans the workspace against its `[atomics]` declarations. An empty
/// declaration table disables the pass (it is opt-in, like `[hotpath]`).
#[must_use]
pub fn analyze(ws: &Workspace, active_cfgs: &[String]) -> Report {
    if ws.atomics.decls.is_empty() {
        return Report::default();
    }
    let consts = ordering_consts(ws, active_cfgs);
    let mut types: BTreeMap<&str, &TypeItem> = BTreeMap::new();
    for file in &ws.files {
        for t in &file.parsed.types {
            if !t.is_test && !file.test_only {
                types.entry(&t.name).or_insert(t);
            }
        }
    }
    let aliases = ws.alias_map();
    // (impl type, method) → return type, for accessor chains like
    // `self.ring.slot(i).store(…)`.
    let mut ret_index: BTreeMap<(&str, &str), &str> = BTreeMap::new();
    for file in &ws.files {
        if file.test_only {
            continue;
        }
        for f in &file.parsed.fns {
            if f.is_test {
                continue;
            }
            if let (Some(t), Some(ret)) = (&f.impl_type, &f.ret_type) {
                ret_index.entry((t, &f.name)).or_insert(ret);
            }
        }
    }
    let parent = public_reach(ws);
    let mut findings = Vec::new();
    let mut used = vec![false; ws.atomics.decls.len()];
    let mut checked_ops = 0usize;

    for i in 0..ws.graph.nodes.len() {
        let Some(node) = ws.graph.nodes.get(i) else {
            continue;
        };
        if node.is_test || ws.atomics.exempt.contains(&node.crate_name) {
            continue;
        }
        let item = ws.item(i);
        let Some(body) = &item.body else {
            continue;
        };
        let env = TypeEnv {
            ws,
            impl_type: node.impl_type.as_deref(),
            types: &types,
            aliases: &aliases,
            ret_index: &ret_index,
        };
        let vars = env.collect_vars(item, body);
        let path = ws.path_of(i).to_string();
        let witness = witness_path(ws, &parent, i);
        body.visit(&mut |e| {
            let Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } = e
            else {
                return;
            };
            if !ATOMIC_METHODS.contains(&method.as_str()) {
                return;
            }
            let mut links = Vec::new();
            let recv_ty = env.chain(recv, &vars, &mut links);
            let (resolved, ambiguous) = resolve_orderings(args, &consts);
            let atomic_typed = recv_ty.as_deref().is_some_and(|t| t.starts_with("Atomic"));
            if !atomic_typed && resolved.is_empty() && ambiguous.is_empty() {
                return; // not an atomic operation (e.g. Vec::swap).
            }
            checked_ops += 1;
            let Some((decl_at, key, proto)) = match_decl(ws, &links) else {
                let desc = describe_chain(&links);
                findings.push(Finding {
                    kind: FindingKind::UndeclaredAtomic,
                    atomic: desc.clone(),
                    path: path.clone(),
                    line: *line,
                    message: format!(
                        "atomic `{desc}` ({}) has no [atomics] declaration in lint.toml",
                        recv_ty.as_deref().unwrap_or("unresolved type"),
                    ),
                    witness: witness.clone(),
                });
                return;
            };
            if let Some(flag) = used.get_mut(decl_at) {
                *flag = true;
            }
            if resolved.is_empty() {
                let what = ambiguous
                    .first()
                    .map_or_else(|| "<none>".to_string(), String::clone);
                findings.push(Finding {
                    kind: FindingKind::UnresolvedOrdering,
                    atomic: key.to_string(),
                    path: path.clone(),
                    line: *line,
                    message: format!(
                        "`{method}` of `{key}` has no resolvable Ordering argument \
                         (`{what}`) — the declared protocol cannot be verified"
                    ),
                    witness: witness.clone(),
                });
                return;
            }
            for ord in &resolved {
                let Some(kind) = classify(proto, op_class(method), ord) else {
                    continue;
                };
                findings.push(Finding {
                    kind,
                    atomic: key.to_string(),
                    path: path.clone(),
                    line: *line,
                    message: site_message(kind, method, key, ord, proto),
                    witness: witness.clone(),
                });
            }
        });
    }

    check_pub_signatures(ws, &mut used, &mut findings);

    for (at, (key, _)) in ws.atomics.decls.iter().enumerate() {
        if used.get(at).copied().unwrap_or(true) {
            continue;
        }
        findings.push(Finding {
            kind: FindingKind::DeadDeclaration,
            atomic: key.clone(),
            path: "lint.toml".to_string(),
            line: 1,
            message: format!(
                "[atomics] declaration `{key}` matches no atomic call site — \
                 renamed code or a typo has silently disabled its checking"
            ),
            witness: Vec::new(),
        });
    }

    findings.sort_by(|a, b| (&a.path, a.line, &a.atomic).cmp(&(&b.path, b.line, &b.atomic)));
    Report {
        findings,
        decl_count: ws.atomics.decls.len(),
        checked_ops,
        active_cfgs: active_cfgs.to_vec(),
    }
}

/// `pub` functions of `[shard]`-rooted types must not expose an atomic
/// that has no declared protocol: the declaration table is the complete
/// inventory of the fleet's lock-free surface.
fn check_pub_signatures(ws: &Workspace, used: &mut [bool], findings: &mut Vec<Finding>) {
    for (fi, file) in ws.files.iter().enumerate() {
        if file.test_only || ws.atomics.exempt.contains(&file.crate_name) {
            continue;
        }
        for f in &file.parsed.fns {
            if f.is_test || !f.is_pub {
                continue;
            }
            let Some(t) = f.impl_type.as_deref() else {
                continue;
            };
            if !ws.shard.roots.iter().any(|r| r == t) {
                continue;
            }
            let exposed = f
                .params
                .iter()
                .map(|p| p.ty.as_str())
                .chain(f.ret_type.as_deref())
                .flat_map(str::split_whitespace)
                .find(|w| w.starts_with("Atomic"));
            let Some(ty) = exposed else {
                continue;
            };
            match ws
                .atomics
                .decls
                .iter()
                .position(|(k, _)| k == &format!("{t}.{}", f.name) || k == &f.name)
            {
                Some(at) => {
                    if let Some(flag) = used.get_mut(at) {
                        *flag = true;
                    }
                }
                None => findings.push(Finding {
                    kind: FindingKind::UndeclaredPubAtomic,
                    atomic: format!("{t}.{}", f.name),
                    path: ws
                        .files
                        .get(fi)
                        .map_or_else(String::new, |x| x.rel_path.clone()),
                    line: f.line,
                    message: format!(
                        "pub fn `{t}::{}` exposes `{ty}` but `{t}.{}` has no \
                         [atomics] declaration — shard types may not leak \
                         protocol-free atomics",
                        f.name, f.name
                    ),
                    witness: Vec::new(),
                }),
            }
        }
    }
}

/// Multi-source BFS from every non-test `pub` function, for witness
/// paths ("how does outside code reach this site"). A site in a
/// function that is itself public gets a one-entry witness.
fn public_reach(ws: &Workspace) -> Vec<usize> {
    let n = ws.graph.nodes.len();
    let mut parent = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    for i in 0..n {
        let is_root = ws
            .graph
            .nodes
            .get(i)
            .is_some_and(|node| !node.is_test && ws.item(i).is_pub);
        if is_root {
            if let Some(slot) = parent.get_mut(i) {
                *slot = i;
            }
            queue.push_back(i);
        }
    }
    while let Some(u) = queue.pop_front() {
        let Some(edges) = ws.graph.edges.get(u) else {
            continue;
        };
        for &v in edges {
            if parent.get(v).copied() != Some(usize::MAX)
                || ws.graph.nodes.get(v).is_none_or(|node| node.is_test)
            {
                continue;
            }
            if let Some(slot) = parent.get_mut(v) {
                *slot = u;
                queue.push_back(v);
            }
        }
    }
    parent
}

/// Labels from the nearest public function down to `node`, inclusive.
fn witness_path(ws: &Workspace, parent: &[usize], node: usize) -> Vec<String> {
    let mut chain = vec![node];
    let mut cur = node;
    let mut hops = 0;
    while parent.get(cur).copied().unwrap_or(cur) != cur && hops < 64 {
        cur = parent.get(cur).copied().unwrap_or(cur);
        if cur == usize::MAX {
            // Unreached from any public fn: the site's own fn is the witness.
            return vec![ws.label(node)];
        }
        chain.push(cur);
        hops += 1;
    }
    chain.reverse();
    chain.into_iter().map(|i| ws.label(i)).collect()
}

/// Workspace `Ordering`-typed constants visible under `active`:
/// name → variant, with conflicting same-name constants dropped to
/// `None` (ambiguous) rather than guessed.
fn ordering_consts(ws: &Workspace, active: &[String]) -> HashMap<String, Option<String>> {
    let mut map: HashMap<String, Option<String>> = HashMap::new();
    for file in &ws.files {
        if file.test_only {
            continue;
        }
        for c in &file.parsed.consts {
            if c.is_test || !is_ordering_const(c) {
                continue;
            }
            if !c.cfgs.iter().all(|f| f.satisfied(active)) {
                continue;
            }
            let variant = c
                .value
                .split_whitespace()
                .rev()
                .find(|w| ORDERINGS.contains(w))
                .map(str::to_string);
            match map.entry(c.name.clone()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(variant);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if *e.get() != variant {
                        e.insert(None); // two active definitions disagree
                    }
                }
            }
        }
    }
    map
}

fn is_ordering_const(c: &ConstItem) -> bool {
    c.ty.split_whitespace().any(|w| w == "Ordering")
}

/// Resolves the `Ordering` arguments of one call. Returns the resolved
/// variant names and the names of Ordering-typed constants that could
/// not be resolved (inactive or ambiguous).
fn resolve_orderings(
    args: &[Expr],
    consts: &HashMap<String, Option<String>>,
) -> (Vec<String>, Vec<String>) {
    let mut resolved = Vec::new();
    let mut ambiguous = Vec::new();
    for arg in args {
        let Expr::Path { segs, .. } = arg else {
            continue;
        };
        let Some(last) = segs.last() else {
            continue;
        };
        if ORDERINGS.contains(&last.as_str()) {
            resolved.push(last.clone());
        } else if let Some(variant) = consts.get(last) {
            match variant {
                Some(v) => resolved.push(v.clone()),
                None => ambiguous.push(last.clone()),
            }
        }
    }
    (resolved, ambiguous)
}

/// One step of a resolved receiver chain: `owner.member`.
#[derive(Debug)]
struct Link {
    /// Resolved type of the expression the member was taken from.
    owner: Option<String>,
    /// Field, method or binding name.
    member: String,
}

/// Matches chain links against the declarations, deepest link first.
/// Links that match nothing fall through — so the shared `value` cell
/// of a padding wrapper attributes to the declared `head`/`tail` field
/// one link up.
fn match_decl<'a>(ws: &'a Workspace, links: &[Link]) -> Option<(usize, &'a str, Protocol)> {
    for link in links.iter().rev() {
        let qualified = link
            .owner
            .as_deref()
            .map(|o| format!("{o}.{}", link.member));
        let hit = ws
            .atomics
            .decls
            .iter()
            .position(|(k, _)| qualified.as_deref() == Some(k.as_str()) || *k == link.member);
        if let Some(at) = hit {
            let (key, proto) = ws.atomics.decls.get(at)?;
            return Some((at, key.as_str(), *proto));
        }
    }
    None
}

/// `ring.head.value`-style description for diagnostics.
fn describe_chain(links: &[Link]) -> String {
    if links.is_empty() {
        return "<opaque receiver>".to_string();
    }
    let names: Vec<&str> = links.iter().map(|l| l.member.as_str()).collect();
    match links.first().and_then(|l| l.owner.as_deref()) {
        Some(owner) => format!("{owner}.{}", names.join(".")),
        None => names.join("."),
    }
}

/// Whether the method reads, writes, or does both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Load,
    Store,
    Rmw,
}

fn op_class(method: &str) -> OpClass {
    match method {
        "load" => OpClass::Load,
        "store" => OpClass::Store,
        _ => OpClass::Rmw,
    }
}

/// Checks one resolved ordering against the declared protocol.
fn classify(proto: Protocol, op: OpClass, ord: &str) -> Option<FindingKind> {
    if ord == "SeqCst" {
        return Some(FindingKind::SeqCstOverkill);
    }
    match (proto, op) {
        (Protocol::Relaxed, _) => (ord != "Relaxed").then_some(FindingKind::MixedOrdering),
        (Protocol::ReleaseAcquire, OpClass::Load) => match ord {
            "Acquire" => None,
            "Relaxed" => Some(FindingKind::RelaxedObserve),
            _ => Some(FindingKind::MixedOrdering),
        },
        (Protocol::ReleaseAcquire, OpClass::Store) => match ord {
            "Release" => None,
            "Relaxed" => Some(FindingKind::RelaxedPublish),
            _ => Some(FindingKind::MixedOrdering),
        },
        (Protocol::ReleaseAcquire, OpClass::Rmw) => match ord {
            "Acquire" | "Release" | "AcqRel" => None,
            _ => Some(FindingKind::RelaxedPublish),
        },
    }
}

fn site_message(kind: FindingKind, method: &str, key: &str, ord: &str, proto: Protocol) -> String {
    match kind {
        FindingKind::RelaxedPublish => format!(
            "`{method}` of `{key}` uses Relaxed but its declared protocol is \
             {} — the publication carries no release edge, so the consumer \
             can observe the counter before the data it guards",
            proto.describe()
        ),
        FindingKind::RelaxedObserve => format!(
            "`load` of `{key}` uses Relaxed but its declared protocol is \
             {} — the observe side drops its acquire edge, so slot reads \
             can be hoisted before the counter check",
            proto.describe()
        ),
        FindingKind::SeqCstOverkill => format!(
            "`{method}` of `{key}` uses SeqCst where the declared {} \
             suffices — a full fence on a hot path is a cost smell",
            proto.describe()
        ),
        _ => format!(
            "`{method}` of `{key}` uses {ord}, outside its declared protocol {}",
            proto.describe()
        ),
    }
}

/// The type context of one scanned function.
struct TypeEnv<'a> {
    ws: &'a Workspace,
    impl_type: Option<&'a str>,
    types: &'a BTreeMap<&'a str, &'a TypeItem>,
    aliases: &'a HashMap<&'a str, &'a str>,
    ret_index: &'a BTreeMap<(&'a str, &'a str), &'a str>,
}

impl TypeEnv<'_> {
    /// Reduces flat type text to the single most interesting type name:
    /// a workspace type if one appears (`Arc < SpscRing >` → `SpscRing`),
    /// else the first `Atomic*` token (`Vec < AtomicU64 >` → `AtomicU64`),
    /// else the first capitalized token.
    fn reduce(&self, ty: &str) -> Option<String> {
        let expanded = self.ws.expand_aliases(ty, self.aliases);
        let mut fallback = None;
        for w in expanded.split_whitespace() {
            if w == "Self" {
                if let Some(t) = self.impl_type {
                    return Some(t.to_string());
                }
                continue;
            }
            if self.types.contains_key(w) {
                return Some(w.to_string());
            }
            if w.starts_with("Atomic") {
                return Some(w.to_string());
            }
            if fallback.is_none()
                && w.chars().next().is_some_and(char::is_uppercase)
                && w.chars().all(|c| c.is_alphanumeric() || c == '_')
            {
                fallback = Some(w.to_string());
            }
        }
        fallback
    }

    /// Local bindings (params and `let`s, including nested blocks and
    /// closures) mapped to their reduced type name.
    fn collect_vars(&self, item: &crate::parser::FnItem, body: &Block) -> HashMap<String, String> {
        let mut vars = HashMap::new();
        for p in &item.params {
            if let (Some(name), Some(ty)) = (&p.name, self.reduce(&p.ty)) {
                vars.insert(name.clone(), ty);
            }
        }
        self.block_vars(body, &mut vars);
        vars
    }

    fn block_vars(&self, block: &Block, vars: &mut HashMap<String, String>) {
        for stmt in &block.stmts {
            self.let_var(stmt, vars);
            let exprs: Vec<&Expr> = match stmt {
                Stmt::Let { init: Some(e), .. }
                | Stmt::Expr { expr: e, .. }
                | Stmt::Return { value: Some(e), .. } => vec![e],
                Stmt::Let { .. } | Stmt::Return { .. } => Vec::new(),
            };
            for e in exprs {
                // Every nested block (if/loop/match arms/closures) shows
                // up as a `BlockExpr` node under `visit`.
                e.visit(&mut |sub| {
                    if let Expr::BlockExpr { block, .. } = sub {
                        for s in &block.stmts {
                            self.let_var(s, vars);
                        }
                    }
                });
            }
        }
    }

    fn let_var(&self, stmt: &Stmt, vars: &mut HashMap<String, String>) {
        let Stmt::Let {
            name: Some(name),
            ty,
            init,
            ..
        } = stmt
        else {
            return;
        };
        let inferred = ty
            .as_deref()
            .and_then(|t| self.reduce(t))
            .or_else(|| init.as_ref().and_then(|e| self.infer(e, vars)));
        if let Some(t) = inferred {
            vars.insert(name.clone(), t);
        }
    }

    /// Infers the reduced type constructed by an initializer, unwrapping
    /// the smart-pointer constructors (`Arc::new(inner)` has `inner`'s
    /// type for receiver-resolution purposes).
    fn infer(&self, e: &Expr, vars: &HashMap<String, String>) -> Option<String> {
        match e {
            Expr::Path { segs, .. } if segs.len() == 1 => {
                segs.first().and_then(|s| vars.get(s)).cloned()
            }
            Expr::Call { path, args, .. } => {
                let last = path.last()?;
                if path.len() >= 2 {
                    let qual = path.get(path.len() - 2)?;
                    if matches!(qual.as_str(), "Arc" | "Box" | "Rc") {
                        if last == "new" {
                            return args.first().and_then(|a| self.infer(a, vars));
                        }
                        if last == "clone" {
                            return args.first().and_then(|a| self.infer(a, vars));
                        }
                    }
                    if qual == "Self" {
                        return self.impl_type.map(str::to_string);
                    }
                    qual.chars().next().filter(|c| c.is_ascii_uppercase())?;
                    return Some(qual.clone());
                }
                last.chars().next().filter(|c| c.is_ascii_uppercase())?;
                Some(last.clone())
            }
            Expr::MethodCall { recv, method, .. }
                if PASSTHROUGH_METHODS.contains(&method.as_str()) =>
            {
                self.infer(recv, vars)
            }
            Expr::Unary { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => {
                self.infer(expr, vars)
            }
            Expr::StructLit { path, .. } => path.last().cloned(),
            Expr::Group { items, .. } if items.len() == 1 => {
                items.first().and_then(|x| self.infer(x, vars))
            }
            _ => None,
        }
    }

    /// Resolves a receiver expression into its member chain and reduced
    /// type. `self.ring.head.value` yields links
    /// `[RingProducer.ring, SpscRing.head, PadAtomic.value]` and type
    /// `AtomicU64`.
    fn chain(
        &self,
        e: &Expr,
        vars: &HashMap<String, String>,
        links: &mut Vec<Link>,
    ) -> Option<String> {
        match e {
            Expr::Path { segs, .. }
                if segs.len() == 1 && segs.first().map(String::as_str) == Some("self") =>
            {
                self.impl_type.map(str::to_string)
            }
            Expr::Path { segs, .. } if segs.len() == 1 => {
                let name = segs.first()?;
                let ty = vars.get(name).cloned();
                links.push(Link {
                    owner: None,
                    member: name.clone(),
                });
                ty
            }
            Expr::Path { segs, .. } => {
                // Static or associated item: last segment is the member.
                let member = segs.last()?.clone();
                links.push(Link {
                    owner: segs.get(segs.len().wrapping_sub(2)).cloned(),
                    member,
                });
                None
            }
            Expr::Field { base, name, .. } => {
                let owner = self.chain(base, vars, links);
                let field_ty = owner
                    .as_deref()
                    .and_then(|o| self.types.get(o))
                    .and_then(|t| t.fields.iter().find(|f| &f.name == name))
                    .map(|f| f.ty.clone());
                links.push(Link {
                    owner,
                    member: name.clone(),
                });
                field_ty.and_then(|t| self.reduce(&t))
            }
            Expr::MethodCall { recv, method, .. } => {
                if PASSTHROUGH_METHODS.contains(&method.as_str()) {
                    return self.chain(recv, vars, links);
                }
                let owner = self.chain(recv, vars, links);
                let ret = owner
                    .as_deref()
                    .and_then(|o| self.ret_index.get(&(o, method.as_str())))
                    .map(|r| (*r).to_string());
                links.push(Link {
                    owner,
                    member: method.clone(),
                });
                ret.and_then(|t| self.reduce(&t))
            }
            Expr::Index { base, .. }
            | Expr::Unary { expr: base, .. }
            | Expr::Try { expr: base, .. }
            | Expr::Cast { expr: base, .. } => self.chain(base, vars, links),
            Expr::Group { items, .. } if items.len() == 1 => {
                items.first().and_then(|x| self.chain(x, vars, links))
            }
            _ => None,
        }
    }
}

/// Renders the report as the `tagbreathe-atomics-v1` JSON document.
#[must_use]
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"tagbreathe-atomics-v1\",\n");
    let _ = writeln!(out, "  \"decl_count\": {},", report.decl_count);
    let _ = writeln!(out, "  \"checked_ops\": {},", report.checked_ops);
    let _ = writeln!(
        out,
        "  \"active_cfgs\": {},",
        string_array(&report.active_cfgs)
    );
    let _ = writeln!(out, "  \"finding_count\": {},", report.findings.len());
    out.push_str("  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i + 1 < report.findings.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"kind\": {}, \"atomic\": {}, \"path\": {}, \"line\": {}, \
             \"message\": {}, \"witness\": {}}}{sep}",
            json_string(f.kind.tag()),
            json_string(&f.atomic),
            json_string(&f.path),
            f.line,
            json_string(&f.message),
            string_array(&f.witness),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders a JSON array of strings.
fn string_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| json_string(s)).collect();
    format!("[{}]", quoted.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::source::SourceFile;

    fn workspace(files: &[(&str, &str)], config_text: &str) -> Workspace {
        let sources: Vec<SourceFile> = files.iter().map(|(p, t)| SourceFile::parse(p, t)).collect();
        let config = Config::parse(config_text).unwrap_or_default();
        Workspace::build(&sources, &config)
    }

    const RING: &str = "\
        pub mod protocol {\n\
          use std::sync::atomic::Ordering;\n\
          #[cfg(not(sync_mutant))]\n\
          pub const PUBLISH: Ordering = Ordering::Release;\n\
          #[cfg(sync_mutant)]\n\
          pub const PUBLISH: Ordering = Ordering::Relaxed;\n\
          #[cfg(not(sync_mutant))]\n\
          pub const OBSERVE: Ordering = Ordering::Acquire;\n\
          #[cfg(sync_mutant)]\n\
          pub const OBSERVE: Ordering = Ordering::Relaxed;\n\
        }\n\
        struct Pad { value: AtomicU64 }\n\
        pub struct Ring { head: Pad, tail: Pad }\n\
        pub struct Producer { ring: Arc<Ring>, next: u64 }\n\
        impl Producer {\n\
          pub fn push(&mut self) {\n\
            let t = self.ring.tail.value.load(protocol::OBSERVE);\n\
            self.ring.head.value.store(t, protocol::PUBLISH);\n\
          }\n\
        }\n";

    const DECLS: &str = "[atomics]\n\
        Ring.head = \"publish(Release) / observe(Acquire)\"\n\
        Ring.tail = \"publish(Release) / observe(Acquire)\"\n";

    #[test]
    fn clean_protocol_has_no_findings() {
        let ws = workspace(&[("crates/tagbreathe/src/ring.rs", RING)], DECLS);
        let report = analyze(&ws, &[]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.checked_ops, 2);
    }

    #[test]
    fn sync_mutant_cfg_flips_consts_and_is_caught() {
        let ws = workspace(&[("crates/tagbreathe/src/ring.rs", RING)], DECLS);
        let report = analyze(&ws, &["sync_mutant".to_string()]);
        let kinds: Vec<FindingKind> = report.findings.iter().map(|f| f.kind).collect();
        assert!(
            kinds.contains(&FindingKind::RelaxedPublish),
            "{:?}",
            report.findings
        );
        assert!(
            kinds.contains(&FindingKind::RelaxedObserve),
            "{:?}",
            report.findings
        );
        // Padding wrapper resolves through to the declared field.
        assert!(report.findings.iter().any(|f| f.atomic == "Ring.head"));
        assert!(report.findings.iter().any(|f| f.atomic == "Ring.tail"));
        // Witness names the public entry point.
        assert!(report
            .findings
            .iter()
            .all(|f| f.witness == vec!["Producer::push".to_string()]));
    }

    #[test]
    fn undeclared_atomic_is_flagged() {
        let src = "pub fn f(flag: &AtomicBool) { flag.store(true, Ordering::Release); }\n";
        let ws = workspace(
            &[("crates/tagbreathe/src/a.rs", src)],
            "[atomics]\nother = \"relaxed\"\n",
        );
        let report = analyze(&ws, &[]);
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::UndeclaredAtomic));
        // `other` matched nothing either.
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::DeadDeclaration));
    }

    #[test]
    fn seqcst_on_relaxed_decl_is_a_cost_smell_and_mixed_is_error() {
        let src = "pub struct S { hits: AtomicU64 }\n\
             impl S {\n\
               pub fn bump(&self) {\n\
                 self.hits.fetch_add(1, Ordering::SeqCst);\n\
                 self.hits.load(Ordering::Acquire);\n\
                 self.hits.load(Ordering::Relaxed);\n\
               }\n\
             }\n";
        let ws = workspace(
            &[("crates/tagbreathe/src/a.rs", src)],
            "[atomics]\nS.hits = \"relaxed\"\n",
        );
        let report = analyze(&ws, &[]);
        let kinds: Vec<FindingKind> = report.findings.iter().map(|f| f.kind).collect();
        assert_eq!(
            kinds,
            vec![FindingKind::SeqCstOverkill, FindingKind::MixedOrdering],
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn locals_resolve_through_arc_new_and_clone() {
        let src = "pub fn spawn() {\n\
               let stop = Arc::new(AtomicBool::new(false));\n\
               let accept_stop = stop.clone();\n\
               if accept_stop.load(Ordering::Relaxed) { return; }\n\
               stop.store(true, Ordering::Release);\n\
             }\n";
        let ws = workspace(
            &[("crates/server/src/a.rs", src)],
            "[atomics]\n\
             stop = \"publish(Release) / observe(Acquire)\"\n\
             accept_stop = \"publish(Release) / observe(Acquire)\"\n",
        );
        let report = analyze(&ws, &[]);
        let kinds: Vec<FindingKind> = report.findings.iter().map(|f| f.kind).collect();
        assert_eq!(
            kinds,
            vec![FindingKind::RelaxedObserve],
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn non_atomic_swap_is_not_an_operation() {
        let src = "pub fn f(v: &mut Vec<u64>) { v.swap(0, 1); }\n";
        let ws = workspace(
            &[("crates/tagbreathe/src/a.rs", src)],
            "[atomics]\nstop = \"relaxed\"\n",
        );
        let report = analyze(&ws, &[]);
        assert_eq!(report.checked_ops, 0);
        // Only the dead `stop` declaration fires.
        assert!(report
            .findings
            .iter()
            .all(|f| f.kind == FindingKind::DeadDeclaration));
    }

    #[test]
    fn exempt_crate_is_skipped() {
        let src = "pub fn f(flag: &AtomicBool) { flag.store(true, Ordering::Relaxed); }\n";
        let ws = workspace(
            &[("crates/syncmodel/src/a.rs", src)],
            "[atomics]\nflag = \"publish(Release) / observe(Acquire)\"\n\
             exempt-crates = \"syncmodel\"\n",
        );
        let report = analyze(&ws, &[]);
        assert!(
            report
                .findings
                .iter()
                .all(|f| f.kind == FindingKind::DeadDeclaration),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn shard_root_pub_signature_must_declare_atomics() {
        let src = "pub struct Ring { word: AtomicU64 }\n\
             impl Ring {\n\
               pub fn word(&self) -> &AtomicU64 { &self.word }\n\
             }\n";
        let ws = workspace(
            &[("crates/tagbreathe/src/a.rs", src)],
            "[shard]\nroots = \"Ring\"\n[atomics]\nRing.word = \"relaxed\"\n",
        );
        // Declared accessor: fine (and the declaration counts as used).
        let report = analyze(&ws, &[]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);

        let ws = workspace(
            &[("crates/tagbreathe/src/a.rs", src)],
            "[shard]\nroots = \"Ring\"\n[atomics]\nother = \"relaxed\"\n",
        );
        let report = analyze(&ws, &[]);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.kind == FindingKind::UndeclaredPubAtomic),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn json_report_is_valid() {
        let ws = workspace(&[("crates/tagbreathe/src/ring.rs", RING)], DECLS);
        let report = analyze(&ws, &["sync_mutant".to_string()]);
        let text = render_json(&report);
        assert!(
            tagbreathe_obs::json::validate(&text).is_ok(),
            "invalid JSON:\n{text}"
        );
        assert!(text.contains("tagbreathe-atomics-v1"));
        assert!(text.contains("relaxed-publish"));
    }

    #[test]
    fn empty_declarations_disable_the_pass() {
        let src = "pub fn f(flag: &AtomicBool) { flag.store(true, Ordering::SeqCst); }\n";
        let ws = workspace(&[("crates/tagbreathe/src/a.rs", src)], "");
        let report = analyze(&ws, &[]);
        assert!(report.findings.is_empty());
        assert_eq!(report.decl_count, 0);
    }
}

//! The ratchet baseline: frozen per-(rule, file) violation counts.
//!
//! Existing debt is recorded in `lint-baseline.txt` at the workspace
//! root. A check run fails only when a (rule, file) pair exceeds its
//! recorded count — so new violations fail the build while old ones are
//! tolerated until burned down. When counts drop, `--update-baseline`
//! re-freezes at the lower level; the ratchet only tightens.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-(rule, path) allowed counts.
pub type Counts = BTreeMap<(String, String), usize>;

/// One (rule, file) pair that got worse than the baseline allows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    pub rule: String,
    pub path: String,
    pub allowed: usize,
    pub actual: usize,
}

/// Parses baseline text. Lines: `rule-id<TAB>count<TAB>path`; `#` starts
/// a comment. Malformed lines are errors — a corrupted baseline must not
/// silently allow regressions.
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (rule, count, path) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(r), Some(c), Some(p), None) => (r, c, p),
            _ => {
                return Err(format!(
                    "lint-baseline.txt:{}: expected `rule<TAB>count<TAB>path`",
                    idx + 1
                ))
            }
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("lint-baseline.txt:{}: bad count {count:?}", idx + 1))?;
        counts.insert((rule.to_string(), path.to_string()), count);
    }
    Ok(counts)
}

/// Renders counts back to baseline text (sorted, stable across runs).
pub fn render(counts: &Counts) -> String {
    let mut out = String::from(
        "# tagbreathe-lint ratchet baseline — frozen per-(rule, file) violation counts.\n\
         # A build fails only when a count here is exceeded. To tighten after a\n\
         # burn-down: cargo run -p tagbreathe-lint -- check --update-baseline\n",
    );
    for ((rule, path), count) in counts {
        let _ = writeln!(out, "{rule}\t{count}\t{path}");
    }
    out
}

/// Compares a scan against the baseline. Returns the pairs that got
/// worse. Pairs absent from the baseline allow zero violations.
pub fn regressions(current: &Counts, baseline: &Counts) -> Vec<Regression> {
    let mut out = Vec::new();
    for ((rule, path), &actual) in current {
        let allowed = baseline
            .get(&(rule.clone(), path.clone()))
            .copied()
            .unwrap_or(0);
        if actual > allowed {
            out.push(Regression {
                rule: rule.clone(),
                path: path.clone(),
                allowed,
                actual,
            });
        }
    }
    out
}

/// Baseline entries now over-provisioned (count dropped or file gone) —
/// candidates for `--update-baseline`.
pub fn slack(current: &Counts, baseline: &Counts) -> Vec<(String, String, usize, usize)> {
    let mut out = Vec::new();
    for ((rule, path), &allowed) in baseline {
        let actual = current
            .get(&(rule.clone(), path.clone()))
            .copied()
            .unwrap_or(0);
        if actual < allowed {
            out.push((rule.clone(), path.clone(), allowed, actual));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(&str, &str, usize)]) -> Counts {
        entries
            .iter()
            .map(|&(r, p, c)| ((r.to_string(), p.to_string()), c))
            .collect()
    }

    #[test]
    fn round_trip() -> Result<(), String> {
        let c = counts(&[("lib-panic", "crates/dsp/src/fft.rs", 3)]);
        let parsed = parse(&render(&c))?;
        assert_eq!(parsed, c);
        Ok(())
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(parse("lib-panic 3 path.rs\n").is_err(), "spaces not tabs");
        assert!(parse("lib-panic\tthree\tpath.rs\n").is_err());
    }

    #[test]
    fn regression_detection() {
        let base = counts(&[("a", "x.rs", 2)]);
        let same = counts(&[("a", "x.rs", 2)]);
        let worse = counts(&[("a", "x.rs", 3)]);
        let new_file = counts(&[("a", "x.rs", 2), ("a", "y.rs", 1)]);
        assert!(regressions(&same, &base).is_empty());
        assert_eq!(regressions(&worse, &base).len(), 1);
        let r = &regressions(&new_file, &base)[0];
        assert_eq!((r.path.as_str(), r.allowed, r.actual), ("y.rs", 0, 1));
    }

    #[test]
    fn improvement_is_not_a_regression_but_is_slack() {
        let base = counts(&[("a", "x.rs", 5)]);
        let better = counts(&[("a", "x.rs", 1)]);
        assert!(regressions(&better, &base).is_empty());
        assert_eq!(
            slack(&better, &base),
            vec![("a".into(), "x.rs".into(), 5, 1)]
        );
    }
}

//! Workspace discovery: every `.rs` file under the root, minus pruned
//! directories (`target`, `.git`, test fixtures).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Recursively collects workspace-relative paths of `.rs` files under
/// `root`, skipping directories whose *name* appears in `skip_dirs`.
/// Results are sorted for deterministic scans.
pub fn rust_files(root: &Path, skip_dirs: &[String]) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    visit(root, root, skip_dirs, &mut out)?;
    out.sort();
    Ok(out)
}

fn visit(root: &Path, dir: &Path, skip_dirs: &[String], out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if skip_dirs.iter().any(|s| s.as_str() == name) || name.starts_with('.') {
                continue;
            }
            visit(root, &path, skip_dirs, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_own_sources_and_skips_target() -> std::io::Result<()> {
        // The lint crate's own directory is a convenient real tree.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = rust_files(root, &["target".to_string()])?;
        let names: Vec<String> = files
            .iter()
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .collect();
        assert!(names.iter().any(|n| n == "src/walk.rs"), "{names:?}");
        assert!(!names.iter().any(|n| n.starts_with("target/")));
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "walk output must be sorted");
        Ok(())
    }
}

//! Violation and severity types plus plain-text rendering.

use std::collections::BTreeMap;
use std::fmt;

/// How a rule's findings are enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// New findings (beyond the ratchet baseline) fail the build.
    Error,
    /// Findings are reported and tracked in the baseline but never fail.
    Warn,
    /// Rule disabled.
    Off,
}

impl Severity {
    /// Parses a config value.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "error" => Some(Severity::Error),
            "warn" => Some(Severity::Warn),
            "off" => Some(Severity::Off),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warn => write!(f, "warn"),
            Severity::Off => write!(f, "off"),
        }
    }
}

/// One rule finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier, e.g. `lib-panic`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// Human-readable description of the specific finding.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Aggregates violations into per-(rule, file) counts — the currency of
/// the ratchet baseline.
pub fn count_by_rule_and_file(violations: &[Violation]) -> BTreeMap<(String, String), usize> {
    let mut counts = BTreeMap::new();
    for v in violations {
        *counts
            .entry((v.rule.to_string(), v.path.clone()))
            .or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_round_trip() {
        for s in [Severity::Error, Severity::Warn, Severity::Off] {
            assert_eq!(Severity::parse(&s.to_string()), Some(s));
        }
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn counting_groups_by_rule_and_file() {
        let v = |rule, path: &str| Violation {
            rule,
            path: path.into(),
            line: 1,
            message: String::new(),
        };
        let counts = count_by_rule_and_file(&[v("a", "x.rs"), v("a", "x.rs"), v("b", "x.rs")]);
        assert_eq!(counts[&("a".into(), "x.rs".into())], 2);
        assert_eq!(counts[&("b".into(), "x.rs".into())], 1);
    }
}

//! A tolerant Rust-subset parser built on the token stream.
//!
//! Produces an item model — functions with signatures, the impl type they
//! belong to, flattened `use` trees, and bodies as statement/expression
//! trees — good enough for name and call extraction by the semantic rules
//! (panic reachability, unit dataflow, lock discipline). It is *not* a
//! full Rust parser:
//!
//! * it is **total**: any input terminates without panicking; constructs
//!   it does not understand become [`Expr::Opaque`] nodes and the parser
//!   resynchronises at the next statement boundary;
//! * patterns are skimmed, not parsed — a `let` keeps only the last bound
//!   identifier, match arms keep guard and body expressions;
//! * types are kept as flat token text (see [`base_type_name`]);
//! * macros keep their name and a best-effort parse of comma-separated
//!   argument expressions.
//!
//! Every heuristic shortcut errs toward producing *fewer* facts, never
//! toward inventing calls that are not in the source.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// Everything the parser extracted from one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All functions, including nested and impl methods, in source order.
    pub fns: Vec<FnItem>,
    /// Flattened `use` paths (`use a::{b, c}` yields `a::b` and `a::c`).
    pub uses: Vec<Vec<String>>,
    /// All `struct`/`enum`/`union` definitions, in source order.
    pub types: Vec<TypeItem>,
    /// All `static` items, in source order.
    pub statics: Vec<StaticItem>,
    /// All `type` aliases (including associated types), in source order.
    pub aliases: Vec<AliasItem>,
    /// All `const NAME: T = …;` items (free and associated), in source
    /// order, with any `#[cfg(flag)]` / `#[cfg(not(flag))]` guards.
    pub consts: Vec<ConstItem>,
}

/// One `#[cfg(name)]` / `#[cfg(not(name))]` guard on an item. Only the
/// bare single-flag forms are recognised; richer predicates (`all`,
/// `any`, key-value pairs) are ignored, erring toward *fewer* facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgFlag {
    /// The flag identifier, e.g. `sync_mutant` or `test`.
    pub name: String,
    /// True for the `#[cfg(not(name))]` form.
    pub negated: bool,
}

impl CfgFlag {
    /// Whether this guard is satisfied given the set of active flags.
    #[must_use]
    pub fn satisfied(&self, active: &[String]) -> bool {
        let present = active.iter().any(|f| f == &self.name);
        present != self.negated
    }
}

/// One parsed `const NAME: T = …;` item.
#[derive(Debug)]
pub struct ConstItem {
    /// Item name.
    pub name: String,
    /// Declared type as space-joined token text.
    pub ty: String,
    /// Initialiser as space-joined token text (best effort).
    pub value: String,
    /// 1-indexed line of the `const` keyword.
    pub line: u32,
    /// Lies in test code (`#[cfg(test)]` module or test-only path).
    pub is_test: bool,
    /// Recognised `#[cfg(…)]` guards on the item, outermost first.
    pub cfgs: Vec<CfgFlag>,
}

/// One parsed `type Name = …;` alias.
#[derive(Debug)]
pub struct AliasItem {
    /// Alias name.
    pub name: String,
    /// Aliased type as space-joined token text.
    pub ty: String,
    /// 1-indexed line of the `type` keyword.
    pub line: u32,
    /// Lies in test code (`#[cfg(test)]` module or test-only path).
    pub is_test: bool,
}

/// One field (or enum-variant payload) of a type definition.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Field name; tuple fields use their index text, enum tuple-variant
    /// payloads use the variant name.
    pub name: String,
    /// Type as space-joined token text, e.g. `BTreeMap < u8 , TagState >`.
    pub ty: String,
    /// 1-indexed line of the field.
    pub line: u32,
}

/// One parsed `struct`/`enum`/`union` definition.
#[derive(Debug)]
pub struct TypeItem {
    /// Type name.
    pub name: String,
    /// `pub` without a restriction.
    pub is_pub: bool,
    /// 1-indexed line of the defining keyword.
    pub line: u32,
    /// Fields with their flat type text (enum variants contribute their
    /// payload types).
    pub fields: Vec<FieldItem>,
    /// Lies in test code (`#[cfg(test)]` module or test-only path).
    pub is_test: bool,
}

/// One parsed `static` item.
#[derive(Debug)]
pub struct StaticItem {
    /// Item name.
    pub name: String,
    /// Declared with `static mut`.
    pub is_mut: bool,
    /// 1-indexed line of the `static` keyword.
    pub line: u32,
    /// Lies in test code (`#[cfg(test)]` module or test-only path).
    pub is_test: bool,
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// The bound identifier, when the pattern is simple enough to name one.
    pub name: Option<String>,
    /// Type as space-joined token text, e.g. `& mut ReaderConfig`.
    pub ty: String,
}

/// One parsed `fn` item.
#[derive(Debug, Default)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Self type of the enclosing `impl` (or trait name inside a `trait`).
    pub impl_type: Option<String>,
    /// `pub` without a restriction (`pub(crate)` counts as private).
    pub is_pub: bool,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Parameters in order; a method's receiver appears as `self: Self`.
    pub params: Vec<Param>,
    /// Return type as space-joined token text, absent for `()`.
    pub ret_type: Option<String>,
    /// Body statements; `None` for bodiless trait/extern signatures.
    pub body: Option<Block>,
    /// Lies in test code (`#[cfg(test)]` module or test-only path).
    pub is_test: bool,
}

/// A `{ … }` block as a statement list.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat> [: ty] = init;` — `name` is the last identifier bound by
    /// the pattern (`let Some(x)` names `x`), when one exists.
    Let {
        name: Option<String>,
        ty: Option<String>,
        init: Option<Expr>,
        line: u32,
    },
    /// An expression statement; `has_semi` distinguishes a trailing
    /// (value-producing) expression from a discarded one.
    Expr { expr: Expr, has_semi: bool },
    /// `return [expr];`
    Return { value: Option<Expr>, line: u32 },
}

/// One expression tree node.
#[derive(Debug)]
pub enum Expr {
    /// A (possibly multi-segment) path used as a value, e.g. `x`, `f64::MAX`.
    Path { segs: Vec<String>, line: u32 },
    /// Any literal (number, string, char, bool).
    Lit { line: u32 },
    /// Free or associated call: `f(a)`, `Type::new(a)`.
    Call {
        path: Vec<String>,
        args: Vec<Expr>,
        line: u32,
    },
    /// Method call `recv.name(args)`.
    MethodCall {
        recv: Box<Expr>,
        method: String,
        args: Vec<Expr>,
        line: u32,
    },
    /// Field access `base.name` (tuple indices keep their digit text).
    Field {
        base: Box<Expr>,
        name: String,
        line: u32,
    },
    /// Indexing `base[index]`.
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
        line: u32,
    },
    /// Prefix operator (`-`, `!`, `*`, `&`, `&mut`).
    Unary { expr: Box<Expr>, line: u32 },
    /// Infix operator that is not an assignment.
    Binary {
        op: &'static str,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    /// `target = value` and compound assignments.
    Assign {
        op: &'static str,
        target: Box<Expr>,
        value: Box<Expr>,
        line: u32,
    },
    /// `expr as Type` (the target type is dropped).
    Cast { expr: Box<Expr>, line: u32 },
    /// `expr?`
    Try { expr: Box<Expr>, line: u32 },
    /// Macro invocation with best-effort argument expressions.
    Macro {
        name: String,
        args: Vec<Expr>,
        line: u32,
    },
    /// Closure; parameters are dropped, the body is kept.
    Closure { body: Box<Expr>, line: u32 },
    /// A block used as an expression (incl. `unsafe { … }`).
    BlockExpr { block: Block, line: u32 },
    /// `if`/`if let`; the pattern of `if let` is dropped.
    If {
        cond: Box<Expr>,
        then_block: Block,
        else_branch: Option<Box<Expr>>,
        line: u32,
    },
    /// `match`; arms keep guard and body expressions only.
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<Expr>,
        line: u32,
    },
    /// `while`/`while let`/`for`/`loop`; `cond` is the condition or the
    /// iterated expression.
    Loop {
        cond: Option<Box<Expr>>,
        body: Block,
        line: u32,
    },
    /// Struct literal `Path { field: expr, .. }`.
    StructLit {
        path: Vec<String>,
        fields: Vec<(String, Expr)>,
        line: u32,
    },
    /// Tuple, array or other bracketed grouping of expressions.
    Group { items: Vec<Expr>, line: u32 },
    /// Anything the parser could not understand; consumes ≥ 1 token.
    Opaque { line: u32 },
}

impl Expr {
    /// The 1-indexed source line this node starts on.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Try { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Closure { line, .. }
            | Expr::BlockExpr { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::Loop { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::Group { line, .. }
            | Expr::Opaque { line } => *line,
        }
    }

    /// Depth-first visit of this node and every sub-expression, including
    /// those inside nested blocks, closures and match arms.
    pub fn visit(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => {}
            Expr::Call { args, .. } | Expr::Macro { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.visit(f);
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Field { base, .. } => base.visit(f),
            Expr::Index { base, index, .. } => {
                base.visit(f);
                index.visit(f);
            }
            Expr::Unary { expr, .. }
            | Expr::Cast { expr, .. }
            | Expr::Try { expr, .. }
            | Expr::Closure { body: expr, .. } => expr.visit(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Assign { target, value, .. } => {
                target.visit(f);
                value.visit(f);
            }
            Expr::BlockExpr { block, .. } => block.visit(f),
            Expr::If {
                cond,
                then_block,
                else_branch,
                ..
            } => {
                cond.visit(f);
                then_block.visit(f);
                if let Some(e) = else_branch {
                    e.visit(f);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                scrutinee.visit(f);
                for a in arms {
                    a.visit(f);
                }
            }
            Expr::Loop { cond, body, .. } => {
                if let Some(c) = cond {
                    c.visit(f);
                }
                body.visit(f);
            }
            Expr::StructLit { fields, .. } => {
                for (_, e) in fields {
                    e.visit(f);
                }
            }
            Expr::Group { items, .. } => {
                for e in items {
                    e.visit(f);
                }
            }
        }
    }
}

impl Block {
    /// Depth-first visit of every expression in the block (and nested
    /// blocks), including `let` initialisers and `return` values.
    pub fn visit(&self, f: &mut dyn FnMut(&Expr)) {
        for stmt in &self.stmts {
            match stmt {
                Stmt::Let {
                    init: Some(init), ..
                } => init.visit(f),
                Stmt::Let { .. } => {}
                Stmt::Expr { expr, .. } => expr.visit(f),
                Stmt::Return { value: Some(v), .. } => v.visit(f),
                Stmt::Return { .. } => {}
            }
        }
    }
}

/// The base (outermost) type name of a space-joined type string:
/// references, `mut`, `dyn`, `impl` and lifetimes are stripped, and a
/// path's last segment before any generic arguments wins —
/// `& mut epc :: Epc < 'a >` yields `Epc`.
pub fn base_type_name(ty: &str) -> Option<String> {
    let mut last: Option<&str> = None;
    for word in ty.split_whitespace() {
        match word {
            "&" | "&&" | "mut" | "dyn" | "impl" | "::" => continue,
            w if w.starts_with('\'') => continue,
            "<" => break,
            w if w.chars().all(|c| c.is_alphanumeric() || c == '_') && !w.is_empty() => {
                last = Some(w);
            }
            _ => break,
        }
    }
    last.map(str::to_string)
}

/// Parses a lexed file into its item model. Never fails: unparseable
/// regions degrade to [`Expr::Opaque`] nodes.
pub fn parse_file(file: &SourceFile) -> ParsedFile {
    let code: Vec<&Token> = file
        .tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::Comment(_)))
        .collect();
    let mut parser = Parser {
        toks: code,
        pos: 0,
        out: ParsedFile::default(),
    };
    parser.items(None, usize::MAX);
    let mut out = parser.out;
    for f in &mut out.fns {
        f.is_test = file.test_only || file.is_test_line(f.line);
    }
    for t in &mut out.types {
        t.is_test = file.test_only || file.is_test_line(t.line);
    }
    for s in &mut out.statics {
        s.is_test = file.test_only || file.is_test_line(s.line);
    }
    for a in &mut out.aliases {
        a.is_test = file.test_only || file.is_test_line(a.line);
    }
    for c in &mut out.consts {
        c.is_test = file.test_only || file.is_test_line(c.line);
    }
    out
}

/// Keywords that start a non-`fn` item the statement parser skips over.
const ITEM_KEYWORDS: &[&str] = &[
    "use",
    "struct",
    "enum",
    "union",
    "type",
    "static",
    "macro_rules",
    "extern",
];

struct Parser<'a> {
    toks: Vec<&'a Token>,
    pos: usize,
    out: ParsedFile,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn peek_at(&self, ahead: usize) -> Option<&TokenKind> {
        self.toks.get(self.pos + ahead).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos).map_or(0, |t| t.line)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn at_punct(&self, p: &str) -> bool {
        self.peek().is_some_and(|k| k.is_punct(p))
    }

    fn at_ident(&self, name: &str) -> bool {
        self.peek().is_some_and(|k| k.is_ident(name))
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.at_ident(name) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident_text(&self) -> Option<String> {
        self.peek().and_then(|k| k.ident()).map(str::to_string)
    }

    /// Skips one `#[…]` / `#![…]` attribute if the cursor is on `#`.
    fn skip_attribute(&mut self) {
        if !self.at_punct("#") {
            return;
        }
        self.bump();
        self.eat_punct("!");
        if !self.at_punct("[") {
            return;
        }
        let mut depth = 0usize;
        while let Some(k) = self.peek() {
            if k.is_punct("[") {
                depth += 1;
            } else if k.is_punct("]") {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    fn skip_attributes(&mut self) {
        while self.at_punct("#") {
            let before = self.pos;
            self.skip_attribute();
            if self.pos == before {
                self.bump();
            }
        }
    }

    /// Skips one attribute like [`skip_attribute`](Self::skip_attribute),
    /// but first recognises the exact shapes `#[cfg(name)]` and
    /// `#[cfg(not(name))]` and returns the flag for those.
    fn collect_attribute(&mut self) -> Option<CfgFlag> {
        if !self.at_punct("#") {
            return None;
        }
        let mut at = 1usize;
        if self.peek_at(at).is_some_and(|k| k.is_punct("!")) {
            at += 1;
        }
        let mut flag = None;
        if self.peek_at(at).is_some_and(|k| k.is_punct("["))
            && self.peek_at(at + 1).is_some_and(|k| k.is_ident("cfg"))
            && self.peek_at(at + 2).is_some_and(|k| k.is_punct("("))
        {
            if self.peek_at(at + 3).is_some_and(|k| k.is_ident("not"))
                && self.peek_at(at + 4).is_some_and(|k| k.is_punct("("))
            {
                if let Some(name) = self.peek_at(at + 5).and_then(|k| k.ident()) {
                    if self.peek_at(at + 6).is_some_and(|k| k.is_punct(")"))
                        && self.peek_at(at + 7).is_some_and(|k| k.is_punct(")"))
                    {
                        flag = Some(CfgFlag {
                            name: name.to_string(),
                            negated: true,
                        });
                    }
                }
            } else if let Some(name) = self.peek_at(at + 3).and_then(|k| k.ident()) {
                if self.peek_at(at + 4).is_some_and(|k| k.is_punct(")")) {
                    flag = Some(CfgFlag {
                        name: name.to_string(),
                        negated: false,
                    });
                }
            }
        }
        self.skip_attribute();
        flag
    }

    /// Skips all attributes at the cursor, collecting recognised single
    /// `cfg` flags.
    fn collect_attributes(&mut self) -> Vec<CfgFlag> {
        let mut flags = Vec::new();
        while self.at_punct("#") {
            let before = self.pos;
            if let Some(flag) = self.collect_attribute() {
                flags.push(flag);
            }
            if self.pos == before {
                self.bump();
            }
        }
        flags
    }

    /// Skips a balanced `<…>` generic-argument list starting at `<`.
    fn skip_angles(&mut self) {
        if !self.at_punct("<") {
            return;
        }
        let mut depth = 0i32;
        while let Some(k) = self.peek() {
            if k.is_punct("<") {
                depth += 1;
            } else if k.is_punct("<<") {
                depth += 2;
            } else if k.is_punct(">") {
                depth -= 1;
            } else if k.is_punct(">>") {
                depth -= 2;
            } else if k.is_punct(";") || k.is_punct("{") {
                return; // runaway guard: generics never contain these here
            }
            self.bump();
            if depth <= 0 {
                return;
            }
        }
    }

    /// Skips to just past the `}` matching the `{` at the cursor.
    fn skip_braces(&mut self) {
        if !self.at_punct("{") {
            return;
        }
        let mut depth = 0usize;
        while let Some(k) = self.peek() {
            if k.is_punct("{") {
                depth += 1;
            } else if k.is_punct("}") {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Parses items until `}` (or EOF), at most `limit` tokens past start.
    fn items(&mut self, impl_type: Option<&str>, limit: usize) {
        let end = self.pos.saturating_add(limit);
        while self.pos < self.toks.len() && self.pos < end {
            if self.at_punct("}") {
                return;
            }
            let before = self.pos;
            self.item(impl_type);
            if self.pos == before {
                self.bump();
            }
        }
    }

    /// Parses (or skips) one item.
    fn item(&mut self, impl_type: Option<&str>) {
        let cfgs = self.collect_attributes();
        let mut is_pub = false;
        if self.eat_ident("pub") {
            is_pub = true;
            if self.at_punct("(") {
                is_pub = false; // pub(crate) / pub(super) are not public API
                self.skip_parens();
            }
        }
        // Qualifiers that may precede `fn`.
        loop {
            if self.eat_ident("const") {
                // `const fn` qualifier vs. `const NAME: T = …;` item.
                if !self.at_ident("fn") && !self.at_ident("unsafe") && !self.at_ident("extern") {
                    self.parse_const(cfgs);
                    return;
                }
            } else if self.eat_ident("unsafe") || self.eat_ident("async") {
                // keep scanning toward `fn`
            } else if self.at_ident("extern") && self.peek_at(1) == Some(&TokenKind::Str) {
                self.bump();
                self.bump();
            } else {
                break;
            }
        }
        if self.at_ident("fn") {
            self.parse_fn(is_pub, impl_type);
        } else if self.at_ident("impl") {
            self.parse_impl();
        } else if self.at_ident("trait") {
            self.bump();
            let name = self.ident_text();
            if name.is_some() {
                self.bump();
            }
            self.skip_to_body_open();
            if self.at_punct("{") {
                self.bump();
                self.items(name.as_deref(), usize::MAX);
                self.eat_punct("}");
            }
        } else if self.at_ident("mod") {
            self.bump();
            if matches!(self.peek(), Some(TokenKind::Ident(_))) {
                self.bump();
            }
            if self.at_punct("{") {
                self.bump();
                self.items(None, usize::MAX);
                self.eat_punct("}");
            } else {
                self.eat_punct(";");
            }
        } else if self.at_ident("use") {
            self.parse_use();
        } else if self.at_ident("struct") || self.at_ident("enum") || self.at_ident("union") {
            self.parse_type_def(is_pub);
        } else if self.at_ident("static") {
            let line = self.line();
            self.bump();
            let is_mut = self.eat_ident("mut");
            if let Some(name) = self.ident_text() {
                self.bump();
                self.out.statics.push(StaticItem {
                    name,
                    is_mut,
                    line,
                    is_test: false,
                });
            }
            self.skip_to_semi();
        } else if self.at_ident("type") {
            let line = self.line();
            self.bump();
            if let Some(name) = self.ident_text() {
                self.bump();
                if self.at_punct("<") {
                    self.skip_angles();
                }
                // Trait-declaration associated types (`type Output;`)
                // have no right-hand side and are not aliases.
                if self.eat_punct("=") {
                    let ty = self.type_text_until(&[";"]);
                    self.out.aliases.push(AliasItem {
                        name,
                        ty,
                        line,
                        is_test: false,
                    });
                }
            }
            self.skip_to_semi();
        } else if self
            .peek()
            .is_some_and(|k| ITEM_KEYWORDS.iter().any(|kw| k.is_ident(kw)))
        {
            // `extern "C" { … }`, `macro_rules! name { … }`, `type`/`static`/`use`.
            while let Some(k) = self.peek() {
                if k.is_punct("{") {
                    self.skip_braces();
                    return;
                }
                if k.is_punct(";") {
                    self.bump();
                    return;
                }
                self.bump();
            }
        } else {
            self.bump();
        }
    }

    fn skip_parens(&mut self) {
        if !self.at_punct("(") {
            return;
        }
        let mut depth = 0usize;
        while let Some(k) = self.peek() {
            if k.is_punct("(") {
                depth += 1;
            } else if k.is_punct(")") {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    fn skip_to_semi(&mut self) {
        let mut depth = 0usize;
        while let Some(k) = self.peek() {
            if k.is_punct("{") || k.is_punct("(") || k.is_punct("[") {
                depth += 1;
            } else if k.is_punct("}") || k.is_punct(")") || k.is_punct("]") {
                if depth == 0 {
                    return; // enclosing close: missing semicolon, stop here
                }
                depth -= 1;
            } else if k.is_punct(";") && depth == 0 {
                self.bump();
                return;
            }
            self.bump();
        }
    }

    /// Advances to the `{` opening an item body (skipping generics and
    /// `where` clauses), or to `;` for bodiless items.
    fn skip_to_body_open(&mut self) {
        while let Some(k) = self.peek() {
            if k.is_punct("{") || k.is_punct(";") {
                return;
            }
            if k.is_punct("<") {
                self.skip_angles();
                continue;
            }
            self.bump();
        }
    }

    /// Parses `const NAME: T = …;` with the cursor just past `const`.
    fn parse_const(&mut self, cfgs: Vec<CfgFlag>) {
        let line = self.line();
        let Some(name) = self.ident_text() else {
            self.skip_to_semi();
            return;
        };
        self.bump();
        if !self.eat_punct(":") {
            self.skip_to_semi();
            return;
        }
        let ty = self.type_text_until(&["=", ";"]);
        let mut value = String::new();
        if self.eat_punct("=") {
            value = self.type_text_until(&[";"]);
        }
        self.out.consts.push(ConstItem {
            name,
            ty,
            value,
            line,
            is_test: false,
            cfgs,
        });
        self.skip_to_semi();
    }

    fn parse_impl(&mut self) {
        self.bump(); // `impl`
        if self.at_punct("<") {
            self.skip_angles();
        }
        // First path: the trait (when followed by `for`) or the self type.
        let first = self.impl_path();
        let self_ty = if self.eat_ident("for") {
            self.impl_path()
        } else {
            first
        };
        self.skip_to_body_open();
        if self.at_punct("{") {
            self.bump();
            self.items(self_ty.as_deref(), usize::MAX);
            self.eat_punct("}");
        }
    }

    /// Reads a type path in an impl header, returning the base name.
    fn impl_path(&mut self) -> Option<String> {
        let mut base = None;
        loop {
            match self.peek() {
                Some(TokenKind::Ident(s)) if s != "for" && s != "where" => {
                    base = Some(s.clone());
                    self.bump();
                    if !self.eat_punct("::") {
                        break;
                    }
                }
                Some(k) if k.is_punct("<") => {
                    self.skip_angles();
                    break;
                }
                Some(k) if k.is_punct("&") || k.is_punct("(") => {
                    // `impl Trait for &T` / tuple impls: skip one token and
                    // keep looking for the base identifier.
                    self.bump();
                }
                _ => break,
            }
        }
        // Trailing generics after the base path (`Reader<T>`).
        if self.at_punct("<") {
            self.skip_angles();
        }
        base
    }

    fn parse_use(&mut self) {
        self.bump(); // `use`
        let mut prefix: Vec<String> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        let mut flushed = false;
        while let Some(k) = self.peek() {
            if k.is_punct(";") {
                self.bump();
                break;
            }
            if let Some(name) = k.ident() {
                if name == "as" {
                    // alias: skip the rename, keep the original path
                    self.bump();
                    if matches!(self.peek(), Some(TokenKind::Ident(_))) {
                        self.bump();
                    }
                    continue;
                }
                prefix.push(name.to_string());
                flushed = false;
                self.bump();
                continue;
            }
            if k.is_punct("::") {
                self.bump();
                continue;
            }
            if k.is_punct("{") {
                stack.push(prefix.len());
                self.bump();
                continue;
            }
            let is_close = k.is_punct("}");
            if k.is_punct(",") || is_close {
                if !flushed && !prefix.is_empty() {
                    self.out.uses.push(prefix.clone());
                }
                let restore = stack.last().copied().unwrap_or(0);
                prefix.truncate(restore);
                if is_close {
                    stack.pop();
                }
                self.bump();
                flushed = true;
                continue;
            }
            if k.is_punct("*") {
                // glob: record the prefix itself
                self.bump();
                continue;
            }
            self.bump();
        }
        if !flushed && !prefix.is_empty() {
            self.out.uses.push(prefix);
        }
    }

    /// Parses a `struct` / `enum` / `union` definition into a
    /// [`TypeItem`]. Field types are kept as flat token text so the
    /// shard-safety rule can walk the field-type closure; generics and
    /// `where` clauses are skipped.
    fn parse_type_def(&mut self, is_pub: bool) {
        let line = self.line();
        let is_enum = self.at_ident("enum");
        self.bump(); // `struct` / `enum` / `union`
        let Some(name) = self.ident_text() else {
            return;
        };
        self.bump();
        if self.at_punct("<") {
            self.skip_angles();
        }
        // Skip any `where` clause tokens up to the body or `;`. A `(`
        // before `where` opens a tuple struct; inside a `where` clause it
        // belongs to an `Fn(…)` bound and is skipped balanced.
        let mut in_where = false;
        while let Some(k) = self.peek() {
            if k.is_punct("{") || k.is_punct(";") {
                break;
            }
            if k.is_punct("(") {
                if in_where {
                    self.skip_parens();
                    continue;
                }
                break;
            }
            if k.is_punct("<") {
                self.skip_angles();
                continue;
            }
            if k.is_ident("where") {
                in_where = true;
            }
            self.bump();
        }
        let mut fields = Vec::new();
        if self.at_punct("(") {
            // Tuple struct: fields named by index.
            self.bump();
            self.parse_tuple_fields(&mut fields, None);
            self.skip_to_semi();
        } else if self.at_punct("{") {
            self.bump();
            if is_enum {
                self.parse_enum_variants(&mut fields);
            } else {
                self.parse_named_fields(&mut fields, None);
            }
            self.eat_punct("}");
        } else {
            self.eat_punct(";"); // unit struct
        }
        self.out.types.push(TypeItem {
            name,
            is_pub,
            line,
            fields,
            is_test: false,
        });
    }

    /// Parses `name: Type` fields until `}`; the cursor is just past `{`.
    /// Enum struct-variants pass the variant name as `prefix`.
    fn parse_named_fields(&mut self, fields: &mut Vec<FieldItem>, prefix: Option<&str>) {
        while let Some(k) = self.peek() {
            if k.is_punct("}") {
                return; // caller eats the brace
            }
            self.skip_attributes();
            if self.eat_ident("pub") && self.at_punct("(") {
                self.skip_parens();
            }
            let line = self.line();
            let Some(field) = self.ident_text() else {
                self.bump(); // resync on anything unexpected
                continue;
            };
            self.bump();
            if !self.eat_punct(":") {
                continue;
            }
            let ty = self.type_text_until(&["}"]);
            if !ty.is_empty() {
                let name = match prefix {
                    Some(p) => format!("{p}.{field}"),
                    None => field,
                };
                fields.push(FieldItem { name, ty, line });
            }
            self.eat_punct(",");
        }
    }

    /// Parses tuple-field types until `)`; the cursor is just past `(`.
    /// Fields are named by index, or `variant.index` inside an enum.
    fn parse_tuple_fields(&mut self, fields: &mut Vec<FieldItem>, variant: Option<&str>) {
        let mut index = 0usize;
        loop {
            if self.eat_punct(")") || self.peek().is_none() {
                return;
            }
            let line = self.line();
            self.skip_attributes();
            if self.eat_ident("pub") && self.at_punct("(") {
                self.skip_parens();
            }
            let ty = self.type_text_until(&[]);
            if !ty.is_empty() {
                let name = match variant {
                    Some(v) => format!("{v}.{index}"),
                    None => index.to_string(),
                };
                fields.push(FieldItem { name, ty, line });
                index += 1;
            }
            if !self.eat_punct(",") && !self.at_punct(")") {
                self.bump(); // resync
            }
        }
    }

    /// Parses enum variants until `}`, flattening every variant payload
    /// into the shared field list; the cursor is just past `{`.
    fn parse_enum_variants(&mut self, fields: &mut Vec<FieldItem>) {
        while let Some(k) = self.peek() {
            if k.is_punct("}") {
                return; // caller eats the brace
            }
            self.skip_attributes();
            let Some(variant) = self.ident_text() else {
                self.bump();
                continue;
            };
            self.bump();
            if self.at_punct("(") {
                self.bump();
                self.parse_tuple_fields(fields, Some(&variant));
            } else if self.at_punct("{") {
                self.bump();
                self.parse_named_fields(fields, Some(&variant));
                self.eat_punct("}");
            } else if self.eat_punct("=") {
                // Explicit discriminant: skip the expression.
                let mut depth = 0usize;
                while let Some(k) = self.peek() {
                    if k.is_punct("(") || k.is_punct("[") || k.is_punct("{") {
                        depth += 1;
                    } else if k.is_punct(")") || k.is_punct("]") || k.is_punct("}") {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    } else if k.is_punct(",") && depth == 0 {
                        break;
                    }
                    self.bump();
                }
            }
            self.eat_punct(",");
        }
    }

    fn parse_fn(&mut self, is_pub: bool, impl_type: Option<&str>) {
        let line = self.line();
        self.bump(); // `fn`
        let Some(name) = self.ident_text() else {
            return;
        };
        self.bump();
        if self.at_punct("<") {
            self.skip_angles();
        }
        let mut params = Vec::new();
        if self.at_punct("(") {
            self.bump();
            params = self.parse_params();
        }
        let mut ret_type = None;
        if self.eat_punct("->") {
            ret_type = Some(self.type_text_until(&["{", ";", "where"]));
        }
        if self.at_ident("where") {
            self.skip_to_body_open();
        }
        let body = if self.at_punct("{") {
            Some(self.parse_block())
        } else {
            self.eat_punct(";");
            None
        };
        self.out.fns.push(FnItem {
            name,
            impl_type: impl_type.map(str::to_string),
            is_pub,
            line,
            params,
            ret_type,
            body,
            is_test: false,
        });
    }

    /// Parses a parameter list; the cursor is just past `(`.
    fn parse_params(&mut self) -> Vec<Param> {
        let mut params = Vec::new();
        let mut depth = 0usize;
        let mut pat: Vec<String> = Vec::new();
        let mut ty: Vec<String> = Vec::new();
        let mut in_ty = false;
        while let Some(k) = self.peek() {
            if depth == 0 {
                if k.is_punct(")") {
                    self.bump();
                    break;
                }
                if k.is_punct(",") {
                    push_param(&mut params, &mut pat, &mut ty);
                    in_ty = false;
                    self.bump();
                    continue;
                }
                if k.is_punct(":") && !in_ty {
                    in_ty = true;
                    self.bump();
                    continue;
                }
                if k.is_punct("#") {
                    self.skip_attribute();
                    continue;
                }
            }
            if k.is_punct("(") || k.is_punct("[") || k.is_punct("{") {
                depth += 1;
            } else if k.is_punct(")") || k.is_punct("]") || k.is_punct("}") {
                depth = depth.saturating_sub(1);
            }
            let text = token_text(k);
            if in_ty {
                ty.push(text);
            } else {
                pat.push(text);
            }
            self.bump();
        }
        push_param(&mut params, &mut pat, &mut ty);
        params
    }

    /// Collects flat type text until one of `stops` at bracket depth 0.
    fn type_text_until(&mut self, stops: &[&str]) -> String {
        let mut parts = Vec::new();
        let mut angle = 0i32;
        let mut depth = 0usize;
        while let Some(k) = self.peek() {
            if depth == 0 && angle <= 0 {
                let hit = stops.iter().any(|s| k.is_punct(s) || k.is_ident(s));
                if hit {
                    break;
                }
            }
            if k.is_punct("<") {
                angle += 1;
            } else if k.is_punct("<<") {
                angle += 2;
            } else if k.is_punct(">") {
                angle -= 1;
            } else if k.is_punct(">>") {
                angle -= 2;
            } else if k.is_punct("(") || k.is_punct("[") {
                depth += 1;
            } else if k.is_punct(")") || k.is_punct("]") {
                if depth == 0 {
                    break; // enclosing close
                }
                depth -= 1;
            } else if k.is_punct(",") && depth == 0 && angle <= 0 {
                break;
            }
            parts.push(token_text(k));
            self.bump();
        }
        parts.join(" ")
    }

    fn parse_block(&mut self) -> Block {
        let mut block = Block::default();
        if !self.eat_punct("{") {
            return block;
        }
        while let Some(k) = self.peek() {
            if k.is_punct("}") {
                self.bump();
                return block;
            }
            let before = self.pos;
            if let Some(stmt) = self.parse_stmt() {
                block.stmts.push(stmt);
            }
            if self.pos == before {
                self.bump();
            }
        }
        block
    }

    /// Parses one statement; returns `None` for skipped nested items.
    fn parse_stmt(&mut self) -> Option<Stmt> {
        self.skip_attributes();
        if self.at_punct(";") {
            self.bump();
            return None;
        }
        if self.at_ident("let") {
            return Some(self.parse_let());
        }
        if self.at_ident("return") {
            let line = self.line();
            self.bump();
            let value = if self.at_punct(";") || self.at_punct("}") {
                None
            } else {
                Some(self.parse_expr(true))
            };
            self.eat_punct(";");
            return Some(Stmt::Return { value, line });
        }
        // Nested items inside bodies are parsed (fn) or skipped (rest).
        if self.at_ident("fn")
            || (self.at_ident("pub"))
            || self.at_ident("impl")
            || self.at_ident("trait")
            || self.at_ident("mod")
            || self
                .peek()
                .is_some_and(|k| ITEM_KEYWORDS.iter().any(|kw| k.is_ident(kw)))
        {
            // `const { … }` blocks and `unsafe` exprs are NOT items; `const`
            // here is always `const NAME: T = …;` in statement position.
            self.item(None);
            return None;
        }
        let expr = self.parse_expr(true);
        let has_semi = self.eat_punct(";");
        Some(Stmt::Expr { expr, has_semi })
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // `let`
                     // Skim the pattern up to a top-level `:`, `=` or `;`.
        let mut name = None;
        let mut depth = 0usize;
        while let Some(k) = self.peek() {
            if depth == 0 && (k.is_punct(":") || k.is_punct("=") || k.is_punct(";")) {
                break;
            }
            if k.is_punct("(") || k.is_punct("[") || k.is_punct("{") {
                depth += 1;
            } else if k.is_punct(")") || k.is_punct("]") || k.is_punct("}") {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if let Some(id) = k.ident() {
                if id != "mut" && id != "ref" && id != "_" {
                    name = Some(id.to_string());
                }
            }
            self.bump();
        }
        let ty = if self.eat_punct(":") {
            Some(self.type_text_until(&["=", ";"]))
        } else {
            None
        };
        let init = if self.eat_punct("=") {
            let e = self.parse_expr(true);
            // let-else divergence block
            if self.eat_ident("else") && self.at_punct("{") {
                self.skip_braces();
            }
            Some(e)
        } else {
            None
        };
        self.eat_punct(";");
        Stmt::Let {
            name,
            ty,
            init,
            line,
        }
    }

    // ---- expression parsing (precedence climbing) ----

    fn parse_expr(&mut self, allow_struct: bool) -> Expr {
        self.parse_assign(allow_struct)
    }

    fn parse_assign(&mut self, allow_struct: bool) -> Expr {
        let lhs = self.parse_range(allow_struct);
        for op in ["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="] {
            if self.at_punct(op) {
                let line = self.line();
                self.bump();
                let value = self.parse_assign(allow_struct);
                return Expr::Assign {
                    op,
                    target: Box::new(lhs),
                    value: Box::new(value),
                    line,
                };
            }
        }
        lhs
    }

    fn parse_range(&mut self, allow_struct: bool) -> Expr {
        let line = self.line();
        let lo = if self.at_punct("..") {
            Expr::Opaque { line }
        } else {
            self.parse_binary(0, allow_struct)
        };
        if self.at_punct("..") {
            let line = self.line();
            self.bump();
            self.eat_punct("="); // `..=` lexes as `..` `=`
            let hi = if self.range_end_ahead() {
                Expr::Opaque { line }
            } else {
                self.parse_binary(0, allow_struct)
            };
            return Expr::Binary {
                op: "..",
                lhs: Box::new(lo),
                rhs: Box::new(hi),
                line,
            };
        }
        lo
    }

    /// After `..`: is the range end absent (`a..` before `)`/`]`/etc.)?
    fn range_end_ahead(&self) -> bool {
        match self.peek() {
            None => true,
            Some(k) => {
                k.is_punct(")")
                    || k.is_punct("]")
                    || k.is_punct("}")
                    || k.is_punct(",")
                    || k.is_punct(";")
                    || k.is_punct("{")
                    || k.is_punct("=>")
            }
        }
    }

    /// Binary operator tiers, loosest first.
    const BINARY_TIERS: &'static [&'static [&'static str]] = &[
        &["||"],
        &["&&"],
        &["==", "!=", "<", ">", "<=", ">="],
        &["|"],
        &["^"],
        &["&"],
        &["<<", ">>"],
        &["+", "-"],
        &["*", "/", "%"],
    ];

    fn parse_binary(&mut self, tier: usize, allow_struct: bool) -> Expr {
        let Some(ops) = Self::BINARY_TIERS.get(tier) else {
            return self.parse_unary(allow_struct);
        };
        let mut lhs = self.parse_binary(tier + 1, allow_struct);
        loop {
            let Some(op) = ops.iter().find(|op| self.at_punct(op)) else {
                return lhs;
            };
            // `<` here is always a comparison: generic args in expressions
            // require the turbofish, which the path parser consumed.
            let line = self.line();
            self.bump();
            let rhs = self.parse_binary(tier + 1, allow_struct);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
    }

    fn parse_unary(&mut self, allow_struct: bool) -> Expr {
        let line = self.line();
        for op in ["-", "!", "*", "&", "&&"] {
            if self.at_punct(op) {
                self.bump();
                self.eat_ident("mut");
                let inner = self.parse_unary(allow_struct);
                return Expr::Unary {
                    expr: Box::new(inner),
                    line,
                };
            }
        }
        self.parse_postfix(allow_struct)
    }

    fn parse_postfix(&mut self, allow_struct: bool) -> Expr {
        let mut expr = self.parse_primary(allow_struct);
        loop {
            let line = self.line();
            if self.at_punct(".") {
                self.bump();
                match self.peek() {
                    Some(TokenKind::Ident(name)) => {
                        let name = name.clone();
                        self.bump();
                        if name == "await" {
                            continue;
                        }
                        if self.at_punct("::") {
                            self.bump();
                            self.skip_angles(); // turbofish
                        }
                        if self.at_punct("(") {
                            self.bump();
                            let args = self.parse_args(")");
                            expr = Expr::MethodCall {
                                recv: Box::new(expr),
                                method: name,
                                args,
                                line,
                            };
                        } else {
                            expr = Expr::Field {
                                base: Box::new(expr),
                                name,
                                line,
                            };
                        }
                    }
                    Some(TokenKind::Int(text) | TokenKind::Float(text)) => {
                        let name = text.clone();
                        self.bump();
                        expr = Expr::Field {
                            base: Box::new(expr),
                            name,
                            line,
                        };
                    }
                    _ => {
                        expr = Expr::Opaque { line };
                        break;
                    }
                }
            } else if self.at_punct("(") {
                self.bump();
                let args = self.parse_args(")");
                let path = match &expr {
                    Expr::Path { segs, .. } => segs.clone(),
                    _ => Vec::new(),
                };
                expr = Expr::Call { path, args, line };
            } else if self.at_punct("[") {
                self.bump();
                let index = self.parse_expr(true);
                self.close_group("]");
                expr = Expr::Index {
                    base: Box::new(expr),
                    index: Box::new(index),
                    line,
                };
            } else if self.at_punct("?") {
                self.bump();
                expr = Expr::Try {
                    expr: Box::new(expr),
                    line,
                };
            } else if self.at_ident("as") {
                self.bump();
                self.type_text_until(&[
                    ")", "]", "}", ",", ";", "{", "=>", "?", ".", "+", "-", "*", "/", "%", "==",
                    "!=", "<", ">", "<=", ">=", "&&", "||", "..", "=",
                ]);
                expr = Expr::Cast {
                    expr: Box::new(expr),
                    line,
                };
            } else {
                break;
            }
        }
        expr
    }

    /// Parses comma-separated expressions up to (and past) `close`.
    fn parse_args(&mut self, close: &str) -> Vec<Expr> {
        let mut args = Vec::new();
        loop {
            if self.eat_punct(close) {
                return args;
            }
            if self.peek().is_none() {
                return args;
            }
            let before = self.pos;
            args.push(self.parse_expr(true));
            if self.pos == before {
                self.bump(); // unparseable token: drop it, keep going
                args.pop();
            }
            if !self.eat_punct(",") && !self.at_punct(close) {
                // Recovery: skip to the next top-level `,` or the close.
                self.sync_to_comma_or(close);
            }
        }
    }

    /// Skips past the closing delimiter of the current group.
    fn close_group(&mut self, close: &str) {
        self.sync_to_comma_or(close);
        while self.eat_punct(",") {
            self.sync_to_comma_or(close);
        }
        self.eat_punct(close);
    }

    fn sync_to_comma_or(&mut self, close: &str) {
        let mut depth = 0usize;
        while let Some(k) = self.peek() {
            if depth == 0 && (k.is_punct(",") || k.is_punct(close)) {
                return;
            }
            if k.is_punct("(") || k.is_punct("[") || k.is_punct("{") {
                depth += 1;
            } else if k.is_punct(")") || k.is_punct("]") || k.is_punct("}") {
                if depth == 0 {
                    return; // enclosing close we do not own
                }
                depth -= 1;
            }
            self.bump();
        }
    }

    fn parse_primary(&mut self, allow_struct: bool) -> Expr {
        let line = self.line();
        match self.peek() {
            Some(TokenKind::Int(_) | TokenKind::Float(_) | TokenKind::Str | TokenKind::Char) => {
                self.bump();
                Expr::Lit { line }
            }
            Some(TokenKind::Lifetime(_)) => {
                // loop label: `'outer: loop { … }`
                self.bump();
                self.eat_punct(":");
                self.parse_primary(allow_struct)
            }
            Some(k) if k.is_ident("true") || k.is_ident("false") => {
                self.bump();
                Expr::Lit { line }
            }
            Some(k) if k.is_ident("if") => self.parse_if(),
            Some(k) if k.is_ident("match") => self.parse_match(),
            Some(k) if k.is_ident("while") || k.is_ident("for") || k.is_ident("loop") => {
                self.parse_loop()
            }
            Some(k) if k.is_ident("unsafe") => {
                self.bump();
                if self.at_punct("{") {
                    let block = self.parse_block();
                    Expr::BlockExpr { block, line }
                } else {
                    Expr::Opaque { line }
                }
            }
            Some(k) if k.is_ident("move") || k.is_punct("|") || k.is_punct("||") => {
                self.parse_closure()
            }
            Some(k) if k.is_ident("break") || k.is_ident("continue") => {
                self.bump();
                if let Some(TokenKind::Lifetime(_)) = self.peek() {
                    self.bump();
                }
                if !self.range_end_ahead() {
                    let inner = self.parse_expr(allow_struct);
                    return Expr::Group {
                        items: vec![inner],
                        line,
                    };
                }
                Expr::Opaque { line }
            }
            Some(k) if k.is_ident("return") => {
                self.bump();
                if !self.range_end_ahead() {
                    let inner = self.parse_expr(allow_struct);
                    return Expr::Group {
                        items: vec![inner],
                        line,
                    };
                }
                Expr::Opaque { line }
            }
            Some(k) if k.is_punct("(") => {
                self.bump();
                let mut items = self.parse_args(")");
                if items.len() == 1 {
                    return items.remove(0); // parens are transparent
                }
                Expr::Group { items, line }
            }
            Some(k) if k.is_punct("[") => {
                self.bump();
                let mut items = self.parse_args("]");
                // `[expr; len]` repeats parse as one expr + recovery; fine.
                if items.len() == 1 {
                    let only = items.remove(0);
                    return Expr::Group {
                        items: vec![only],
                        line,
                    };
                }
                Expr::Group { items, line }
            }
            Some(k) if k.is_punct("{") => {
                let block = self.parse_block();
                Expr::BlockExpr { block, line }
            }
            Some(TokenKind::Ident(_)) => self.parse_path_expr(allow_struct),
            _ => {
                self.bump();
                Expr::Opaque { line }
            }
        }
    }

    fn parse_path_expr(&mut self, allow_struct: bool) -> Expr {
        let line = self.line();
        let mut segs = Vec::new();
        while let Some(TokenKind::Ident(s)) = self.peek() {
            segs.push(s.clone());
            self.bump();
            if self.at_punct("::") {
                self.bump();
                if self.at_punct("<") {
                    self.skip_angles(); // turbofish `::<T>`
                    if !self.eat_punct("::") {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        if segs.is_empty() {
            self.bump();
            return Expr::Opaque { line };
        }
        if self.at_punct("!") {
            // macro invocation
            self.bump();
            let name = segs.join("::");
            let args = if self.eat_punct("(") {
                self.parse_args(")")
            } else if self.eat_punct("[") {
                self.parse_args("]")
            } else if self.at_punct("{") {
                self.bump();
                self.parse_args("}")
            } else {
                Vec::new()
            };
            return Expr::Macro { name, args, line };
        }
        if self.at_punct("(") {
            self.bump();
            let args = self.parse_args(")");
            return Expr::Call {
                path: segs,
                args,
                line,
            };
        }
        if allow_struct && self.at_punct("{") && self.struct_lit_ahead() {
            self.bump();
            let mut fields = Vec::new();
            loop {
                self.skip_attributes();
                if self.eat_punct("}") || self.peek().is_none() {
                    break;
                }
                if self.at_punct("..") {
                    // functional update: `..base`
                    self.bump();
                    let base = self.parse_expr(true);
                    fields.push(("..".to_string(), base));
                    self.close_group("}");
                    break;
                }
                let Some(field) = self.ident_text() else {
                    self.sync_to_comma_or("}");
                    self.eat_punct(",");
                    continue;
                };
                self.bump();
                let value = if self.eat_punct(":") {
                    self.parse_expr(true)
                } else {
                    // shorthand `Foo { x }`
                    Expr::Path {
                        segs: vec![field.clone()],
                        line: self.line(),
                    }
                };
                fields.push((field, value));
                if !self.eat_punct(",") && !self.at_punct("}") {
                    self.sync_to_comma_or("}");
                    self.eat_punct(",");
                }
            }
            return Expr::StructLit {
                path: segs,
                fields,
                line,
            };
        }
        Expr::Path { segs, line }
    }

    /// Distinguishes `Path { field: … }` struct literals from a path
    /// followed by a block (`match x { … }` arms never reach here because
    /// conditions parse with `allow_struct = false`).
    fn struct_lit_ahead(&self) -> bool {
        match (self.peek_at(1), self.peek_at(2)) {
            (Some(k), _) if k.is_punct("}") || k.is_punct("..") => true,
            (Some(TokenKind::Ident(_)), Some(k2)) => {
                k2.is_punct(":") || k2.is_punct(",") || k2.is_punct("}")
            }
            (Some(k), _) if k.is_punct("#") => true, // attribute on a field
            _ => false,
        }
    }

    fn parse_if(&mut self) -> Expr {
        let line = self.line();
        self.bump(); // `if`
        let cond = if self.eat_ident("let") {
            self.skip_pattern_until(&["="]);
            self.eat_punct("=");
            self.parse_expr(false)
        } else {
            self.parse_expr(false)
        };
        let then_block = self.parse_block();
        let else_branch = if self.eat_ident("else") {
            if self.at_ident("if") {
                Some(Box::new(self.parse_if()))
            } else {
                let line = self.line();
                let block = self.parse_block();
                Some(Box::new(Expr::BlockExpr { block, line }))
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then_block,
            else_branch,
            line,
        }
    }

    fn parse_match(&mut self) -> Expr {
        let line = self.line();
        self.bump(); // `match`
        let scrutinee = self.parse_expr(false);
        let mut arms = Vec::new();
        if self.eat_punct("{") {
            while let Some(k) = self.peek() {
                if k.is_punct("}") {
                    self.bump();
                    break;
                }
                let before = self.pos;
                self.skip_attributes();
                self.eat_punct("|");
                self.skip_pattern_until(&["=>", "if"]);
                if self.eat_ident("if") {
                    arms.push(self.parse_expr(false)); // guard expression
                }
                if self.eat_punct("=>") {
                    arms.push(self.parse_expr(true));
                    self.eat_punct(",");
                }
                if self.pos == before {
                    self.bump();
                }
            }
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        }
    }

    fn parse_loop(&mut self) -> Expr {
        let line = self.line();
        if self.eat_ident("loop") {
            let body = self.parse_block();
            return Expr::Loop {
                cond: None,
                body,
                line,
            };
        }
        if self.eat_ident("while") {
            let cond = if self.eat_ident("let") {
                self.skip_pattern_until(&["="]);
                self.eat_punct("=");
                self.parse_expr(false)
            } else {
                self.parse_expr(false)
            };
            let body = self.parse_block();
            return Expr::Loop {
                cond: Some(Box::new(cond)),
                body,
                line,
            };
        }
        // `for <pat> in <iter> { … }`
        self.eat_ident("for");
        self.skip_pattern_until(&["in"]);
        self.eat_ident("in");
        let iter = self.parse_expr(false);
        let body = self.parse_block();
        Expr::Loop {
            cond: Some(Box::new(iter)),
            body,
            line,
        }
    }

    fn parse_closure(&mut self) -> Expr {
        let line = self.line();
        self.eat_ident("move");
        if self.eat_punct("||") {
            // zero-parameter closure
        } else if self.eat_punct("|") {
            let mut depth = 0usize;
            while let Some(k) = self.peek() {
                if depth == 0 && k.is_punct("|") {
                    self.bump();
                    break;
                }
                if k.is_punct("(") || k.is_punct("[") || k.is_punct("<") {
                    depth += 1;
                } else if k.is_punct(")") || k.is_punct("]") || k.is_punct(">") {
                    depth = depth.saturating_sub(1);
                }
                self.bump();
            }
        }
        if self.eat_punct("->") {
            self.type_text_until(&["{"]);
        }
        let body = self.parse_expr(true);
        Expr::Closure {
            body: Box::new(body),
            line,
        }
    }

    /// Skips pattern tokens until one of `stops` (idents or puncts) at
    /// bracket depth 0, or a statement boundary.
    fn skip_pattern_until(&mut self, stops: &[&str]) {
        let mut depth = 0usize;
        while let Some(k) = self.peek() {
            if depth == 0 {
                let hit = stops.iter().any(|s| k.is_punct(s) || k.is_ident(s));
                if hit || k.is_punct(";") {
                    return;
                }
                if k.is_punct("}") {
                    return;
                }
            }
            if k.is_punct("(") || k.is_punct("[") || k.is_punct("{") {
                depth += 1;
            } else if k.is_punct(")") || k.is_punct("]") || k.is_punct("}") {
                depth = depth.saturating_sub(1);
            }
            self.bump();
        }
    }
}

/// Finalises one accumulated parameter into the list.
fn push_param(params: &mut Vec<Param>, pat: &mut Vec<String>, ty: &mut Vec<String>) {
    if pat.is_empty() && ty.is_empty() {
        return;
    }
    let is_self = pat.iter().any(|p| p == "self");
    let name = if is_self {
        Some("self".to_string())
    } else {
        pat.iter()
            .rev()
            .find(|p| {
                p.chars().all(|c| c.is_alphanumeric() || c == '_')
                    && p != &"mut"
                    && p != &"ref"
                    && p != &"_"
                    && !p.chars().next().is_some_and(|c| c.is_ascii_digit())
            })
            .cloned()
    };
    let ty_text = if is_self && ty.is_empty() {
        "Self".to_string()
    } else {
        ty.join(" ")
    };
    params.push(Param { name, ty: ty_text });
    pat.clear();
    ty.clear();
}

/// Plain-text form of a token, for type strings.
fn token_text(kind: &TokenKind) -> String {
    match kind {
        TokenKind::Ident(s) => s.clone(),
        TokenKind::Lifetime(l) => format!("'{l}"),
        TokenKind::Int(s) | TokenKind::Float(s) => s.clone(),
        TokenKind::Str => "\"…\"".to_string(),
        TokenKind::Char => "'…'".to_string(),
        TokenKind::Punct(p) => (*p).to_string(),
        TokenKind::Comment(_) => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&SourceFile::parse("crates/dsp/src/x.rs", src))
    }

    fn find<'a>(pf: &'a ParsedFile, name: &str) -> Option<&'a FnItem> {
        pf.fns.iter().find(|f| f.name == name)
    }

    /// All call / method-call names reachable in a function body.
    fn call_names(item: &FnItem) -> Vec<String> {
        let mut names = Vec::new();
        if let Some(body) = &item.body {
            body.visit(&mut |e| match e {
                Expr::Call { path, .. } => {
                    if let Some(last) = path.last() {
                        names.push(last.clone());
                    }
                }
                Expr::MethodCall { method, .. } => names.push(method.clone()),
                _ => {}
            });
        }
        names
    }

    #[test]
    fn signature_and_visibility() {
        let pf = parse(
            "pub fn wavelength_m(freq_hz: f64) -> f64 { 3.0e8 / freq_hz }\n\
             pub(crate) fn helper(x: &mut [f64]) {}\n",
        );
        let w = find(&pf, "wavelength_m").map(|f| (f.is_pub, f.params.len()));
        assert_eq!(w, Some((true, 1)));
        let name = find(&pf, "wavelength_m").and_then(|f| f.params[0].name.clone());
        assert_eq!(name.as_deref(), Some("freq_hz"));
        let h = find(&pf, "helper").map(|f| f.is_pub);
        assert_eq!(h, Some(false), "pub(crate) is not public");
    }

    #[test]
    fn impl_methods_carry_self_type() {
        let pf = parse(
            "struct Reader { n: usize }\n\
             impl Reader {\n  pub fn new(n: usize) -> Self { Reader { n } }\n}\n\
             impl std::fmt::Display for Reader {\n  fn fmt(&self) -> usize { self.n }\n}\n",
        );
        assert_eq!(
            find(&pf, "new")
                .and_then(|f| f.impl_type.clone())
                .as_deref(),
            Some("Reader")
        );
        assert_eq!(
            find(&pf, "fmt")
                .and_then(|f| f.impl_type.clone())
                .as_deref(),
            Some("Reader"),
            "trait impls attribute methods to the self type"
        );
    }

    #[test]
    fn calls_and_method_chains_are_extracted() {
        let pf = parse(
            "fn go(xs: &[f64]) -> f64 {\n\
               let m = mean(xs);\n\
               let v = xs.iter().map(|x| x - m).sum::<f64>();\n\
               helpers::finish(v.abs(), m)\n\
             }\n",
        );
        let names = call_names(find(&pf, "go").unwrap_or(&pf.fns[0]));
        for expected in ["mean", "iter", "map", "sum", "finish", "abs"] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn indexing_and_macros_are_visible() {
        let pf = parse(
            "fn f(xs: &[f64], i: usize) -> f64 {\n\
               if i > xs.len() { panic!(\"out of range {}\", i); }\n\
               xs[i]\n\
             }\n",
        );
        let item = find(&pf, "f").map(|f| {
            let mut saw_index = false;
            let mut saw_panic = false;
            if let Some(b) = &f.body {
                b.visit(&mut |e| match e {
                    Expr::Index { .. } => saw_index = true,
                    Expr::Macro { name, .. } if name == "panic" => saw_panic = true,
                    _ => {}
                });
            }
            (saw_index, saw_panic)
        });
        assert_eq!(item, Some((true, true)));
    }

    #[test]
    fn let_binding_names_and_struct_literals() {
        let pf = parse(
            "struct P { rate_bpm: f64 }\n\
             fn f(hz: f64) -> P {\n\
               let rate_bpm = hz * 60.0;\n\
               P { rate_bpm }\n\
             }\n",
        );
        let f = find(&pf, "f");
        let has_let = f.is_some_and(|f| {
            f.body.as_ref().is_some_and(|b| {
                b.stmts
                    .iter()
                    .any(|s| matches!(s, Stmt::Let { name: Some(n), .. } if n == "rate_bpm"))
            })
        });
        assert!(has_let, "let name extracted");
        let has_lit = f.is_some_and(|f| {
            let mut found = false;
            if let Some(b) = &f.body {
                b.visit(&mut |e| {
                    if let Expr::StructLit { path, fields, .. } = e {
                        found = path == &["P"] && fields.len() == 1;
                    }
                });
            }
            found
        });
        assert!(has_lit, "struct literal with shorthand field");
    }

    #[test]
    fn control_flow_bodies_are_walked() {
        let pf = parse(
            "fn f(xs: &[f64]) -> f64 {\n\
               let mut acc = 0.0;\n\
               for x in xs.iter() {\n\
                 match classify(*x) {\n\
                   0 => acc += weigh(*x),\n\
                   n if n > 2 => acc += heavy(n),\n\
                   _ => {}\n\
                 }\n\
               }\n\
               while acc > 10.0 { acc = shrink(acc); }\n\
               acc\n\
             }\n",
        );
        let names = call_names(find(&pf, "f").unwrap_or(&pf.fns[0]));
        for expected in ["iter", "classify", "weigh", "heavy", "shrink"] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn nested_fns_and_test_marking() {
        let src = "\
pub fn outer() -> f64 { inner() }
fn inner() -> f64 { 0.0 }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { super::outer(); }
}
";
        let pf = parse(src);
        assert_eq!(find(&pf, "outer").map(|f| f.is_test), Some(false));
        assert_eq!(find(&pf, "t").map(|f| f.is_test), Some(true));
    }

    #[test]
    fn use_trees_flatten() {
        let pf = parse("use a::b::{c, d::e};\nuse f as g;\n");
        assert!(pf
            .uses
            .contains(&vec!["a".to_string(), "b".to_string(), "c".to_string()]));
        assert!(pf.uses.contains(&vec![
            "a".to_string(),
            "b".to_string(),
            "d".to_string(),
            "e".to_string()
        ]));
        assert!(pf.uses.contains(&vec!["f".to_string()]));
    }

    #[test]
    fn hostile_input_terminates() {
        for src in [
            "fn f( {{{",
            "fn f() { let = ; }",
            "impl for {}",
            "fn f() { a.b.(x) }",
            "fn f() { match { => , } }",
            "fn f() -> { ",
            "fn f() { x[ }",
            "pub pub pub fn",
            "fn f() { |a, { } }",
        ] {
            let _ = parse(src); // must not hang or panic
        }
    }

    #[test]
    fn base_type_names() {
        assert_eq!(
            base_type_name("& mut ReaderConfig").as_deref(),
            Some("ReaderConfig")
        );
        assert_eq!(base_type_name("Vec < f64 >").as_deref(), Some("Vec"));
        assert_eq!(
            base_type_name("& 'a epc :: Epc < 'a >").as_deref(),
            Some("Epc")
        );
        assert_eq!(base_type_name("Self").as_deref(), Some("Self"));
    }

    #[test]
    fn if_let_and_closures() {
        let pf = parse(
            "fn f(o: Option<f64>) -> f64 {\n\
               if let Some(v) = o { v } else { fallback() }\n\
             }\n\
             fn g(xs: Vec<f64>) -> usize { xs.iter().filter(|x| keep(**x)).count() }\n",
        );
        assert!(call_names(find(&pf, "f").unwrap_or(&pf.fns[0])).contains(&"fallback".to_string()));
        assert!(call_names(find(&pf, "g").unwrap_or(&pf.fns[0])).contains(&"keep".to_string()));
    }

    #[test]
    fn struct_fields_are_captured() {
        let pf = parse(
            "pub struct S {\n  pub a: BTreeMap<(u8, u32), TagState>,\n  b: Rc<RefCell<f64>>,\n}\n\
             struct T(u8, Vec<f64>);\nstruct Unit;\n",
        );
        assert_eq!(pf.types.len(), 3);
        let s = &pf.types[0];
        assert!(s.is_pub);
        assert_eq!(s.name, "S");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name, "a");
        assert!(s.fields[0].ty.contains("TagState"), "{}", s.fields[0].ty);
        assert!(s.fields[1].ty.contains("RefCell"), "{}", s.fields[1].ty);
        let t = &pf.types[1];
        assert_eq!(t.fields.len(), 2);
        assert_eq!(t.fields[1].name, "1");
        assert!(t.fields[1].ty.contains("Vec"), "{}", t.fields[1].ty);
        assert!(pf.types[2].fields.is_empty());
    }

    #[test]
    fn enum_variant_payloads_become_fields() {
        let pf = parse(
            "enum E {\n  A,\n  B(Rc<f64>, u8),\n  C { x: Cell<u32> },\n  D = 4,\n}\n\
             fn after() {}\n",
        );
        assert_eq!(pf.types.len(), 1);
        let e = &pf.types[0];
        assert_eq!(e.name, "E");
        let names: Vec<&str> = e.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["B.0", "B.1", "C.x"]);
        assert!(e.fields[0].ty.contains("Rc"), "{}", e.fields[0].ty);
        assert!(e.fields[2].ty.contains("Cell"), "{}", e.fields[2].ty);
        // The parser resynchronised: the following fn is still seen.
        assert!(find(&pf, "after").is_some());
    }

    #[test]
    fn statics_are_captured_with_mutability() {
        let pf = parse(
            "static COUNT: u64 = 0;\npub static mut SCRATCH: [f64; 8] = [0.0; 8];\nfn f() {}\n",
        );
        assert_eq!(pf.statics.len(), 2);
        assert_eq!(pf.statics[0].name, "COUNT");
        assert!(!pf.statics[0].is_mut);
        assert_eq!(pf.statics[1].name, "SCRATCH");
        assert!(pf.statics[1].is_mut);
        assert!(find(&pf, "f").is_some());
    }

    #[test]
    fn generic_struct_with_where_clause_parses() {
        let pf = parse("struct G<T: Clone> where T: Default {\n  inner: Vec<T>,\n}\nfn g() {}\n");
        assert_eq!(pf.types.len(), 1);
        assert_eq!(pf.types[0].fields.len(), 1);
        assert_eq!(pf.types[0].fields[0].name, "inner");
        assert!(find(&pf, "g").is_some());
    }

    #[test]
    fn type_aliases_are_captured() {
        let pf = parse(
            "type Slab = Vec<((u8, u32), TagState)>;\n\
             pub type Pair<T> = (T, T);\n\
             trait Tr { type Output; }\n\
             fn f() {}\n",
        );
        assert_eq!(pf.aliases.len(), 2, "{:?}", pf.aliases);
        assert_eq!(pf.aliases[0].name, "Slab");
        assert!(
            pf.aliases[0].ty.contains("Vec") && pf.aliases[0].ty.contains("TagState"),
            "{}",
            pf.aliases[0].ty
        );
        assert_eq!(pf.aliases[1].name, "Pair");
        // The bodiless associated type is not an alias, and items after
        // the alias still parse.
        assert!(find(&pf, "f").is_some());
    }

    #[test]
    fn const_items_are_captured_with_cfgs() {
        let pf = parse(
            "pub mod protocol {\n\
               use std::sync::atomic::Ordering;\n\
               #[cfg(not(sync_mutant))]\n\
               pub const PUBLISH: Ordering = Ordering::Release;\n\
               #[cfg(sync_mutant)]\n\
               pub const PUBLISH: Ordering = Ordering::Relaxed;\n\
               pub const SLOT: Ordering = Ordering::Relaxed;\n\
             }\n\
             const LIMIT: usize = 64 * 1024;\n\
             fn after() {}\n",
        );
        assert_eq!(pf.consts.len(), 4, "{:?}", pf.consts);
        assert_eq!(pf.consts[0].name, "PUBLISH");
        assert!(pf.consts[0].ty.contains("Ordering"), "{}", pf.consts[0].ty);
        assert!(
            pf.consts[0].value.contains("Release"),
            "{}",
            pf.consts[0].value
        );
        assert_eq!(
            pf.consts[0].cfgs,
            vec![CfgFlag {
                name: "sync_mutant".to_string(),
                negated: true,
            }]
        );
        assert_eq!(
            pf.consts[1].cfgs,
            vec![CfgFlag {
                name: "sync_mutant".to_string(),
                negated: false,
            }]
        );
        assert!(pf.consts[2].cfgs.is_empty());
        assert!(
            pf.consts[3].value.contains("1024"),
            "{}",
            pf.consts[3].value
        );
        assert!(find(&pf, "after").is_some());
    }

    #[test]
    fn cfg_flag_satisfaction() {
        let on = CfgFlag {
            name: "sync_mutant".to_string(),
            negated: false,
        };
        let off = CfgFlag {
            name: "sync_mutant".to_string(),
            negated: true,
        };
        let active = vec!["sync_mutant".to_string()];
        assert!(on.satisfied(&active) && !on.satisfied(&[]));
        assert!(!off.satisfied(&active) && off.satisfied(&[]));
    }

    #[test]
    fn associated_consts_do_not_derail_impl_parsing() {
        let pf = parse(
            "struct S;\n\
             impl S {\n\
               const CAP: usize = 8;\n\
               fn cap(&self) -> usize { Self::CAP }\n\
             }\n",
        );
        assert_eq!(pf.consts.len(), 1);
        assert_eq!(pf.consts[0].name, "CAP");
        assert_eq!(
            find(&pf, "cap")
                .and_then(|f| f.impl_type.clone())
                .as_deref(),
            Some("S")
        );
    }
}

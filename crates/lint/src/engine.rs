//! Scan orchestration: walk the workspace, lex every file, run every
//! enabled per-file rule, parse the files into the workspace model for
//! the semantic rules, and reconcile the results against the ratchet
//! baseline.

use crate::baseline::{self, Counts, Regression};
use crate::callgraph::Workspace;
use crate::config::Config;
use crate::report::{count_by_rule_and_file, Severity, Violation};
use crate::rules::{all_rules, semantic_rules, RuleCtx};
use crate::source::SourceFile;
use crate::walk::rust_files;
use std::fs;
use std::io;
use std::path::Path;

/// Name of the config file at the workspace root.
pub const CONFIG_FILE: &str = "lint.toml";
/// Name of the ratchet baseline at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// Everything a scan produced.
#[derive(Debug)]
pub struct ScanOutcome {
    /// All violations from error- and warn-level rules.
    pub violations: Vec<Violation>,
    /// Violations of rules enforced at [`Severity::Error`].
    pub enforced: Vec<Violation>,
    /// Per-(rule, file) counts of the enforced violations.
    pub enforced_counts: Counts,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Runs all rules over the workspace rooted at `root`.
///
/// # Errors
///
/// Returns an I/O error if the tree cannot be walked or a file read.
pub fn scan(root: &Path, config: &Config) -> io::Result<ScanOutcome> {
    let ctx = RuleCtx {
        lib_crates: config.lib_crates.clone(),
    };
    let rules = all_rules();
    let mut violations = Vec::new();
    let mut enforced = Vec::new();
    let files = rust_files(root, &config.skip_dirs)?;
    let files_scanned = files.len();
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let text = fs::read_to_string(root.join(rel))?;
        let file = SourceFile::parse(&rel.to_string_lossy(), &text);
        for rule in &rules {
            let severity = config.severity_for(rule.id(), rule.default_severity());
            if severity == Severity::Off {
                continue;
            }
            let found = rule.check(&file, &ctx);
            if severity == Severity::Error {
                enforced.extend(found.iter().cloned());
            }
            violations.extend(found);
        }
        sources.push(file);
    }
    // Semantic rules run once over the whole parsed workspace.
    let ws = Workspace::build(&sources, config);
    for rule in semantic_rules() {
        let severity = config.severity_for(rule.id(), rule.default_severity());
        if severity == Severity::Off {
            continue;
        }
        let found = rule.check(&ws);
        if severity == Severity::Error {
            enforced.extend(found.iter().cloned());
        }
        violations.extend(found);
    }
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    enforced.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let enforced_counts = count_by_rule_and_file(&enforced);
    Ok(ScanOutcome {
        violations,
        enforced,
        enforced_counts,
        files_scanned,
    })
}

/// Parses the whole workspace into the semantic model without running
/// any rules — used by the `hotpath` CLI report, which wants the raw
/// [`crate::hotpath::inventory`] rather than violations.
///
/// # Errors
///
/// Returns an I/O error if the tree cannot be walked or a file read.
pub fn load_workspace(root: &Path, config: &Config) -> io::Result<Workspace> {
    let files = rust_files(root, &config.skip_dirs)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let text = fs::read_to_string(root.join(rel))?;
        sources.push(SourceFile::parse(&rel.to_string_lossy(), &text));
    }
    Ok(Workspace::build(&sources, config))
}

/// Loads `lint.toml` from the root (defaults if absent).
///
/// # Errors
///
/// Returns a message for unreadable or invalid config.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join(CONFIG_FILE);
    if !path.exists() {
        return Ok(Config::default());
    }
    let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    Config::parse(&text).map_err(|e| e.to_string())
}

/// Loads the ratchet baseline from the root (empty if absent).
///
/// # Errors
///
/// Returns a message for an unreadable or malformed baseline.
pub fn load_baseline(root: &Path) -> Result<Counts, String> {
    let path = root.join(BASELINE_FILE);
    if !path.exists() {
        return Ok(Counts::new());
    }
    let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    baseline::parse(&text)
}

/// The result of a full `check` run.
#[derive(Debug)]
pub struct CheckResult {
    pub outcome: ScanOutcome,
    pub regressions: Vec<Regression>,
    /// Baseline entries that are now over-provisioned.
    pub slack: Vec<(String, String, usize, usize)>,
}

impl CheckResult {
    /// A check passes when nothing regressed beyond the baseline.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Scans and compares against the checked-in baseline.
///
/// # Errors
///
/// Returns a message for I/O, config or baseline problems.
pub fn check(root: &Path) -> Result<CheckResult, String> {
    let config = load_config(root)?;
    let base = load_baseline(root)?;
    let outcome = scan(root, &config).map_err(|e| format!("scan failed: {e}"))?;
    let regressions = baseline::regressions(&outcome.enforced_counts, &base);
    let slack = baseline::slack(&outcome.enforced_counts, &base);
    Ok(CheckResult {
        outcome,
        regressions,
        slack,
    })
}

/// Violations in `outcome` for the (rule, file) pairs that regressed —
/// what to print so the developer sees concrete lines, not just counts.
pub fn regressed_violations<'a>(
    outcome: &'a ScanOutcome,
    regressions: &[Regression],
) -> Vec<&'a Violation> {
    outcome
        .enforced
        .iter()
        .filter(|v| {
            regressions
                .iter()
                .any(|r| r.rule == v.rule && r.path == v.path)
        })
        .collect()
}

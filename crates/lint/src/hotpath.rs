//! Hot-path cost inventory.
//!
//! Walks the transitive call closure of the ingest roots configured in
//! `[hotpath]` (`lint.toml`) and records every heap-allocation and keyed
//! container-lookup site in reachable non-test code, each with a witness
//! call path from its root. The inventory backs two consumers:
//!
//! * the `hot-path-cost` semantic rule, which ratchets the sites through
//!   the ordinary baseline machinery, and
//! * `tagbreathe-lint hotpath`, which emits the inventory as JSON so CI
//!   can assert the site count only ever goes down — the concrete
//!   worklist for the slab/SoA refactor.
//!
//! Closures passed to amortised-slow-path adapters (`or_insert_with`,
//! `unwrap_or_else`, …) are skipped: they run on first insertion or on
//! the error arm, not per report. Detection is syntactic, like every
//! other rule — `.clone()` on a `Copy` value is still inventoried,
//! because the reviewer (not the lint) decides what is actually hot.

use crate::callgraph::Workspace;
use crate::parser::{Block, Expr, Stmt, TypeItem};
use crate::sarif::json_string;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

/// What a cost site does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostKind {
    /// Heap allocation (constructor, growing method, owning conversion).
    Alloc,
    /// Keyed container lookup (`get`, `entry`, `insert`, …).
    MapLookup,
}

impl CostKind {
    /// Human-readable kind for diagnostics.
    #[must_use]
    pub fn human(self) -> &'static str {
        match self {
            CostKind::Alloc => "allocation",
            CostKind::MapLookup => "map lookup",
        }
    }

    /// Stable machine tag for the JSON report.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            CostKind::Alloc => "alloc",
            CostKind::MapLookup => "map-lookup",
        }
    }
}

/// One allocation or lookup site reachable from a hot root.
#[derive(Debug)]
pub struct CostSite {
    /// Allocation or map lookup.
    pub kind: CostKind,
    /// What the site does, e.g. `Vec::new` or `.entry()`.
    pub what: String,
    /// Call-graph node of the containing function.
    pub node: usize,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// 1-indexed line of the site.
    pub line: u32,
    /// Witness call path: labels from the root to the containing
    /// function (inclusive).
    pub witness: Vec<String>,
}

/// The full inventory of one scan.
#[derive(Debug)]
pub struct Inventory {
    /// All sites, sorted by (path, line, what).
    pub sites: Vec<CostSite>,
    /// Labels of the root functions that matched workspace code.
    pub root_labels: Vec<String>,
    /// Configured roots that matched nothing (likely typos).
    pub unmatched_roots: Vec<String>,
    /// Number of functions in the transitive closure.
    pub reachable_fns: usize,
}

/// Builds the inventory for a workspace. Empty `[hotpath] roots`
/// produces an empty inventory (the pass is opt-in).
#[must_use]
pub fn inventory(ws: &Workspace) -> Inventory {
    let n = ws.graph.nodes.len();
    let allow: BTreeSet<usize> = ws
        .hotpath
        .allow
        .iter()
        .flat_map(|a| ws.nodes_labelled(a))
        .collect();
    // Multi-source BFS over forward edges; `parent` gives the shortest
    // witness path back to a root (roots are their own parent).
    let mut parent = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    let mut root_labels = Vec::new();
    let mut unmatched_roots = Vec::new();
    for root in &ws.hotpath.roots {
        let matched = ws.nodes_labelled(root);
        if matched.is_empty() {
            unmatched_roots.push(root.clone());
        }
        for i in matched {
            if parent.get(i).copied() == Some(usize::MAX) {
                if let Some(slot) = parent.get_mut(i) {
                    *slot = i;
                }
                root_labels.push(ws.label(i));
                queue.push_back(i);
            }
        }
    }
    while let Some(u) = queue.pop_front() {
        let Some(edges) = ws.graph.edges.get(u) else {
            continue;
        };
        for &v in edges {
            if parent.get(v).copied() != Some(usize::MAX)
                || ws.graph.nodes.get(v).is_none_or(|node| node.is_test)
                || allow.contains(&v)
            {
                continue;
            }
            if let Some(slot) = parent.get_mut(v) {
                *slot = u;
            }
            queue.push_back(v);
        }
    }

    // Workspace type definitions and aliases, for telling
    // `self.demux.push(…)` (a method call on a workspace type) apart
    // from `self.buf.push(…)` (container growth), and keyed map lookups
    // apart from positional `Vec::get`.
    let mut types: BTreeMap<&str, &TypeItem> = BTreeMap::new();
    for file in &ws.files {
        for t in &file.parsed.types {
            if !t.is_test && !file.test_only {
                types.entry(&t.name).or_insert(t);
            }
        }
    }
    let aliases = ws.alias_map();

    let mut sites = Vec::new();
    let mut reachable_fns = 0usize;
    for i in 0..n {
        if parent.get(i).copied().unwrap_or(usize::MAX) == usize::MAX {
            continue;
        }
        reachable_fns += 1;
        let Some(body) = &ws.item(i).body else {
            continue;
        };
        let env = TypeEnv {
            ws,
            impl_type: ws.graph.nodes.get(i).and_then(|x| x.impl_type.as_deref()),
            types: &types,
            aliases: &aliases,
        };
        let witness = witness_path(ws, &parent, i);
        scan_block(body, &mut |e| {
            if let Some((kind, what)) = classify(e, &env) {
                sites.push(CostSite {
                    kind,
                    what,
                    node: i,
                    path: ws.path_of(i).to_string(),
                    line: e.line(),
                    witness: witness.clone(),
                });
            }
        });
    }
    sites.sort_by(|a, b| (&a.path, a.line, &a.what).cmp(&(&b.path, b.line, &b.what)));
    root_labels.sort_unstable();
    root_labels.dedup();
    Inventory {
        sites,
        root_labels,
        unmatched_roots,
        reachable_fns,
    }
}

/// Labels from the nearest root down to `node`, inclusive.
fn witness_path(ws: &Workspace, parent: &[usize], node: usize) -> Vec<String> {
    let mut chain = vec![node];
    let mut cur = node;
    // Roots are their own parent; a missing entry terminates the walk.
    while let Some(&p) = parent.get(cur) {
        if p == cur || p == usize::MAX || chain.len() > 64 {
            break;
        }
        cur = p;
        chain.push(cur);
    }
    chain.reverse();
    chain.into_iter().map(|i| ws.label(i)).collect()
}

/// Container types whose constructors allocate.
const HEAP_TYPES: &[&str] = &[
    "Vec", "VecDeque", "String", "Box", "BTreeMap", "BTreeSet", "HashMap", "HashSet", "Rc", "Arc",
];

/// Associated constructors that allocate (or may, on first growth).
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from", "default"];

/// Methods that produce a fresh owned heap value.
const OWNING_METHODS: &[&str] = &["collect", "to_vec", "to_owned", "to_string", "clone"];

/// Methods that may grow (reallocate) an existing container; only
/// flagged on field-rooted receivers, where the container outlives the
/// call and growth cost recurs per report.
const GROWING_METHODS: &[&str] = &["push", "push_back", "extend", "append"];

/// Keyed-lookup methods of the map/set containers.
const LOOKUP_METHODS: &[&str] = &[
    "get",
    "get_mut",
    "entry",
    "contains_key",
    "insert",
    "remove",
];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Adapters whose closure argument is an amortised slow path, not
/// per-report work.
fn is_cold_adapter(method: &str) -> bool {
    matches!(
        method,
        "or_insert_with" | "get_or_insert_with" | "unwrap_or_else" | "ok_or_else" | "map_err"
    )
}

/// Keyed containers whose `get`/`entry`/`insert` chase tree/hash
/// structure per call; `get` on a `Vec`/`VecDeque` field is positional
/// indexing, not a keyed lookup.
const KEYED_TYPES: &[&str] = &["BTreeMap", "BTreeSet", "HashMap", "HashSet"];

/// The type context of one scanned function, for receiver-type checks.
struct TypeEnv<'a> {
    ws: &'a Workspace,
    /// Self type of the enclosing `impl`, if any.
    impl_type: Option<&'a str>,
    /// Workspace `struct`/`enum` definitions by name.
    types: &'a BTreeMap<&'a str, &'a TypeItem>,
    /// Workspace `type` aliases, name → right-hand side.
    aliases: &'a std::collections::HashMap<&'a str, &'a str>,
}

impl TypeEnv<'_> {
    /// Alias-expanded declared type of a `self.<field>` receiver.
    fn field_ty(&self, recv: &Expr) -> Option<String> {
        let Expr::Field { base, name, .. } = recv else {
            return None;
        };
        let is_self =
            matches!(&**base, Expr::Path { segs, .. } if segs.len() == 1 && segs[0] == "self");
        if !is_self {
            return None;
        }
        let t = self.impl_type.and_then(|t| self.types.get(t))?;
        let field = t.fields.iter().find(|f| &f.name == name)?;
        Some(self.ws.expand_aliases(&field.ty, self.aliases))
    }

    /// The receiver is a field whose declared type is a workspace type
    /// and not a container — a `push` on it is a call-graph edge, not
    /// container growth.
    fn is_workspace_typed_field(&self, recv: &Expr) -> bool {
        let Some(ty) = self.field_ty(recv) else {
            return false;
        };
        let holds_container = ty.split_whitespace().any(|w| HEAP_TYPES.contains(&w));
        let names_workspace_type = ty.split_whitespace().any(|w| self.types.contains_key(w));
        names_workspace_type && !holds_container
    }

    /// The receiver is a field declared as a positional container
    /// (`Vec`, `VecDeque`) with no keyed container in its type — its
    /// `get`/`insert`/`remove` are index operations, not map lookups.
    fn is_positional_field(&self, recv: &Expr) -> bool {
        let Some(ty) = self.field_ty(recv) else {
            return false;
        };
        let positional = ty.split_whitespace().any(|w| w == "Vec" || w == "VecDeque");
        let keyed = ty.split_whitespace().any(|w| KEYED_TYPES.contains(&w));
        positional && !keyed
    }
}

/// Classifies one expression as a cost site.
fn classify(e: &Expr, env: &TypeEnv<'_>) -> Option<(CostKind, String)> {
    match e {
        Expr::Call { path, .. } if path.len() >= 2 => {
            if let [.., ty, ctor] = path.as_slice() {
                if HEAP_TYPES.contains(&ty.as_str()) && ALLOC_CTORS.contains(&ctor.as_str()) {
                    return Some((CostKind::Alloc, format!("{ty}::{ctor}")));
                }
            }
            None
        }
        Expr::MethodCall { recv, method, .. } => {
            if OWNING_METHODS.contains(&method.as_str()) {
                return Some((CostKind::Alloc, format!(".{method}()")));
            }
            if GROWING_METHODS.contains(&method.as_str())
                && is_field_rooted(recv)
                && !env.is_workspace_typed_field(recv)
            {
                return Some((CostKind::Alloc, format!(".{method}()")));
            }
            if LOOKUP_METHODS.contains(&method.as_str()) && !env.is_positional_field(recv) {
                return Some((CostKind::MapLookup, format!(".{method}()")));
            }
            None
        }
        Expr::Macro { name, .. } => {
            let last = name.rsplit("::").next().unwrap_or(name);
            if ALLOC_MACROS.contains(&last) {
                return Some((CostKind::Alloc, format!("{last}!")));
            }
            None
        }
        _ => None,
    }
}

/// Whether a receiver chain is rooted in a field access (`self.tags`,
/// `state.ring[0]`) — a container that outlives the call.
fn is_field_rooted(e: &Expr) -> bool {
    match e {
        Expr::Field { .. } | Expr::Index { .. } => true,
        Expr::Unary { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => {
            is_field_rooted(expr)
        }
        Expr::MethodCall { recv, .. } => is_field_rooted(recv),
        _ => false,
    }
}

/// Depth-first walk that skips closures passed to cold adapters.
fn scan_expr(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => {}
        Expr::Call { args, .. } | Expr::Macro { args, .. } | Expr::Group { items: args, .. } => {
            for a in args {
                scan_expr(a, f);
            }
        }
        Expr::MethodCall {
            recv, method, args, ..
        } => {
            scan_expr(recv, f);
            let cold = is_cold_adapter(method);
            for a in args {
                if cold && matches!(a, Expr::Closure { .. }) {
                    continue;
                }
                scan_expr(a, f);
            }
        }
        Expr::Field { base, .. } => scan_expr(base, f),
        Expr::Index { base, index, .. } => {
            scan_expr(base, f);
            scan_expr(index, f);
        }
        Expr::Unary { expr, .. }
        | Expr::Cast { expr, .. }
        | Expr::Try { expr, .. }
        | Expr::Closure { body: expr, .. } => scan_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } => {
            scan_expr(lhs, f);
            scan_expr(rhs, f);
        }
        Expr::Assign { target, value, .. } => {
            scan_expr(target, f);
            scan_expr(value, f);
        }
        Expr::BlockExpr { block, .. } => scan_block(block, f),
        Expr::If {
            cond,
            then_block,
            else_branch,
            ..
        } => {
            scan_expr(cond, f);
            scan_block(then_block, f);
            if let Some(e) = else_branch {
                scan_expr(e, f);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            scan_expr(scrutinee, f);
            for a in arms {
                scan_expr(a, f);
            }
        }
        Expr::Loop { cond, body, .. } => {
            if let Some(c) = cond {
                scan_expr(c, f);
            }
            scan_block(body, f);
        }
        Expr::StructLit { fields, .. } => {
            for (_, v) in fields {
                scan_expr(v, f);
            }
        }
    }
}

/// Walks every expression of a block through [`scan_expr`].
fn scan_block(block: &Block, f: &mut dyn FnMut(&Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let {
                init: Some(init), ..
            } => scan_expr(init, f),
            Stmt::Let { .. } => {}
            Stmt::Expr { expr, .. } => scan_expr(expr, f),
            Stmt::Return { value: Some(v), .. } => scan_expr(v, f),
            Stmt::Return { .. } => {}
        }
    }
}

/// Renders the inventory as the `tagbreathe-hotpath-v1` JSON report.
#[must_use]
pub fn render_json(ws: &Workspace, inv: &Inventory) -> String {
    let allocs = inv
        .sites
        .iter()
        .filter(|s| s.kind == CostKind::Alloc)
        .count();
    let lookups = inv.sites.len() - allocs;
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"tagbreathe-hotpath-v1\",\n");
    let _ = writeln!(out, "  \"roots\": {},", string_array(&inv.root_labels));
    let _ = writeln!(
        out,
        "  \"unmatched_roots\": {},",
        string_array(&inv.unmatched_roots)
    );
    let _ = writeln!(out, "  \"reachable_fns\": {},", inv.reachable_fns);
    let _ = writeln!(out, "  \"site_count\": {},", inv.sites.len());
    let _ = writeln!(out, "  \"alloc_count\": {allocs},");
    let _ = writeln!(out, "  \"map_lookup_count\": {lookups},");
    out.push_str("  \"sites\": [\n");
    for (i, s) in inv.sites.iter().enumerate() {
        let sep = if i + 1 < inv.sites.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"kind\": {}, \"what\": {}, \"fn\": {}, \"path\": {}, \"line\": {}, \
             \"witness\": {}}}{sep}",
            json_string(s.kind.tag()),
            json_string(&s.what),
            json_string(&ws.label(s.node)),
            json_string(&s.path),
            s.line,
            string_array(&s.witness),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders a JSON array of strings.
fn string_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| json_string(s)).collect();
    format!("[{}]", quoted.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, HotPathConfig};
    use crate::source::SourceFile;

    fn ws_with(files: &[(&str, &str)], roots: &[&str], allow: &[&str]) -> Workspace {
        let sources: Vec<SourceFile> = files.iter().map(|(p, t)| SourceFile::parse(p, t)).collect();
        let config = Config {
            lib_crates: vec!["dsp".to_string(), "tagbreathe".to_string()],
            hotpath: HotPathConfig {
                roots: roots.iter().map(|s| s.to_string()).collect(),
                allow: allow.iter().map(|s| s.to_string()).collect(),
            },
            ..Config::default()
        };
        Workspace::build(&sources, &config)
    }

    #[test]
    fn transitive_alloc_has_witness_path() {
        let w = ws_with(
            &[(
                "crates/tagbreathe/src/a.rs",
                "pub fn ingest(x: f64) { step(x); }\n\
                 fn step(x: f64) { finish(x); }\n\
                 fn finish(_x: f64) { let mut v = Vec::new(); v.push(1.0); }\n",
            )],
            &["ingest"],
            &[],
        );
        let inv = inventory(&w);
        assert_eq!(inv.reachable_fns, 3);
        let alloc: Vec<&CostSite> = inv.sites.iter().filter(|s| s.what == "Vec::new").collect();
        assert_eq!(alloc.len(), 1, "{:?}", inv.sites);
        assert_eq!(alloc[0].witness, vec!["ingest", "step", "finish"]);
    }

    #[test]
    fn map_lookups_and_macros_are_classified() {
        let w = ws_with(
            &[(
                "crates/tagbreathe/src/a.rs",
                "pub fn ingest(m: &mut std::collections::BTreeMap<u8, f64>) {\n\
                   m.entry(1).or_insert(0.0);\n\
                   let _ = m.get(&1);\n\
                   let _s = format!(\"x\");\n\
                 }\n",
            )],
            &["ingest"],
            &[],
        );
        let inv = inventory(&w);
        let kinds: Vec<(&str, &str)> = inv
            .sites
            .iter()
            .map(|s| (s.kind.tag(), s.what.as_str()))
            .collect();
        assert!(kinds.contains(&("map-lookup", ".entry()")), "{kinds:?}");
        assert!(kinds.contains(&("map-lookup", ".get()")), "{kinds:?}");
        assert!(kinds.contains(&("alloc", "format!")), "{kinds:?}");
    }

    #[test]
    fn cold_closures_and_allow_listed_fns_are_skipped() {
        let w = ws_with(
            &[(
                "crates/tagbreathe/src/a.rs",
                "pub fn ingest(m: &mut std::collections::BTreeMap<u8, Vec<f64>>) {\n\
                   m.entry(1).or_insert_with(|| Vec::with_capacity(8));\n\
                   snapshot();\n\
                 }\n\
                 fn snapshot() { let _v: Vec<f64> = Vec::new(); }\n",
            )],
            &["ingest"],
            &["snapshot"],
        );
        let inv = inventory(&w);
        assert!(
            !inv.sites.iter().any(|s| s.what == "Vec::with_capacity"),
            "cold closure body flagged: {:?}",
            inv.sites
        );
        assert!(
            !inv.sites.iter().any(|s| s.what == "Vec::new"),
            "allow-listed fn scanned: {:?}",
            inv.sites
        );
        // The entry lookup itself is still hot.
        assert!(inv.sites.iter().any(|s| s.what == ".entry()"));
    }

    #[test]
    fn push_on_workspace_typed_field_is_a_call_not_growth() {
        let w = ws_with(
            &[(
                "crates/tagbreathe/src/a.rs",
                "pub struct Demux;\n\
                 impl Demux { pub fn push(&mut self, _x: f64) {} }\n\
                 pub struct Monitor { demux: Demux, buf: Vec<f64> }\n\
                 impl Monitor {\n\
                   pub fn ingest(&mut self, x: f64) { self.demux.push(x); self.buf.push(x); }\n\
                 }\n",
            )],
            &["Monitor::ingest"],
            &[],
        );
        let inv = inventory(&w);
        let grows: Vec<&CostSite> = inv.sites.iter().filter(|s| s.what == ".push()").collect();
        assert_eq!(grows.len(), 1, "{:?}", inv.sites);
        assert_eq!(grows[0].line, 5, "{:?}", grows[0]);
    }

    #[test]
    fn positional_get_behind_alias_is_not_a_map_lookup() {
        let w = ws_with(
            &[(
                "crates/tagbreathe/src/a.rs",
                "type Slab = Vec<(u32, f64)>;\n\
                 pub struct S { slots: Slab, index: std::collections::BTreeMap<u32, f64> }\n\
                 impl S {\n\
                   pub fn ingest(&mut self, k: u32) {\n\
                     let _a = self.slots.get(0);\n\
                     let _b = self.index.get(&k);\n\
                   }\n\
                 }\n",
            )],
            &["S::ingest"],
            &[],
        );
        let inv = inventory(&w);
        let lookups: Vec<u32> = inv
            .sites
            .iter()
            .filter(|s| s.what == ".get()")
            .map(|s| s.line)
            .collect();
        assert_eq!(lookups, vec![6], "{:?}", inv.sites);
    }

    #[test]
    fn unmatched_roots_are_reported() {
        let w = ws_with(
            &[("crates/tagbreathe/src/a.rs", "pub fn ingest() {}\n")],
            &["ingest", "Nope::missing"],
            &[],
        );
        let inv = inventory(&w);
        assert_eq!(inv.unmatched_roots, vec!["Nope::missing"]);
    }

    #[test]
    fn json_report_is_valid() {
        let w = ws_with(
            &[(
                "crates/tagbreathe/src/a.rs",
                "pub fn ingest() { let _ = \"x\".to_string(); }\n",
            )],
            &["ingest"],
            &[],
        );
        let inv = inventory(&w);
        let text = render_json(&w, &inv);
        assert!(
            tagbreathe_obs::json::validate(&text).is_ok(),
            "invalid JSON:\n{text}"
        );
        assert!(text.contains("\"schema\": \"tagbreathe-hotpath-v1\""));
        assert!(text.contains("\"site_count\": 1"));
    }
}

//! A hand-rolled Rust lexer.
//!
//! Produces a flat token stream with line numbers — enough structure for
//! token-pattern lint rules without building an AST. The tricky parts of
//! Rust's lexical grammar that would otherwise cause false positives are
//! handled faithfully:
//!
//! * line (`//`) and nested block (`/* /* */ */`) comments, kept as
//!   tokens so comment-scanning rules (TODO tracking) can see them;
//! * string literals with escapes, raw strings `r#"…"#` with arbitrary
//!   hash fences, byte and byte-raw strings;
//! * char literals vs. lifetimes (`'a'` vs. `'a`), including escaped
//!   chars like `'\''` and `'\u{1F600}'`;
//! * numeric literals with underscores, base prefixes, exponents and
//!   type suffixes, distinguishing floats from ints (and from ranges:
//!   `0..10` is two int-adjacent dots, not a float).

/// One lexical token with the 1-indexed line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

/// Token classification. Identifiers and keywords are not distinguished —
/// rules match on the text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword, e.g. `fn`, `unwrap`, `f64`.
    Ident(String),
    /// Lifetime, without the leading quote, e.g. `a` for `'a`.
    Lifetime(String),
    /// Integer literal (any base), original text preserved.
    Int(String),
    /// Float literal, original text preserved.
    Float(String),
    /// String / raw string / byte-string literal (contents dropped).
    Str,
    /// Char or byte literal (contents dropped).
    Char,
    /// Punctuation — single char or one of the recognised two-char
    /// operators (e.g. `==`, `->`, `::`).
    Punct(&'static str),
    /// A comment, with its full text (including delimiters).
    Comment(String),
}

impl TokenKind {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, TokenKind::Punct(q) if *q == p)
    }

    /// Whether this token is the given identifier/keyword.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s == name)
    }
}

/// Two-character operators recognised as single punctuation tokens.
/// Longest-match first is unnecessary because all entries are length 2.
const TWO_CHAR_OPS: &[&str] = &[
    "==", "!=", "<=", ">=", "->", "=>", "::", "..", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "^=", "&=", "|=",
];

/// Lexes `source` into tokens. Comments are included as [`TokenKind::Comment`].
///
/// The lexer is total: malformed input (e.g. an unterminated string at
/// EOF) never panics — it consumes to the end of input and stops.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start_line = self.line;
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => {
                    let text = self.take_line_comment();
                    self.push(TokenKind::Comment(text), start_line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    let text = self.take_block_comment();
                    self.push(TokenKind::Comment(text), start_line);
                }
                b'r' | b'b' if self.raw_string_ahead() => {
                    self.take_raw_string();
                    self.push(TokenKind::Str, start_line);
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.pos += 1;
                    self.take_quoted_string();
                    self.push(TokenKind::Str, start_line);
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1;
                    self.take_char_literal();
                    self.push(TokenKind::Char, start_line);
                }
                b'"' => {
                    self.take_quoted_string();
                    self.push(TokenKind::Str, start_line);
                }
                b'\'' => {
                    if self.lifetime_ahead() {
                        let name = self.take_lifetime();
                        self.push(TokenKind::Lifetime(name), start_line);
                    } else {
                        self.take_char_literal();
                        self.push(TokenKind::Char, start_line);
                    }
                }
                _ if c.is_ascii_digit() => {
                    let kind = self.take_number();
                    self.push(kind, start_line);
                }
                _ if c.is_ascii_alphabetic() || c == b'_' => {
                    let name = self.take_ident();
                    self.push(TokenKind::Ident(name), start_line);
                }
                _ => {
                    let op = self.take_punct();
                    self.push(TokenKind::Punct(op), start_line);
                }
            }
        }
        self.tokens
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.tokens.push(Token { kind, line });
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump_tracking_newlines(&mut self) -> u8 {
        let c = self.src[self.pos];
        if c == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
        c
    }

    fn take_line_comment(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn take_block_comment(&mut self) -> String {
        let start = self.pos;
        self.pos += 2; // consume "/*"
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump_tracking_newlines();
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Is a raw-string opener (`r"`, `r#`, `br"`, `br#`) at the cursor?
    fn raw_string_ahead(&self) -> bool {
        let mut i = self.pos;
        if self.src[i] == b'b' {
            i += 1;
        }
        if self.src.get(i) != Some(&b'r') {
            return false;
        }
        i += 1;
        while self.src.get(i) == Some(&b'#') {
            i += 1;
        }
        self.src.get(i) == Some(&b'"')
    }

    fn take_raw_string(&mut self) {
        if self.src[self.pos] == b'b' {
            self.pos += 1;
        }
        self.pos += 1; // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' {
                // Need `hashes` '#' after the quote to close.
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.bump_tracking_newlines();
        }
    }

    fn take_quoted_string(&mut self) {
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => {
                    self.pos += 1; // skip the backslash …
                    if self.pos < self.src.len() {
                        self.bump_tracking_newlines(); // … and the escaped char
                    }
                }
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => {
                    self.bump_tracking_newlines();
                }
            }
        }
    }

    /// After a `'`: lifetime if followed by ident-start NOT closed by a
    /// quote (i.e. `'a` but not `'a'`).
    fn lifetime_ahead(&self) -> bool {
        match self.peek(1) {
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                // Scan the ident; a closing quote right after means char.
                let mut i = self.pos + 2;
                while self
                    .src
                    .get(i)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
                {
                    i += 1;
                }
                self.src.get(i) != Some(&b'\'')
            }
            _ => false,
        }
    }

    fn take_lifetime(&mut self) -> String {
        self.pos += 1; // quote
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn take_char_literal(&mut self) {
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.src.len() {
                        self.pos += 1;
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    return;
                }
                _ => {
                    self.bump_tracking_newlines();
                }
            }
        }
    }

    fn take_number(&mut self) -> TokenKind {
        let start = self.pos;
        let mut is_float = false;
        // Base prefixes never contain '.' or exponents.
        if self.src[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'))
        {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.pos += 1;
            }
            return TokenKind::Int(self.text_from(start));
        }
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_digit() || c == b'_')
        {
            self.pos += 1;
        }
        // Fractional part: a '.' belongs to the number unless it begins a
        // range (`0..`) or a method call / field access (`1.max(2)`).
        if self.peek(0) == Some(b'.') {
            let part_of_number = match self.peek(1) {
                Some(b'.') => false,
                Some(c) if c.is_ascii_alphabetic() || c == b'_' => false,
                _ => true,
            };
            if part_of_number {
                is_float = true;
                self.pos += 1;
                while self
                    .peek(0)
                    .is_some_and(|c| c.is_ascii_digit() || c == b'_')
                {
                    self.pos += 1;
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let mut i = 1;
            if matches!(self.peek(1), Some(b'+' | b'-')) {
                i = 2;
            }
            if self.peek(i).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.pos += i;
                while self
                    .peek(0)
                    .is_some_and(|c| c.is_ascii_digit() || c == b'_')
                {
                    self.pos += 1;
                }
            }
        }
        // Type suffix (f64, u32, usize, …).
        let suffix_start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        let suffix = self.text_from(suffix_start);
        if suffix.starts_with('f') {
            is_float = true;
        }
        if is_float {
            TokenKind::Float(self.text_from(start))
        } else {
            TokenKind::Int(self.text_from(start))
        }
    }

    fn take_ident(&mut self) -> String {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.pos += 1;
        }
        self.text_from(start)
    }

    fn take_punct(&mut self) -> &'static str {
        if self.pos + 1 < self.src.len() {
            let pair = [self.src[self.pos], self.src[self.pos + 1]];
            for op in TWO_CHAR_OPS {
                if op.as_bytes() == pair {
                    self.pos += 2;
                    return op;
                }
            }
        }
        let c = self.src[self.pos];
        self.pos += 1;
        single_char_punct(c)
    }

    fn text_from(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

/// Interns single-char punctuation as static strings so `Punct` can hold
/// `&'static str` for both one- and two-char operators.
fn single_char_punct(c: u8) -> &'static str {
    match c {
        b'(' => "(",
        b')' => ")",
        b'[' => "[",
        b']' => "]",
        b'{' => "{",
        b'}' => "}",
        b'<' => "<",
        b'>' => ">",
        b'.' => ".",
        b',' => ",",
        b';' => ";",
        b':' => ":",
        b'#' => "#",
        b'!' => "!",
        b'?' => "?",
        b'=' => "=",
        b'+' => "+",
        b'-' => "-",
        b'*' => "*",
        b'/' => "/",
        b'%' => "%",
        b'&' => "&",
        b'|' => "|",
        b'^' => "^",
        b'~' => "~",
        b'@' => "@",
        b'$' => "$",
        _ => "<?>",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let k = kinds("fn f(x: f64) -> f64 { x == 0.0 }");
        assert!(k.contains(&TokenKind::Ident("fn".into())));
        assert!(k.contains(&TokenKind::Punct("->")));
        assert!(k.contains(&TokenKind::Punct("==")));
        assert!(k.contains(&TokenKind::Float("0.0".into())));
    }

    #[test]
    fn string_contents_are_not_tokens() {
        let k = kinds(r#"let s = "x.unwrap() == 0.0 // TODO";"#);
        assert!(k.contains(&TokenKind::Str));
        assert!(!k.iter().any(|t| t.is_ident("unwrap")));
        assert!(!k.iter().any(|t| matches!(t, TokenKind::Float(_))));
        assert!(!k.iter().any(|t| matches!(t, TokenKind::Comment(_))));
    }

    #[test]
    fn raw_strings_with_fences() {
        let k = kinds(r####"let s = r#"contains "quotes" and unwrap()"#; x"####);
        assert!(k.contains(&TokenKind::Str));
        assert!(!k.iter().any(|t| t.is_ident("unwrap")));
        assert!(k.iter().any(|t| t.is_ident("x")), "lexing continued");
    }

    #[test]
    fn char_vs_lifetime() {
        let k = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(
            k.iter()
                .filter(|t| matches!(t, TokenKind::Lifetime(l) if l == "a"))
                .count(),
            2
        );
        assert_eq!(k.iter().filter(|t| **t == TokenKind::Char).count(), 2);
    }

    #[test]
    fn comments_are_kept_with_text() {
        let k = kinds("// TODO: fix\n/* FIXME /* nested */ done */ let x = 1;");
        let comments: Vec<_> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::Comment(c) => Some(c.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].contains("TODO"));
        assert!(comments[1].contains("nested"));
        assert!(k.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn numbers_ints_floats_ranges() {
        let k = kinds("let a = 0..10; let b = 1.5e-3; let c = 0xFF_u32; let d = 2f64;");
        assert!(k.contains(&TokenKind::Int("0".into())));
        assert!(k.contains(&TokenKind::Punct("..")));
        assert!(k.contains(&TokenKind::Int("10".into())));
        assert!(k.contains(&TokenKind::Float("1.5e-3".into())));
        assert!(k.contains(&TokenKind::Int("0xFF_u32".into())));
        assert!(k.contains(&TokenKind::Float("2f64".into())));
    }

    #[test]
    fn method_call_on_int_is_not_a_float() {
        let k = kinds("let m = 1.max(2);");
        assert!(k.contains(&TokenKind::Int("1".into())));
        assert!(k.iter().any(|t| t.is_ident("max")));
        assert!(!k.iter().any(|t| matches!(t, TokenKind::Float(_))));
    }

    #[test]
    fn line_numbers_track_all_literal_forms() {
        let src = "let a = 1;\nlet s = \"two\nlines\";\nlet b = 2;\n";
        let toks = lex(src);
        let b_line = toks.iter().find(|t| t.kind.is_ident("b")).map(|t| t.line);
        assert_eq!(b_line, Some(4));
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let k = kinds("let s = \"never closed");
        assert!(k.contains(&TokenKind::Str));
    }
}

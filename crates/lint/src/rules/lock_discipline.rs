//! `lock-discipline` — deadlock-prone use of `std::sync` guards.
//!
//! Three patterns are flagged, in non-test lib-crate code:
//!
//! 1. **double-lock**: re-acquiring (`.lock()` / `.read()` / `.write()`)
//!    a lock whose guard is still live on the same path — with `std::sync`
//!    primitives that self-deadlocks (two `.read()`s are allowed);
//! 2. **held-across-lock**: calling a function that (transitively)
//!    acquires some lock while a guard is held — the classic ordering-
//!    deadlock setup;
//! 3. **order violation**: with a lock order declared in `lint.toml`
//!    (`[locks] order = "coarse, …, fine"`, matched against the last
//!    segment of each lock's access path), directly acquiring an
//!    earlier-ranked lock while holding a later-ranked one. Locks not
//!    named in the order are unconstrained, so adopting an order adds
//!    no noise for unrelated guards.
//!
//! A lock is identified by the *access path* of the receiver
//! (`self.ring`, `state`, …); receivers that are call results
//! (`io::stdout().lock()`) are exempt because the rule cannot tell
//! which lock object they name. Guards become live when an acquisition
//! is `let`-bound, die at end of their block or at `drop(guard)`.
//! "Functions that acquire a lock" is the transitive closure of direct
//! acquirers over the workspace call graph, matched by callee name —
//! unresolved calls are leaves, so the rule under-approximates.

use crate::callgraph::Workspace;
use crate::parser::{Block, Expr, Stmt};
use crate::report::{Severity, Violation};
use crate::rules::SemanticRule;
use std::collections::BTreeSet;

/// See the module docs.
pub struct LockDiscipline;

impl SemanticRule for LockDiscipline {
    fn id(&self) -> &'static str {
        "lock-discipline"
    }

    fn description(&self) -> &'static str {
        "guard held across another lock acquisition, or double-lock on one path"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let n = ws.graph.nodes.len();
        // Functions that directly acquire a lock, then the transitive
        // closure over reverse edges (callers of acquirers also acquire).
        let mut locking: Vec<bool> = (0..n).map(|i| directly_locks(ws, i)).collect();
        let rev = ws.graph.reverse_edges();
        let mut queue: Vec<usize> = (0..n).filter(|&i| locking[i]).collect();
        while let Some(v) = queue.pop() {
            for &caller in &rev[v] {
                if !locking[caller] {
                    locking[caller] = true;
                    queue.push(caller);
                }
            }
        }
        let locking_names: BTreeSet<&str> = (0..n)
            .filter(|&i| locking[i])
            .map(|i| ws.graph.nodes[i].name.as_str())
            .collect();

        let mut violations = Vec::new();
        for i in 0..n {
            let node = &ws.graph.nodes[i];
            if node.is_test || !ws.in_lib_crate(i) {
                continue;
            }
            let item = ws.item(i);
            let Some(body) = &item.body else { continue };
            let mut checker = FnChecker {
                locking_names: &locking_names,
                lock_order: &ws.lock_order,
                path: ws.path_of(i),
                out: &mut violations,
            };
            let mut guards = Vec::new();
            checker.check_block(body, &mut guards);
        }
        violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        violations
    }
}

/// A live `let`-bound guard.
struct Guard {
    binding: Option<String>,
    key: String,
    method: String,
    line: u32,
}

struct FnChecker<'a> {
    locking_names: &'a BTreeSet<&'a str>,
    lock_order: &'a [String],
    path: &'a str,
    out: &'a mut Vec<Violation>,
}

impl FnChecker<'_> {
    fn emit(&mut self, line: u32, message: String) {
        self.out.push(Violation {
            rule: "lock-discipline",
            path: self.path.to_string(),
            line,
            message,
        });
    }

    fn check_block(&mut self, block: &Block, guards: &mut Vec<Guard>) {
        let depth = guards.len();
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let { name, init, .. } => {
                    if let Some(init) = init {
                        if let Some((key, method, line)) = self.check_expr(init, guards) {
                            guards.push(Guard {
                                binding: name.clone(),
                                key,
                                method,
                                line,
                            });
                        }
                    }
                }
                Stmt::Expr { expr, .. } => {
                    if let Some(dropped) = dropped_binding(expr) {
                        guards.retain(|g| g.binding.as_deref() != Some(dropped));
                        continue;
                    }
                    // Un-bound acquisitions are temporaries: the guard dies
                    // at the end of this statement, so it is not tracked.
                    self.check_expr(expr, guards);
                }
                Stmt::Return { value, .. } => {
                    if let Some(v) = value {
                        self.check_expr(v, guards);
                    }
                }
            }
        }
        guards.truncate(depth);
    }

    /// Checks one expression tree; returns the acquisition the whole
    /// expression evaluates to, if any (so `m.lock().unwrap()` threads
    /// the guard through the `unwrap`).
    fn check_expr(&mut self, e: &Expr, guards: &mut Vec<Guard>) -> Option<(String, String, u32)> {
        match e {
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                let inner = self.check_expr(recv, guards);
                for a in args {
                    self.check_expr(a, guards);
                }
                if is_lock_method(method) && args.is_empty() {
                    if let Some(key) = key_of(recv) {
                        for g in guards.iter() {
                            if g.key == key && !(g.method == "read" && method == "read") {
                                let held = g.line;
                                self.emit(
                                    *line,
                                    format!(
                                        "guard on `{key}` already held since line {held}; \
                                         a second `.{method}()` here would deadlock"
                                    ),
                                );
                            }
                        }
                        self.check_order(&key, *line, guards);
                        return Some((key, method.clone(), *line));
                    }
                }
                if guard_passthrough(method) && inner.is_some() {
                    return inner;
                }
                // A call *through* a live guard (`ring.buf.clear()` where
                // `ring` is the guard) operates on the locked data — it
                // cannot re-acquire the lock that guard already holds.
                let through_guard = key_of(recv)
                    .and_then(|k| k.split('.').next().map(str::to_string))
                    .is_some_and(|root| guards.iter().any(|g| g.binding.as_deref() == Some(&root)));
                if !through_guard && self.locking_names.contains(method.as_str()) {
                    self.flag_locking_call(method, *line, guards);
                }
                None
            }
            Expr::Call { path, args, line } => {
                for a in args {
                    self.check_expr(a, guards);
                }
                if let Some(name) = path.last() {
                    if self.locking_names.contains(name.as_str()) {
                        self.flag_locking_call(name, *line, guards);
                    }
                }
                None
            }
            Expr::Unary { expr, .. } | Expr::Try { expr, .. } => self.check_expr(expr, guards),
            Expr::Cast { expr, .. } => {
                self.check_expr(expr, guards);
                None
            }
            Expr::Field { base, .. } | Expr::Index { base, .. } => {
                self.check_expr(base, guards);
                None
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.check_expr(lhs, guards);
                self.check_expr(rhs, guards);
                None
            }
            Expr::Assign { target, value, .. } => {
                self.check_expr(target, guards);
                self.check_expr(value, guards);
                None
            }
            Expr::Macro { args, .. } | Expr::Group { items: args, .. } => {
                for a in args {
                    self.check_expr(a, guards);
                }
                None
            }
            // Closures usually run before the enclosing statement ends
            // (iterator adapters, `unwrap_or_else`), so held guards stay
            // in scope inside them.
            Expr::Closure { body, .. } => self.check_expr(body, guards),
            Expr::BlockExpr { block, .. } => {
                self.check_block(block, guards);
                None
            }
            Expr::If {
                cond,
                then_block,
                else_branch,
                ..
            } => {
                self.check_expr(cond, guards);
                self.check_block(then_block, guards);
                if let Some(e) = else_branch {
                    self.check_expr(e, guards);
                }
                None
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.check_expr(scrutinee, guards);
                for a in arms {
                    self.check_expr(a, guards);
                }
                None
            }
            Expr::Loop { cond, body, .. } => {
                if let Some(c) = cond {
                    self.check_expr(c, guards);
                }
                self.check_block(body, guards);
                None
            }
            Expr::StructLit { fields, .. } => {
                for (_, v) in fields {
                    self.check_expr(v, guards);
                }
                None
            }
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => None,
        }
    }

    /// Pattern 3: acquiring `key` must respect the declared lock order
    /// relative to every held guard. Unranked locks are unconstrained.
    fn check_order(&mut self, key: &str, line: u32, guards: &[Guard]) {
        let Some(new_rank) = rank_of(self.lock_order, key) else {
            return;
        };
        for g in guards.iter() {
            if g.key == key {
                continue;
            }
            let Some(held_rank) = rank_of(self.lock_order, &g.key) else {
                continue;
            };
            if new_rank < held_rank {
                let (held_key, held_line) = (&g.key, g.line);
                self.emit(
                    line,
                    format!(
                        "acquiring `{key}` while `{held_key}` (line {held_line}) is held \
                         violates the declared lock order ({})",
                        self.lock_order.join(" before ")
                    ),
                );
            }
        }
    }

    fn flag_locking_call(&mut self, callee: &str, line: u32, guards: &[Guard]) {
        if let Some(g) = guards.last() {
            let (key, held) = (&g.key, g.line);
            self.emit(
                line,
                format!(
                    "calls `{callee}` (which acquires a lock) while the guard on \
                     `{key}` (line {held}) is held"
                ),
            );
        }
    }
}

/// Does this function's body directly acquire a `std::sync`-style lock?
fn directly_locks(ws: &Workspace, node: usize) -> bool {
    let Some(body) = &ws.item(node).body else {
        return false;
    };
    let mut found = false;
    body.visit(&mut |e| {
        if let Expr::MethodCall {
            recv, method, args, ..
        } = e
        {
            if is_lock_method(method) && args.is_empty() && key_of(recv).is_some() {
                found = true;
            }
        }
    });
    found
}

fn is_lock_method(method: &str) -> bool {
    method == "lock" || method == "read" || method == "write"
}

/// `unwrap`-family adapters that return the guard they were called on.
fn guard_passthrough(method: &str) -> bool {
    matches!(method, "unwrap" | "expect" | "unwrap_or_else")
}

/// Position of a lock key in the declared order, matching the last
/// segment of the access path (`self.ring` matches a declared `ring`).
fn rank_of(order: &[String], key: &str) -> Option<usize> {
    let last = key.rsplit('.').next().unwrap_or(key);
    order.iter().position(|o| o == last)
}

/// Stable key for a lock access path: `self.ring`, `state`, `m`. Call
/// results and indexed elements have no stable key (→ exempt).
fn key_of(e: &Expr) -> Option<String> {
    match e {
        Expr::Path { segs, .. } => Some(segs.join("::")),
        Expr::Field { base, name, .. } => Some(format!("{}.{name}", key_of(base)?)),
        Expr::Unary { expr, .. } | Expr::Try { expr, .. } => key_of(expr),
        _ => None,
    }
}

/// The binding released by a `drop(x)` / `mem::drop(x)` statement.
fn dropped_binding(e: &Expr) -> Option<&str> {
    if let Expr::Call { path, args, .. } = e {
        if path.last().map(String::as_str) == Some("drop") && args.len() == 1 {
            if let Expr::Path { segs, .. } = &args[0] {
                if segs.len() == 1 {
                    return Some(&segs[0]);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::source::SourceFile;

    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        run_ordered(files, &[])
    }

    fn run_ordered(files: &[(&str, &str)], order: &[&str]) -> Vec<Violation> {
        let sources: Vec<SourceFile> = files.iter().map(|(p, t)| SourceFile::parse(p, t)).collect();
        let config = Config {
            lib_crates: vec!["dsp".to_string(), "obs".to_string()],
            lock_order: order.iter().map(|s| s.to_string()).collect(),
            ..Config::default()
        };
        let ws = Workspace::build(&sources, &config);
        LockDiscipline.check(&ws)
    }

    #[test]
    fn double_lock_on_same_path_is_flagged() {
        let v = run(&[(
            "crates/obs/src/a.rs",
            "pub fn f(m: &std::sync::Mutex<i32>) {\n  let a = m.lock().unwrap();\n  let b = m.lock().unwrap();\n  let _ = (a, b);\n}\n",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("already held since line 2"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn two_reads_are_allowed_but_read_then_write_is_not() {
        let ok = run(&[(
            "crates/obs/src/a.rs",
            "pub fn f(rw: &std::sync::RwLock<i32>) {\n  let a = rw.read().unwrap();\n  let b = rw.read().unwrap();\n  let _ = (a, b);\n}\n",
        )]);
        assert!(ok.is_empty(), "{ok:?}");
        let bad = run(&[(
            "crates/obs/src/a.rs",
            "pub fn f(rw: &std::sync::RwLock<i32>) {\n  let a = rw.read().unwrap();\n  let b = rw.write().unwrap();\n  let _ = (a, b);\n}\n",
        )]);
        assert_eq!(bad.len(), 1, "{bad:?}");
    }

    #[test]
    fn drop_releases_the_guard() {
        let v = run(&[(
            "crates/obs/src/a.rs",
            "pub fn f(m: &std::sync::Mutex<i32>) {\n  let a = m.lock().unwrap();\n  drop(a);\n  let b = m.lock().unwrap();\n  let _ = b;\n}\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn block_scope_releases_the_guard() {
        let v = run(&[(
            "crates/obs/src/a.rs",
            "pub fn f(m: &std::sync::Mutex<i32>) {\n  {\n    let a = m.lock().unwrap();\n    let _ = a;\n  }\n  let b = m.lock().unwrap();\n  let _ = b;\n}\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn call_into_locking_fn_while_guard_held_is_flagged() {
        let v = run(&[(
            "crates/obs/src/a.rs",
            "pub struct S { m: std::sync::Mutex<i32>, n: std::sync::Mutex<i32> }\n\
             impl S {\n\
               fn other(&self) { let _g = self.n.lock().unwrap(); }\n\
               pub fn bad(&self) {\n    let g = self.m.lock().unwrap();\n    self.other();\n    let _ = g;\n  }\n\
             }\n",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("calls `other`"), "{}", v[0].message);
        assert!(v[0].message.contains("`self.m`"), "{}", v[0].message);
    }

    #[test]
    fn call_result_receivers_are_exempt() {
        let v = run(&[(
            "crates/obs/src/a.rs",
            "pub fn f() {\n  let out = std::io::stdout().lock();\n  let _ = out;\n}\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn declared_order_violation_is_flagged() {
        let src = "pub struct S { registry: std::sync::Mutex<i32>, ring: std::sync::Mutex<i32> }\n\
             impl S {\n\
               pub fn bad(&self) {\n    let g = self.ring.lock().unwrap();\n    let h = self.registry.lock().unwrap();\n    let _ = (g, h);\n  }\n\
             }\n";
        let v = run_ordered(&[("crates/obs/src/a.rs", src)], &["registry", "ring"]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("declared lock order"),
            "{}",
            v[0].message
        );
        assert!(
            v[0].message.contains("registry before ring"),
            "{}",
            v[0].message
        );
        // Without a declared order the same code is silent (pattern 3 is
        // opt-in) — but pattern 2 still sees nothing here since no call.
        let silent = run(&[("crates/obs/src/a.rs", src)]);
        assert!(silent.is_empty(), "{silent:?}");
    }

    #[test]
    fn declared_order_respected_and_unranked_locks_unconstrained() {
        let ok = run_ordered(
            &[(
                "crates/obs/src/a.rs",
                "pub struct S { registry: std::sync::Mutex<i32>, ring: std::sync::Mutex<i32>, misc: std::sync::Mutex<i32> }\n\
                 impl S {\n\
                   pub fn good(&self) {\n    let g = self.registry.lock().unwrap();\n    let h = self.ring.lock().unwrap();\n    let _ = (g, h);\n  }\n\
                   pub fn unranked(&self) {\n    let g = self.ring.lock().unwrap();\n    let h = self.misc.lock().unwrap();\n    let _ = (g, h);\n  }\n\
                 }\n",
            )],
            &["registry", "ring"],
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn non_lib_crates_and_test_code_are_exempt() {
        let v = run(&[(
            "crates/bench/src/a.rs",
            "pub fn f(m: &std::sync::Mutex<i32>) {\n  let a = m.lock().unwrap();\n  let b = m.lock().unwrap();\n  let _ = (a, b);\n}\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }
}

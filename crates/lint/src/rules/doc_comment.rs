//! `doc-comment` — public API without rustdoc in library crates.
//!
//! Every `pub fn` and `pub struct` in a library crate is part of the
//! workspace's public surface and must carry a doc comment (`///`,
//! `/** … */`) or an explicit `#[doc = …]` attribute. The rule scans the
//! full token stream (comments retained) so doc comments interleaved
//! with attributes are found; `pub(crate)` / `pub(super)` items are
//! internal and exempt, as is anything inside `#[cfg(test)]` modules.

use super::{Rule, RuleCtx};
use crate::lexer::{Token, TokenKind};
use crate::report::{Severity, Violation};
use crate::source::SourceFile;

/// See the module docs.
pub struct DocComment;

impl Rule for DocComment {
    fn id(&self) -> &'static str {
        "doc-comment"
    }

    fn description(&self) -> &'static str {
        "pub fn / pub struct in a library crate without a doc comment"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, file: &SourceFile, ctx: &RuleCtx) -> Vec<Violation> {
        if !ctx.lib_crates.contains(&file.crate_name) || file.test_only {
            return Vec::new();
        }
        let tokens: Vec<&Token> = file.tokens.iter().collect();
        let mut out = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            if !t.kind.is_ident("pub") || file.is_test_line(t.line) {
                continue;
            }
            let Some((kind, name)) = declared_item(&tokens, i) else {
                continue;
            };
            if !has_doc(&tokens, i) {
                out.push(Violation {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line: t.line,
                    message: format!("pub {kind} {name} has no doc comment"),
                });
            }
        }
        out
    }
}

/// If the `pub` at `i` introduces a `fn` or `struct`, returns the item
/// kind and name. Skips comments and fn qualifiers (`const`, `unsafe`,
/// `async`, `extern "…"`); rejects restricted visibility (`pub(…)`).
fn declared_item<'a>(tokens: &[&'a Token], i: usize) -> Option<(&'static str, &'a str)> {
    let mut j = next_code(tokens, i + 1)?;
    if tokens[j].kind.is_punct("(") {
        return None; // pub(crate) / pub(super) — not public API
    }
    loop {
        match &tokens[j].kind {
            TokenKind::Ident(s)
                if matches!(s.as_str(), "const" | "unsafe" | "async" | "extern") =>
            {
                j = next_code(tokens, j + 1)?;
            }
            TokenKind::Str => {
                j = next_code(tokens, j + 1)?; // extern "C"
            }
            _ => break,
        }
    }
    let kind = match &tokens[j].kind {
        TokenKind::Ident(s) if s == "fn" => "fn",
        TokenKind::Ident(s) if s == "struct" => "struct",
        _ => return None,
    };
    let name_idx = next_code(tokens, j + 1)?;
    let name = tokens[name_idx].kind.ident()?;
    Some((kind, name))
}

/// Index of the first non-comment token at or after `i`.
fn next_code(tokens: &[&Token], i: usize) -> Option<usize> {
    (i..tokens.len()).find(|&j| !matches!(tokens[j].kind, TokenKind::Comment(_)))
}

/// Walks backwards from the `pub` at `i` over attribute groups and plain
/// comments; true once a doc comment or `#[doc…]` attribute is found.
fn has_doc(tokens: &[&Token], i: usize) -> bool {
    let mut end = i; // exclusive end of the region above the item
    while end > 0 {
        let prev = end - 1;
        match &tokens[prev].kind {
            TokenKind::Comment(text) => {
                if text.starts_with("///") || text.starts_with("/**") {
                    return true;
                }
                end = prev; // plain comment — keep looking above it
            }
            TokenKind::Punct("]") => {
                // Match the attribute's `[` backwards, then expect `#`.
                let Some(open) = matching_open(tokens, prev) else {
                    return false;
                };
                if open == 0 || !tokens[open - 1].kind.is_punct("#") {
                    return false;
                }
                if tokens[open..prev].iter().any(|t| t.kind.is_ident("doc")) {
                    return true;
                }
                end = open - 1;
            }
            _ => return false,
        }
    }
    false
}

/// Index of the `[` matching the `]` at `close`, scanning backwards.
fn matching_open(tokens: &[&Token], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    for j in (0..=close).rev() {
        if tokens[j].kind.is_punct("]") {
            depth += 1;
        } else if tokens[j].kind.is_punct("[") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run;
    use super::*;

    #[test]
    fn flags_undocumented_fn_and_struct() {
        let src = "pub fn naked() {}\npub struct Bare { pub x: f64 }\n";
        let v = run(&DocComment, "crates/dsp/src/x.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v[0].message.contains("fn naked"));
        assert!(v[1].message.contains("struct Bare"));
    }

    #[test]
    fn doc_comment_forms_satisfy_the_rule() {
        let src = "\
/// Line docs.
pub fn a() {}

/** Block docs. */
pub struct B;

#[doc = \"attribute docs\"]
pub fn c() {}
";
        assert!(run(&DocComment, "crates/dsp/src/x.rs", src).is_empty());
    }

    #[test]
    fn docs_survive_interleaved_attributes_and_plain_comments() {
        let src = "\
/// Documented.
#[must_use]
#[allow(dead_code)]
pub fn a() -> f64 { 0.0 }

/// Documented too.
// implementation note
pub struct S;
";
        assert!(run(&DocComment, "crates/dsp/src/x.rs", src).is_empty());
    }

    #[test]
    fn qualified_fns_are_still_matched() {
        let src = "pub const fn c() {}\npub unsafe fn u() {}\npub async fn a() {}\n";
        assert_eq!(run(&DocComment, "crates/dsp/src/x.rs", src).len(), 3);
        let documented = "/// Docs.\npub const unsafe fn both() {}\n";
        assert!(run(&DocComment, "crates/dsp/src/x.rs", documented).is_empty());
    }

    #[test]
    fn restricted_visibility_and_other_items_are_exempt() {
        let src = "\
pub(crate) fn internal() {}
pub(super) struct Up;
pub mod sub {}
pub use std::fmt;
pub const MAX: usize = 4;
";
        assert!(run(&DocComment, "crates/dsp/src/x.rs", src).is_empty());
    }

    #[test]
    fn non_lib_crates_tests_and_cfg_test_mods_are_exempt() {
        let src = "pub fn naked() {}\n";
        assert!(run(&DocComment, "crates/bench/src/x.rs", src).is_empty());
        assert!(run(&DocComment, "tests/x.rs", src).is_empty());
        let test_mod = "#[cfg(test)]\nmod tests {\n    pub fn helper() {}\n}\n";
        assert!(run(&DocComment, "crates/dsp/src/x.rs", test_mod).is_empty());
    }

    #[test]
    fn attribute_without_doc_does_not_count() {
        let src = "#[must_use]\npub fn a() -> f64 { 0.0 }\n";
        assert_eq!(run(&DocComment, "crates/dsp/src/x.rs", src).len(), 1);
    }
}

//! `nan-guard` — unguarded float operations on signal-derived values.
//!
//! A NaN born in `dsp` or the quality/fusion layers silently poisons the
//! Eq. 8 fusion weights (NaN propagates through every sum and compare
//! downstream), so inside the `[nanguard] paths` prefixes this rule
//! flags, per function:
//!
//! * **division** whose divisor is a plain variable or field that the
//!   function never guards, and division by `x.len()` when `x` is not
//!   emptiness-checked;
//! * **`sqrt` / `ln` / `log10` / `log2` / `asin` / `acos`** on an
//!   unguarded variable or field (negative or out-of-domain input yields
//!   NaN).
//!
//! "Guarded" is purely local and syntactic: the name appears in any
//! comparison (`d > 0.0`, `n != 0`), or as receiver of `abs`, `max`,
//! `min`, `clamp`, `is_finite`, `is_nan`, `is_empty`, or the function
//! early-returns on it some other recognisable way. `SCREAMING_CASE`
//! names are treated as checked constants. The heuristic
//! under-approximates guards, so the baseline absorbs reviewed sites.

use crate::callgraph::Workspace;
use crate::parser::{Block, Expr};
use crate::report::{Severity, Violation};
use crate::rules::SemanticRule;
use std::collections::BTreeSet;

/// See the module docs.
pub struct NanGuard;

/// Methods whose mathematical domain excludes part of the float line.
const DOMAIN_METHODS: &[&str] = &["sqrt", "ln", "log10", "log2", "asin", "acos"];

/// Comparison operators that establish a guard on their operand names.
const CMP_OPS: &[&str] = &["<", "<=", ">", ">=", "==", "!="];

/// Receiver methods that establish a guard on the receiver name.
const GUARD_METHODS: &[&str] = &[
    "abs",
    "max",
    "min",
    "clamp",
    "is_finite",
    "is_nan",
    "is_empty",
    "signum",
];

impl SemanticRule for NanGuard {
    fn id(&self) -> &'static str {
        "nan-guard"
    }

    fn description(&self) -> &'static str {
        "unguarded division or domain-limited float op on a signal-derived value"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let mut violations = Vec::new();
        for i in 0..ws.graph.nodes.len() {
            let node = &ws.graph.nodes[i];
            let path = ws.path_of(i);
            if node.is_test
                || !ws
                    .nanguard
                    .paths
                    .iter()
                    .any(|p| path.starts_with(p.as_str()))
            {
                continue;
            }
            let item = ws.item(i);
            let Some(body) = &item.body else { continue };
            let guarded = guarded_names(body);
            body.visit(&mut |e| check_site(e, &guarded, path, &mut violations));
        }
        violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        violations
    }
}

/// Names the function guards somewhere in its body (flow-insensitive).
fn guarded_names(body: &Block) -> BTreeSet<String> {
    let mut guarded = BTreeSet::new();
    body.visit(&mut |e| match e {
        Expr::Binary { op, lhs, rhs, .. } if CMP_OPS.contains(op) => {
            collect_names(lhs, &mut guarded);
            collect_names(rhs, &mut guarded);
        }
        Expr::MethodCall { recv, method, .. } if GUARD_METHODS.contains(&method.as_str()) => {
            if let Some(name) = value_name(recv) {
                guarded.insert(name);
            }
        }
        Expr::Match { scrutinee, .. } => {
            // Matching on a value (e.g. `match n { 0 => …, _ => … }`)
            // counts as inspecting it.
            if let Some(name) = value_name(scrutinee) {
                guarded.insert(name);
            }
        }
        _ => {}
    });
    guarded
}

/// Every plain variable/field name inside a guard expression.
fn collect_names(e: &Expr, out: &mut BTreeSet<String>) {
    e.visit(&mut |sub| {
        if let Some(name) = value_name(sub) {
            out.insert(name);
        }
    });
}

/// The stable name of a plain value: a single-segment path, a field
/// access chain's full dotted form, or `x.len`.
fn value_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 => Some(segs[0].clone()),
        Expr::Field { base, name, .. } => Some(format!("{}.{name}", value_name(base)?)),
        Expr::Unary { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => {
            value_name(expr)
        }
        Expr::MethodCall {
            recv, method, args, ..
        } if method == "len" && args.is_empty() => Some(format!("{}.len", value_name(recv)?)),
        _ => None,
    }
}

/// Checks one expression for an unguarded division or domain op.
fn check_site(e: &Expr, guarded: &BTreeSet<String>, path: &str, out: &mut Vec<Violation>) {
    match e {
        Expr::Binary {
            op: "/", rhs, line, ..
        } => {
            if let Some(name) = flaggable_name(rhs, guarded) {
                out.push(Violation {
                    rule: "nan-guard",
                    path: path.to_string(),
                    line: *line,
                    message: format!(
                        "division by `{name}` without a zero/emptiness guard — a NaN here \
                         corrupts the downstream fusion weights"
                    ),
                });
            }
        }
        Expr::MethodCall {
            recv,
            method,
            args,
            line,
        } if DOMAIN_METHODS.contains(&method.as_str()) && args.is_empty() => {
            if let Some(name) = flaggable_name(recv, guarded) {
                out.push(Violation {
                    rule: "nan-guard",
                    path: path.to_string(),
                    line: *line,
                    message: format!(
                        "`.{method}()` on unguarded `{name}` — out-of-domain input yields NaN"
                    ),
                });
            }
        }
        _ => {}
    }
}

/// The name to flag, when the operand is a plain unguarded value.
/// Literals, guarded names, checked constants and compound expressions
/// are exempt (compound divisors are beyond a syntactic rule).
fn flaggable_name(e: &Expr, guarded: &BTreeSet<String>) -> Option<String> {
    let name = value_name(e)?;
    let is_const = name
        .chars()
        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
    if is_const || guarded.contains(&name) {
        return None;
    }
    // `x.len` divisors are fine when `x` was emptiness/length-checked.
    if let Some(base) = name.strip_suffix(".len") {
        if guarded.contains(base) {
            return None;
        }
    }
    Some(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, NanGuardConfig};
    use crate::source::SourceFile;

    fn run(files: &[(&str, &str)], paths: &[&str]) -> Vec<Violation> {
        let sources: Vec<SourceFile> = files.iter().map(|(p, t)| SourceFile::parse(p, t)).collect();
        let config = Config {
            lib_crates: vec!["dsp".to_string(), "tagbreathe".to_string()],
            nanguard: NanGuardConfig {
                paths: paths.iter().map(|s| s.to_string()).collect(),
            },
            ..Config::default()
        };
        let ws = Workspace::build(&sources, &config);
        NanGuard.check(&ws)
    }

    #[test]
    fn unguarded_division_is_flagged() {
        let v = run(
            &[(
                "crates/dsp/src/a.rs",
                "pub fn f(total: f64, n: f64) -> f64 { total / n }\n",
            )],
            &["crates/dsp"],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("`n`"), "{}", v[0].message);
    }

    #[test]
    fn compared_divisor_is_guarded() {
        let v = run(
            &[(
                "crates/dsp/src/a.rs",
                "pub fn f(total: f64, n: f64) -> f64 {\n  if n <= 0.0 { return 0.0; }\n  total / n\n}\n",
            )],
            &["crates/dsp"],
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn sqrt_on_unguarded_value_is_flagged_but_abs_guards() {
        let bad = run(
            &[(
                "crates/dsp/src/a.rs",
                "pub fn f(variance: f64) -> f64 { variance.sqrt() }\n",
            )],
            &["crates/dsp"],
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].message.contains("sqrt"), "{}", bad[0].message);
        let ok = run(
            &[(
                "crates/dsp/src/a.rs",
                "pub fn f(variance: f64) -> f64 { variance.abs().sqrt() }\n",
            )],
            &["crates/dsp"],
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn len_divisor_needs_emptiness_check() {
        let bad = run(
            &[(
                "crates/dsp/src/a.rs",
                "pub fn mean(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() / xs.len() as f64 }\n",
            )],
            &["crates/dsp"],
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        let ok = run(
            &[(
                "crates/dsp/src/a.rs",
                "pub fn mean(xs: &[f64]) -> f64 {\n  if xs.is_empty() { return 0.0; }\n  xs.iter().sum::<f64>() / xs.len() as f64\n}\n",
            )],
            &["crates/dsp"],
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn paths_outside_config_and_tests_are_exempt() {
        let v = run(
            &[
                (
                    "crates/rfchannel/src/a.rs",
                    "pub fn f(a: f64, b: f64) -> f64 { a / b }\n",
                ),
                (
                    "crates/dsp/tests/t.rs",
                    "fn f(a: f64, b: f64) -> f64 { a / b }\n",
                ),
            ],
            &["crates/dsp"],
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn literal_and_constant_divisors_are_exempt() {
        let v = run(
            &[(
                "crates/dsp/src/a.rs",
                "const SCALE: f64 = 4.0;\npub fn f(a: f64) -> f64 { a / 2.0 + a / SCALE }\n",
            )],
            &["crates/dsp"],
        );
        assert!(v.is_empty(), "{v:?}");
    }
}

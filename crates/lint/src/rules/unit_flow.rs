//! `unit-dataflow` — intraprocedural physical-units checking.
//!
//! Units are carried by identifier suffixes declared in `lint.toml`
//! (`[units] suffixes`, e.g. `_hz`, `_bpm`, `_rad`) and by declared
//! conversion functions (`hz_to_bpm: hz -> bpm`). Within each non-test
//! lib-crate function the rule infers a unit for every expression it can
//! and flags definite mix-ups:
//!
//! * additive arithmetic and comparisons between different units;
//! * `let x_hz = <bpm-valued expr>` bindings and `=`/`+=`/`-=` stores;
//! * `return`/trailing expressions disagreeing with a unit-suffixed
//!   function name;
//! * struct-literal fields fed values of a different unit;
//! * call arguments whose unit contradicts the parameter's suffix or a
//!   conversion's declared input.
//!
//! Multiplication and division intentionally produce *unknown* units —
//! dimension composition like Eq. 3's `λ/(4π)·wrap(Δθ)` is legitimate —
//! so the rule only fires where two **same-dimension-labelled** values
//! collide. Unknown units never fire: the rule under-approximates.

use crate::callgraph::Workspace;
use crate::config::UnitsConfig;
use crate::parser::{Block, Expr, FnItem, Param, Stmt};
use crate::report::{Severity, Violation};
use crate::rules::SemanticRule;
use std::collections::{BTreeMap, HashMap};

/// See the module docs.
pub struct UnitDataflow;

/// Methods that return a value in the same unit as their receiver; for
/// those that take comparands (`max`/`min`/`clamp`), argument units are
/// checked against the receiver's.
const UNIT_PRESERVING: &[&str] = &[
    "abs", "max", "min", "clamp", "floor", "ceil", "round", "copysign", "signum", "to_owned",
    "clone",
];

impl SemanticRule for UnitDataflow {
    fn id(&self) -> &'static str {
        "unit-dataflow"
    }

    fn description(&self) -> &'static str {
        "mixed physical units in arithmetic, bindings, returns or call arguments"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let signatures = collect_signatures(ws);
        let mut violations = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            if !ws.lib_crates.contains(&file.crate_name) {
                continue;
            }
            for item in &file.parsed.fns {
                if item.is_test {
                    continue;
                }
                let mut checker = Checker {
                    units: &ws.units,
                    signatures: &signatures,
                    path: &ws.files[fi].rel_path,
                    fn_name: &item.name,
                    out: &mut violations,
                };
                checker.check_fn(item);
            }
        }
        violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        violations
    }
}

/// Parameter-name suffixes of workspace functions, keyed by function
/// name — used to check call arguments. Only unambiguous names (exactly
/// one workspace function) are kept.
fn collect_signatures(ws: &Workspace) -> BTreeMap<String, Vec<Param>> {
    let mut by_name: BTreeMap<String, Vec<&FnItem>> = BTreeMap::new();
    for file in &ws.files {
        for item in &file.parsed.fns {
            if !item.is_test {
                by_name.entry(item.name.clone()).or_default().push(item);
            }
        }
    }
    by_name
        .into_iter()
        .filter(|(_, items)| items.len() == 1)
        .map(|(name, items)| (name, items[0].params.clone()))
        .collect()
}

struct Checker<'a> {
    units: &'a UnitsConfig,
    signatures: &'a BTreeMap<String, Vec<Param>>,
    path: &'a str,
    fn_name: &'a str,
    out: &'a mut Vec<Violation>,
}

impl Checker<'_> {
    fn emit(&mut self, line: u32, message: String) {
        self.out.push(Violation {
            rule: "unit-dataflow",
            path: self.path.to_string(),
            line,
            message,
        });
    }

    fn check_fn(&mut self, item: &FnItem) {
        let Some(body) = &item.body else {
            return;
        };
        let mut env: HashMap<String, String> = HashMap::new();
        for p in &item.params {
            if let Some(name) = &p.name {
                if let Some(u) = self.units.unit_of_name(&name.to_lowercase()) {
                    env.insert(name.clone(), u.to_string());
                }
            }
        }
        let ret_unit = self
            .units
            .unit_of_name(&item.name.to_lowercase())
            .map(str::to_string);
        let trailing = self.check_block(body, &mut env, ret_unit.as_deref());
        if let (Some(fu), Some(vu)) = (&ret_unit, &trailing) {
            if fu != vu {
                let line = last_line(body);
                self.emit(
                    line,
                    format!(
                        "function `{}` (`{fu}`) returns a `{vu}` value",
                        self.fn_name
                    ),
                );
            }
        }
    }

    /// Checks a block's statements in order, threading the environment;
    /// returns the unit of the trailing expression, if known.
    fn check_block(
        &mut self,
        block: &Block,
        env: &mut HashMap<String, String>,
        ret_unit: Option<&str>,
    ) -> Option<String> {
        let mut trailing = None;
        for stmt in &block.stmts {
            trailing = None;
            match stmt {
                Stmt::Let {
                    name, init, line, ..
                } => {
                    let init_unit = init.as_ref().and_then(|e| self.infer(e, env));
                    let declared = name
                        .as_deref()
                        .and_then(|n| self.units.unit_of_name(&n.to_lowercase()))
                        .map(str::to_string);
                    if let (Some(n), Some(du), Some(iu)) = (name, &declared, &init_unit) {
                        if du != iu {
                            self.emit(
                                *line,
                                format!("binding `{n}` (`{du}`) initialised with a `{iu}` value"),
                            );
                        }
                    }
                    if let Some(n) = name {
                        match declared.or(init_unit) {
                            Some(u) => {
                                env.insert(n.clone(), u);
                            }
                            None => {
                                env.remove(n); // shadowing clears stale units
                            }
                        }
                    }
                }
                Stmt::Expr { expr, has_semi } => {
                    let u = self.infer(expr, env);
                    if !has_semi {
                        trailing = u;
                    }
                }
                Stmt::Return { value, line } => {
                    let vu = value.as_ref().and_then(|e| self.infer(e, env));
                    if let (Some(fu), Some(vu)) = (ret_unit, &vu) {
                        if fu != vu {
                            self.emit(
                                *line,
                                format!(
                                    "function `{}` (`{fu}`) returns a `{vu}` value",
                                    self.fn_name
                                ),
                            );
                        }
                    }
                }
            }
        }
        trailing
    }

    /// Infers the unit of an expression, emitting violations for definite
    /// mixed-unit uses found along the way.
    fn infer(&mut self, e: &Expr, env: &HashMap<String, String>) -> Option<String> {
        match e {
            Expr::Path { segs, .. } => {
                if segs.len() == 1 {
                    if let Some(u) = env.get(&segs[0]) {
                        return Some(u.clone());
                    }
                }
                let last = segs.last()?;
                self.units
                    .unit_of_name(&last.to_lowercase())
                    .map(str::to_string)
            }
            Expr::Lit { .. } | Expr::Opaque { .. } => None,
            Expr::Field { base, name, .. } => {
                self.infer(base, env);
                self.units
                    .unit_of_name(&name.to_lowercase())
                    .map(str::to_string)
            }
            Expr::Index { base, index, .. } => {
                self.infer(index, env);
                // elements of a `_s`-suffixed collection are seconds
                self.infer(base, env)
            }
            Expr::Unary { expr, .. } | Expr::Try { expr, .. } | Expr::Cast { expr, .. } => {
                self.infer(expr, env)
            }
            Expr::Binary {
                op, lhs, rhs, line, ..
            } => {
                let lu = self.infer(lhs, env);
                let ru = self.infer(rhs, env);
                match *op {
                    "+" | "-" => {
                        if let (Some(l), Some(r)) = (&lu, &ru) {
                            if l != r {
                                self.emit(*line, format!("mixed units: `{l}` {op} `{r}`"));
                            }
                        }
                        lu.or(ru)
                    }
                    "==" | "!=" | "<" | ">" | "<=" | ">=" => {
                        if let (Some(l), Some(r)) = (&lu, &ru) {
                            if l != r {
                                self.emit(
                                    *line,
                                    format!("mixed units in comparison: `{l}` {op} `{r}`"),
                                );
                            }
                        }
                        None
                    }
                    _ => None, // *, /, %, ranges, shifts: dimension changes
                }
            }
            Expr::Assign {
                op,
                target,
                value,
                line,
            } => {
                let tu = self.infer(target, env);
                let vu = self.infer(value, env);
                if matches!(*op, "=" | "+=" | "-=") {
                    if let (Some(t), Some(v)) = (&tu, &vu) {
                        if t != v {
                            self.emit(*line, format!("assigns a `{v}` value to a `{t}` target"));
                        }
                    }
                }
                None
            }
            Expr::Call {
                path, args, line, ..
            } => {
                let arg_units: Vec<Option<String>> =
                    args.iter().map(|a| self.infer(a, env)).collect();
                let name = path.last()?;
                self.check_call(name, &arg_units, *line, false)
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                let ru = self.infer(recv, env);
                let arg_units: Vec<Option<String>> =
                    args.iter().map(|a| self.infer(a, env)).collect();
                if UNIT_PRESERVING.contains(&method.as_str()) {
                    for au in arg_units.iter().flatten() {
                        if let Some(r) = &ru {
                            if r != au {
                                self.emit(
                                    *line,
                                    format!("mixes `{r}` and `{au}` in `.{method}(…)`"),
                                );
                            }
                        }
                    }
                    return ru;
                }
                if let Some(c) = self.units.conversion_for(method) {
                    let (from, to) = (c.from.clone(), c.to.clone());
                    if let Some(r) = &ru {
                        if *r != from {
                            self.emit(
                                *line,
                                format!("conversion `{method}` expects `{from}`, got `{r}`"),
                            );
                        }
                    }
                    return Some(to);
                }
                self.check_call(method, &arg_units, *line, true)
            }
            Expr::Macro { args, .. } => {
                for a in args {
                    self.infer(a, env);
                }
                None
            }
            Expr::Closure { body, .. } => {
                let mut scoped = env.clone();
                // Closure parameters are unknown; check the body only.
                let _ = self.infer_in(body, &mut scoped);
                None
            }
            Expr::BlockExpr { block, .. } => {
                let mut scoped = env.clone();
                self.check_block(block, &mut scoped, None)
            }
            Expr::If {
                cond,
                then_block,
                else_branch,
                ..
            } => {
                self.infer(cond, env);
                let mut scoped = env.clone();
                let tu = self.check_block(then_block, &mut scoped, None);
                let eu = else_branch.as_ref().and_then(|e| {
                    let mut scoped = env.clone();
                    self.infer_in(e, &mut scoped)
                });
                tu.or(eu)
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.infer(scrutinee, env);
                let mut unit = None;
                for a in arms {
                    let mut scoped = env.clone();
                    let au = self.infer_in(a, &mut scoped);
                    unit = unit.or(au);
                }
                unit
            }
            Expr::Loop { cond, body, .. } => {
                if let Some(c) = cond {
                    self.infer(c, env);
                }
                let mut scoped = env.clone();
                self.check_block(body, &mut scoped, None);
                None
            }
            Expr::StructLit { fields, .. } => {
                for (field, value) in fields {
                    let vu = self.infer(value, env);
                    let fu = self.units.unit_of_name(&field.to_lowercase());
                    if let (Some(fu), Some(vu)) = (fu, &vu) {
                        if fu != vu {
                            self.emit(
                                value.line(),
                                format!("field `{field}` (`{fu}`) set from a `{vu}` value"),
                            );
                        }
                    }
                }
                None
            }
            Expr::Group { items, .. } => {
                for i in items {
                    self.infer(i, env);
                }
                None
            }
        }
    }

    /// Infers with a mutable scope (for expressions owning blocks).
    fn infer_in(&mut self, e: &Expr, env: &mut HashMap<String, String>) -> Option<String> {
        if let Expr::BlockExpr { block, .. } = e {
            return self.check_block(block, env, None);
        }
        self.infer(e, env)
    }

    /// Checks a (free or method) call's arguments against a declared
    /// conversion or an unambiguous workspace signature, and returns the
    /// call's result unit (conversion target or callee-name suffix).
    fn check_call(
        &mut self,
        name: &str,
        arg_units: &[Option<String>],
        line: u32,
        is_method: bool,
    ) -> Option<String> {
        if let Some(c) = self.units.conversion_for(name) {
            if let Some(Some(au)) = arg_units.first() {
                if *au != c.from {
                    self.emit(
                        line,
                        format!("conversion `{name}` expects `{}`, got `{au}`", c.from),
                    );
                }
            }
            return Some(c.to.clone());
        }
        if let Some(params) = self.signatures.get(name) {
            // Skip a leading `self` receiver parameter for method calls.
            let params: Vec<&Param> = params
                .iter()
                .filter(|p| !(is_method && p.name.as_deref() == Some("self")))
                .collect();
            for (au, param) in arg_units.iter().zip(params) {
                let pu = param
                    .name
                    .as_deref()
                    .and_then(|n| self.units.unit_of_name(&n.to_lowercase()));
                if let (Some(au), Some(pu), Some(pname)) = (au, pu, param.name.as_deref()) {
                    if au != pu {
                        self.emit(
                            line,
                            format!(
                                "call to `{name}`: parameter `{pname}` (`{pu}`) gets a `{au}` value"
                            ),
                        );
                    }
                }
            }
        }
        self.units
            .unit_of_name(&name.to_lowercase())
            .map(str::to_string)
    }
}

/// Line of the last statement in a block (for trailing-return reports).
fn last_line(block: &Block) -> u32 {
    block.stmts.last().map_or(0, |s| match s {
        Stmt::Let { line, .. } | Stmt::Return { line, .. } => *line,
        Stmt::Expr { expr, .. } => expr.line(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Conversion;
    use crate::source::SourceFile;

    fn run_with(files: &[(&str, &str)], units: UnitsConfig) -> Vec<Violation> {
        let sources: Vec<SourceFile> = files.iter().map(|(p, t)| SourceFile::parse(p, t)).collect();
        let config = crate::config::Config {
            lib_crates: vec!["dsp".to_string(), "tagbreathe".to_string()],
            units,
            ..crate::config::Config::default()
        };
        let ws = Workspace::build(&sources, &config);
        UnitDataflow.check(&ws)
    }

    fn units_with_conversions() -> UnitsConfig {
        UnitsConfig {
            conversions: vec![Conversion {
                name: "hz_to_bpm".to_string(),
                from: "hz".to_string(),
                to: "bpm".to_string(),
            }],
            ..UnitsConfig::default()
        }
    }

    #[test]
    fn additive_mixing_is_flagged() {
        let v = run_with(
            &[(
                "crates/dsp/src/a.rs",
                "pub fn f(rate_hz: f64, rate_bpm: f64) -> f64 { rate_hz + rate_bpm }\n",
            )],
            UnitsConfig::default(),
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("`hz` + `bpm`"), "{}", v[0].message);
    }

    #[test]
    fn multiplication_is_dimension_composition_not_flagged() {
        let v = run_with(
            &[(
                "crates/dsp/src/a.rs",
                "pub fn f(lambda_m: f64, phase_rad: f64) -> f64 { lambda_m * phase_rad / 4.0 }\n",
            )],
            UnitsConfig::default(),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn binding_and_propagation() {
        let v = run_with(
            &[(
                "crates/dsp/src/a.rs",
                "pub fn f(freq_hz: f64) {\n  let x = freq_hz;\n  let rate_bpm = x;\n  let _ = rate_bpm;\n}\n",
            )],
            UnitsConfig::default(),
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("binding `rate_bpm` (`bpm`)"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn conversion_fixes_the_flow_and_bad_input_is_flagged() {
        let good = run_with(
            &[(
                "crates/tagbreathe/src/a.rs",
                "pub fn f(freq_hz: f64) -> f64 { let rate_bpm = hz_to_bpm(freq_hz); rate_bpm }\n",
            )],
            units_with_conversions(),
        );
        assert!(good.is_empty(), "{good:?}");
        let bad = run_with(
            &[(
                "crates/tagbreathe/src/a.rs",
                "pub fn f(rate_bpm: f64) -> f64 { hz_to_bpm(rate_bpm) }\n",
            )],
            units_with_conversions(),
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(
            bad[0].message.contains("expects `hz`, got `bpm`"),
            "{}",
            bad[0].message
        );
    }

    #[test]
    fn suffixed_fn_return_is_checked() {
        let v = run_with(
            &[(
                "crates/dsp/src/a.rs",
                "pub fn rate_hz(rate_bpm: f64) -> f64 { rate_bpm }\n",
            )],
            UnitsConfig::default(),
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("returns a `bpm` value"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn struct_fields_and_call_args_are_checked() {
        let v = run_with(
            &[(
                "crates/tagbreathe/src/a.rs",
                "pub struct P { pub rate_bpm: f64 }\n\
                 pub fn mk(freq_hz: f64) -> P { P { rate_bpm: freq_hz } }\n\
                 pub fn takes(cutoff_hz: f64) -> f64 { cutoff_hz }\n\
                 pub fn call(rate_bpm: f64) -> f64 { takes(rate_bpm) }\n",
            )],
            UnitsConfig::default(),
        );
        let messages: Vec<&str> = v.iter().map(|v| v.message.as_str()).collect();
        assert!(
            messages.iter().any(|m| m.contains("field `rate_bpm`")),
            "{messages:?}"
        );
        assert!(
            messages
                .iter()
                .any(|m| m.contains("parameter `cutoff_hz` (`hz`) gets a `bpm` value")),
            "{messages:?}"
        );
    }

    #[test]
    fn test_code_and_unknown_units_are_silent() {
        let v = run_with(
            &[(
                "crates/dsp/src/a.rs",
                "pub fn f(x: f64, y_hz: f64) -> f64 { x + y_hz }\n\
                 #[cfg(test)]\nmod tests {\n  fn t(a_hz: f64, b_bpm: f64) -> f64 { a_hz + b_bpm }\n}\n",
            )],
            UnitsConfig::default(),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn constants_in_caps_carry_units() {
        let v = run_with(
            &[(
                "crates/dsp/src/a.rs",
                "pub const MAX_RATE_BPM: f64 = 40.0;\n\
                 pub fn f(freq_hz: f64) -> bool { freq_hz > MAX_RATE_BPM }\n",
            )],
            UnitsConfig::default(),
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("comparison"), "{}", v[0].message);
    }
}

//! `lossy-cast` — numeric `as` casts that can silently lose information.
//!
//! `as` never fails: `f64 as f32` rounds, `f64 as usize` truncates and
//! saturates, `u64 as u32` wraps. In a phase-processing pipeline these
//! are exactly the silent corruptions the paper's Eq. 3–5 maths cannot
//! tolerate. Without type inference the heuristic is target-based: a
//! cast *to* a narrow type (`f32`, `u8`/`i8`, `u16`/`i16`, `u32`/`i32`)
//! is flagged in production code, since every workspace quantity is
//! naturally `f64`/`usize`/`u64` and a narrowing target is where loss
//! happens. Casts to `usize` from an adjacent float literal are also
//! caught (`0.5 as usize`); float-expression→usize casts need types and
//! are left to review. Intentional narrowings (wire formats, LLRP
//! encoding) stay frozen in the baseline.

use super::{Rule, RuleCtx};
use crate::lexer::TokenKind;
use crate::report::{Severity, Violation};
use crate::source::SourceFile;

/// Cast targets considered narrowing in this workspace.
const NARROW_TARGETS: &[&str] = &["f32", "u8", "u16", "u32", "i8", "i16", "i32"];

/// See the module docs.
pub struct LossyCast;

impl Rule for LossyCast {
    fn id(&self) -> &'static str {
        "lossy-cast"
    }

    fn description(&self) -> &'static str {
        "`as` cast to a narrow numeric type outside test code"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, file: &SourceFile, _ctx: &RuleCtx) -> Vec<Violation> {
        let code = file.code_tokens();
        let mut out = Vec::new();
        for i in 0..code.len() {
            if !code[i].kind.is_ident("as") || file.is_test_line(code[i].line) {
                continue;
            }
            let Some(target) = code.get(i + 1).and_then(|t| t.kind.ident()) else {
                continue;
            };
            let narrowing = NARROW_TARGETS.contains(&target);
            let float_to_usize =
                target == "usize" && i > 0 && matches!(code[i - 1].kind, TokenKind::Float(_));
            if narrowing || float_to_usize {
                out.push(Violation {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line: code[i].line,
                    message: format!(
                        "cast `as {target}` can lose information — use try_from or a checked helper"
                    ),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run;
    use super::*;

    #[test]
    fn flags_narrowing_targets() {
        let src = "fn f(x: f64, n: u64) -> f32 { let _ = n as u32; x as f32 }";
        let v = run(&LossyCast, "crates/dsp/src/x.rs", src);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn allows_widening_and_usize_index_math() {
        let src = "fn f(n: usize, x: u32) -> f64 { let _ = x as u64; n as f64 }";
        assert!(run(&LossyCast, "crates/dsp/src/x.rs", src).is_empty());
    }

    #[test]
    fn flags_float_literal_to_usize() {
        let src = "fn f() -> usize { 0.5 as usize }";
        assert_eq!(run(&LossyCast, "crates/dsp/src/x.rs", src).len(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t(x: f64) { let _ = x as f32; }\n}\n";
        assert!(run(&LossyCast, "crates/dsp/src/x.rs", src).is_empty());
    }

    #[test]
    fn ignores_as_in_use_renames() {
        // `use x as y;` — the target is a plain ident, not a numeric type.
        let src = "use std::fmt::Write as _;\nuse a::b as c;\n";
        assert!(run(&LossyCast, "crates/dsp/src/x.rs", src).is_empty());
    }
}

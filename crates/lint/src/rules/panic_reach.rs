//! `panic-reach` — flags every `pub` function in a lib crate whose
//! transitive call closure reaches a panic source.
//!
//! Panic sources are `.unwrap()` / `.expect(…)` calls, `panic!` /
//! `unreachable!` invocations, and slice/array indexing (`x[i]`) in
//! non-test lib-crate code. Reachability is propagated over the
//! heuristic call graph (see [`crate::callgraph`] for the resolution
//! rules — unresolvable calls are leaves, so the analysis
//! under-approximates through dynamic dispatch and std combinators).
//! Each diagnostic carries the *shortest witness call path* from the
//! public entry point to the concrete panic site.

use crate::callgraph::Workspace;
use crate::parser::Expr;
use crate::report::{Severity, Violation};
use crate::rules::SemanticRule;
use std::collections::VecDeque;

/// See the module docs.
pub struct PanicReach;

/// How a function panics directly.
#[derive(Debug, Clone, Copy)]
struct PanicSite {
    what: &'static str,
    line: u32,
}

impl SemanticRule for PanicReach {
    fn id(&self) -> &'static str {
        "panic-reach"
    }

    fn description(&self) -> &'static str {
        "pub lib-crate fn whose call closure reaches unwrap/expect/panic!/unreachable!/indexing"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let n = ws.graph.nodes.len();
        // 1. Direct panic sites, in non-test lib-crate code only.
        let mut direct: Vec<Option<PanicSite>> = vec![None; n];
        for (i, slot) in direct.iter_mut().enumerate() {
            let node = &ws.graph.nodes[i];
            if node.is_test || !ws.in_lib_crate(i) {
                continue;
            }
            *slot = first_panic_site(ws, i);
        }
        // 2. Multi-source BFS over reverse edges: for every function, the
        // next hop on a shortest path toward a panicking callee.
        let rev = ws.graph.reverse_edges();
        let mut dist = vec![usize::MAX; n];
        let mut next: Vec<Option<usize>> = vec![None; n];
        let mut queue = VecDeque::new();
        for (i, site) in direct.iter().enumerate() {
            if site.is_some() {
                dist[i] = 0;
                queue.push_back(i);
            }
        }
        while let Some(v) = queue.pop_front() {
            for &caller in &rev[v] {
                if dist[caller] == usize::MAX {
                    dist[caller] = dist[v] + 1;
                    next[caller] = Some(v);
                    queue.push_back(caller);
                }
            }
        }
        // 3. Flag public, non-test lib-crate functions that reach a site.
        let mut violations = Vec::new();
        for (i, &d) in dist.iter().enumerate().take(n) {
            let node = &ws.graph.nodes[i];
            let item = ws.item(i);
            if !item.is_pub || node.is_test || !ws.in_lib_crate(i) || d == usize::MAX {
                continue;
            }
            // Witness path: this fn → … → the direct panicker.
            let mut path = vec![i];
            let mut cur = i;
            while let Some(hop) = next[cur] {
                path.push(hop);
                cur = hop;
            }
            let site = direct[cur].unwrap_or(PanicSite {
                what: "panic",
                line: ws.item(cur).line,
            });
            let chain: Vec<String> = path.iter().map(|&p| ws.label(p)).collect();
            let message = format!(
                "pub fn `{}` can panic: {} ({} at {}:{})",
                ws.label(i),
                chain.join(" -> "),
                site.what,
                ws.path_of(cur),
                site.line,
            );
            violations.push(Violation {
                rule: self.id(),
                path: ws.path_of(i).to_string(),
                line: item.line,
                message,
            });
        }
        violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        violations
    }
}

/// The first direct panic site in a function body, in source order.
fn first_panic_site(ws: &Workspace, node: usize) -> Option<PanicSite> {
    let item = ws.item(node);
    let body = item.body.as_ref()?;
    let mut found: Option<PanicSite> = None;
    body.visit(&mut |e| {
        let site = match e {
            Expr::MethodCall { method, .. } if method == "unwrap" => Some(PanicSite {
                what: "`.unwrap()`",
                line: e.line(),
            }),
            Expr::MethodCall { method, .. } if method == "expect" => Some(PanicSite {
                what: "`.expect(…)`",
                line: e.line(),
            }),
            Expr::Macro { name, .. } if macro_panics(name) => Some(PanicSite {
                what: "panic macro",
                line: e.line(),
            }),
            Expr::Index { .. } => Some(PanicSite {
                what: "slice indexing",
                line: e.line(),
            }),
            _ => None,
        };
        if let Some(s) = site {
            let better = found.is_none_or(|f| s.line < f.line);
            if better {
                found = Some(s);
            }
        }
    });
    found
}

/// Is this macro name (possibly path-qualified) a panicking macro?
fn macro_panics(name: &str) -> bool {
    let last = name.rsplit("::").next().unwrap_or(name);
    last == "panic" || last == "unreachable"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::source::SourceFile;

    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        let sources: Vec<SourceFile> = files.iter().map(|(p, t)| SourceFile::parse(p, t)).collect();
        let config = Config {
            lib_crates: vec!["dsp".to_string(), "tagbreathe".to_string()],
            ..Config::default()
        };
        let ws = Workspace::build(&sources, &config);
        PanicReach.check(&ws)
    }

    #[test]
    fn direct_unwrap_in_pub_fn_is_flagged_with_site() {
        let v = run(&[(
            "crates/dsp/src/a.rs",
            "pub fn f(o: Option<f64>) -> f64 { o.unwrap() }\n",
        )]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("`.unwrap()`"), "{}", v[0].message);
        assert!(
            v[0].message.contains("crates/dsp/src/a.rs:1"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn transitive_reach_prints_witness_path() {
        let v = run(&[(
            "crates/dsp/src/a.rs",
            "pub fn entry(xs: &[f64]) -> f64 { middle(xs) }\n\
             fn middle(xs: &[f64]) -> f64 { leaf(xs) }\n\
             fn leaf(xs: &[f64]) -> f64 { xs[0] }\n",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("entry -> middle -> leaf"),
            "witness path missing: {}",
            v[0].message
        );
        assert!(v[0].message.contains("slice indexing"), "{}", v[0].message);
    }

    #[test]
    fn private_and_test_and_result_fns_are_not_flagged() {
        let v = run(&[(
            "crates/dsp/src/a.rs",
            "fn private(o: Option<f64>) -> f64 { o.unwrap() }\n\
             pub fn safe(o: Option<f64>) -> Option<f64> { o.map(|x| x + 1.0) }\n\
             #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { super::safe(None).unwrap(); }\n}\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn non_lib_crates_are_exempt() {
        let v = run(&[(
            "crates/bench/src/a.rs",
            "pub fn f(o: Option<f64>) -> f64 { o.unwrap() }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn panic_macro_counts() {
        let v = run(&[(
            "crates/tagbreathe/src/a.rs",
            "pub fn f(x: f64) -> f64 {\n  if x < 0.0 { panic!(\"negative\"); }\n  x\n}\n",
        )]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("panic macro"), "{}", v[0].message);
    }
}

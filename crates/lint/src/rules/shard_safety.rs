//! `shard-safety` — state that defeats hash-partitioning users across
//! worker shards.
//!
//! The planned fleet engine moves each `UserStreamState` onto one of N
//! workers, which is only sound if (1) no mutable global aliases state
//! across shards, (2) the lib-crate public API does not hand out
//! single-threaded shared-ownership handles, and (3) nothing reachable
//! from a shard-root type holds a non-`Send`-pattern type. Three
//! syntactic checks, all in non-test lib-crate code:
//!
//! 1. **mutable statics**: any `static mut` item;
//! 2. **escaping interior mutability**: `Rc`/`RefCell`/`Cell`/
//!    `UnsafeCell` or raw pointers in a `pub fn` signature;
//! 3. **root closure**: the field-type closure of each `[shard] roots`
//!    type (following capitalised words through generics, so
//!    `BTreeMap<(u8, u32), TagState>` reaches `TagState`) must be free
//!    of those same types — findings carry the type-path witness.
//!
//! Like `hot-path-cost`, a root type that matches nothing is reported
//! against `lint.toml` so renames fail loudly.

use crate::callgraph::Workspace;
use crate::report::{Severity, Violation};
use crate::rules::SemanticRule;
use std::collections::{BTreeMap, VecDeque};

/// See the module docs.
pub struct ShardSafety;

/// Type names that are single-threaded shared ownership / interior
/// mutability — the non-`Send` pattern the fleet engine must not see.
const UNSEND_TYPES: &[&str] = &["Rc", "RefCell", "Cell", "UnsafeCell"];

impl SemanticRule for ShardSafety {
    fn id(&self) -> &'static str {
        "shard-safety"
    }

    fn description(&self) -> &'static str {
        "mutable static, or single-threaded shared state in pub APIs / shard-root closure"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let mut violations = Vec::new();
        check_statics(ws, &mut violations);
        check_pub_signatures(ws, &mut violations);
        check_root_closure(ws, &mut violations);
        violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        violations
    }
}

fn emit(out: &mut Vec<Violation>, path: &str, line: u32, message: String) {
    out.push(Violation {
        rule: "shard-safety",
        path: path.to_string(),
        line,
        message,
    });
}

/// Rule 1: `static mut` in non-test lib-crate code.
fn check_statics(ws: &Workspace, out: &mut Vec<Violation>) {
    for file in &ws.files {
        if !ws.lib_crates.contains(&file.crate_name) || file.test_only {
            continue;
        }
        for s in &file.parsed.statics {
            if s.is_mut && !s.is_test {
                emit(
                    out,
                    &file.rel_path,
                    s.line,
                    format!(
                        "mutable static `{}` — globals alias state across worker shards",
                        s.name
                    ),
                );
            }
        }
    }
}

/// Rule 2: non-`Send`-pattern types in pub fn signatures of lib crates.
fn check_pub_signatures(ws: &Workspace, out: &mut Vec<Violation>) {
    let aliases = ws.alias_map();
    for i in 0..ws.graph.nodes.len() {
        let node = &ws.graph.nodes[i];
        if node.is_test || !ws.in_lib_crate(i) {
            continue;
        }
        let item = ws.item(i);
        if !item.is_pub {
            continue;
        }
        let label = ws.label(i);
        for p in &item.params {
            if let Some(bad) = unsend_word(&ws.expand_aliases(&p.ty, &aliases)) {
                emit(
                    out,
                    ws.path_of(i),
                    item.line,
                    format!(
                        "pub fn `{label}` takes `{bad}` — single-threaded shared ownership \
                         escaping the crate API"
                    ),
                );
            }
        }
        if let Some(ret) = &item.ret_type {
            if let Some(bad) = unsend_word(&ws.expand_aliases(ret, &aliases)) {
                emit(
                    out,
                    ws.path_of(i),
                    item.line,
                    format!(
                        "pub fn `{label}` returns `{bad}` — single-threaded shared ownership \
                         escaping the crate API"
                    ),
                );
            }
        }
    }
}

/// Rule 3: field-type closure of the configured shard roots.
fn check_root_closure(ws: &Workspace, out: &mut Vec<Violation>) {
    // Index workspace-defined types by name (non-test definitions only).
    let mut index: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for (ti, t) in file.parsed.types.iter().enumerate() {
            if !t.is_test && !file.test_only {
                index.entry(&t.name).or_default().push((fi, ti));
            }
        }
    }
    let aliases = ws.alias_map();
    // BFS over field-type references, tracking the type-path witness.
    let mut seen: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    for root in &ws.shard.roots {
        if !index.contains_key(root.as_str()) {
            emit(
                out,
                "lint.toml",
                1,
                format!("[shard] root type `{root}` is not defined in the workspace"),
            );
            continue;
        }
        seen.entry(root.clone()).or_insert(vec![root.clone()]);
        queue.push_back(root.clone());
    }
    while let Some(name) = queue.pop_front() {
        let chain = seen[&name].clone();
        let Some(defs) = index.get(name.as_str()) else {
            continue;
        };
        for &(fi, ti) in defs {
            let file = &ws.files[fi];
            let ty = &file.parsed.types[ti];
            for field in &ty.fields {
                let field_ty = ws.expand_aliases(&field.ty, &aliases);
                if let Some(bad) = unsend_word(&field_ty) {
                    emit(
                        out,
                        &file.rel_path,
                        field.line,
                        format!(
                            "field `{}.{}` holds `{bad}` — not shard-safe, reachable as {}",
                            ty.name,
                            field.name,
                            chain.join(" -> ")
                        ),
                    );
                }
                for word in field_ty.split_whitespace() {
                    let is_type_word = word.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                        && index.contains_key(word);
                    if is_type_word && !seen.contains_key(word) {
                        let mut next = chain.clone();
                        next.push(word.to_string());
                        seen.insert(word.to_string(), next);
                        queue.push_back(word.to_string());
                    }
                }
            }
        }
    }
}

/// The first non-`Send`-pattern word of a flat type string: one of
/// [`UNSEND_TYPES`] or a raw-pointer `* mut` / `* const` pair.
fn unsend_word(ty: &str) -> Option<String> {
    let words: Vec<&str> = ty.split_whitespace().collect();
    for (i, w) in words.iter().enumerate() {
        if UNSEND_TYPES.contains(w) {
            return Some((*w).to_string());
        }
        if *w == "*" {
            if let Some(next) = words.get(i + 1) {
                if *next == "mut" || *next == "const" {
                    return Some(format!("*{next}"));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, ShardConfig};
    use crate::source::SourceFile;

    fn run(files: &[(&str, &str)], roots: &[&str]) -> Vec<Violation> {
        let sources: Vec<SourceFile> = files.iter().map(|(p, t)| SourceFile::parse(p, t)).collect();
        let config = Config {
            lib_crates: vec!["tagbreathe".to_string(), "dsp".to_string()],
            shard: ShardConfig {
                roots: roots.iter().map(|s| s.to_string()).collect(),
            },
            ..Config::default()
        };
        let ws = Workspace::build(&sources, &config);
        ShardSafety.check(&ws)
    }

    #[test]
    fn mutable_static_is_flagged() {
        let v = run(
            &[(
                "crates/dsp/src/a.rs",
                "static mut SCRATCH: [f64; 4] = [0.0; 4];\n",
            )],
            &[],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("`SCRATCH`"), "{}", v[0].message);
    }

    #[test]
    fn immutable_static_and_non_lib_crate_are_exempt() {
        let ok = run(
            &[
                ("crates/dsp/src/a.rs", "static N: u32 = 4;\n"),
                ("crates/bench/src/b.rs", "static mut SCRATCH: u32 = 0;\n"),
            ],
            &[],
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn rc_in_pub_signature_is_flagged() {
        let v = run(
            &[(
                "crates/dsp/src/a.rs",
                "/// Doc.\npub fn share(x: std::rc::Rc<f64>) -> f64 { *x }\n\
                 /// Doc.\npub fn cellar() -> std::cell::RefCell<f64> { std::cell::RefCell::new(0.0) }\n\
                 fn private(_x: std::rc::Rc<f64>) {}\n",
            )],
            &[],
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("takes `Rc`"), "{}", v[0].message);
        assert!(
            v[1].message.contains("returns `RefCell`"),
            "{}",
            v[1].message
        );
    }

    #[test]
    fn root_closure_follows_field_types_with_witness() {
        let v = run(
            &[(
                "crates/tagbreathe/src/a.rs",
                "pub struct Root { tags: std::collections::BTreeMap<u8, Mid> }\n\
                 struct Mid { inner: Leaf }\n\
                 struct Leaf { cache: std::rc::Rc<f64> }\n",
            )],
            &["Root"],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("Root -> Mid -> Leaf"),
            "{}",
            v[0].message
        );
        assert!(v[0].message.contains("`Rc`"), "{}", v[0].message);
    }

    #[test]
    fn clean_root_closure_passes_and_missing_root_is_flagged() {
        let ok = run(
            &[(
                "crates/tagbreathe/src/a.rs",
                "pub struct Root { tags: Vec<f64> }\n",
            )],
            &["Root"],
        );
        assert!(ok.is_empty(), "{ok:?}");
        let missing = run(
            &[("crates/tagbreathe/src/a.rs", "pub struct Root;\n")],
            &["Ghost"],
        );
        assert_eq!(missing.len(), 1, "{missing:?}");
        assert_eq!(missing[0].path, "lint.toml");
    }

    #[test]
    fn closure_follows_type_aliases() {
        let v = run(
            &[(
                "crates/tagbreathe/src/a.rs",
                "type Slab = Vec<(u32, Leaf)>;\n\
                 pub struct Root { slots: Slab }\n\
                 struct Leaf { cache: std::rc::Rc<f64> }\n",
            )],
            &["Root"],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Root -> Leaf"), "{}", v[0].message);
    }

    #[test]
    fn raw_pointer_field_is_flagged() {
        let v = run(
            &[(
                "crates/tagbreathe/src/a.rs",
                "pub struct Root { p: *mut f64 }\n",
            )],
            &["Root"],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("`*mut`"), "{}", v[0].message);
    }
}

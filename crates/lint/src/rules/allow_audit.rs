//! `allow-attr` — audit of `#[allow(dead_code)]` / `#[allow(unused…)]`.
//!
//! These attributes disable the compiler's own dead-code analysis; each
//! one is either a TODO in disguise (wire the code up) or a deletion
//! candidate. The ratchet keeps the current set frozen so new silenced
//! warnings need an explicit baseline update to land.

use super::{Rule, RuleCtx};
use crate::lexer::TokenKind;
use crate::report::{Severity, Violation};
use crate::source::SourceFile;

/// See the module docs.
pub struct AllowAudit;

impl Rule for AllowAudit {
    fn id(&self) -> &'static str {
        "allow-attr"
    }

    fn description(&self) -> &'static str {
        "#[allow(dead_code)] / #[allow(unused…)] attributes"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, file: &SourceFile, _ctx: &RuleCtx) -> Vec<Violation> {
        let code = file.code_tokens();
        let mut out = Vec::new();
        let mut i = 0;
        while i + 3 < code.len() {
            // `# [ allow (` or `# ! [ allow (` (inner attribute).
            let mut j = i;
            let is_attr_start = code[j].kind.is_punct("#");
            if !is_attr_start {
                i += 1;
                continue;
            }
            j += 1;
            if code.get(j).is_some_and(|t| t.kind.is_punct("!")) {
                j += 1;
            }
            if !(code.get(j).is_some_and(|t| t.kind.is_punct("["))
                && code.get(j + 1).is_some_and(|t| t.kind.is_ident("allow"))
                && code.get(j + 2).is_some_and(|t| t.kind.is_punct("(")))
            {
                i += 1;
                continue;
            }
            // Scan the allow list for audited lint names.
            let mut k = j + 3;
            let mut flagged: Vec<String> = Vec::new();
            while k < code.len() && !code[k].kind.is_punct(")") {
                if let TokenKind::Ident(name) = &code[k].kind {
                    if name == "dead_code" || name.starts_with("unused") {
                        flagged.push(name.clone());
                    }
                }
                k += 1;
            }
            for name in flagged {
                out.push(Violation {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line: code[i].line,
                    message: format!("#[allow({name})] silences the compiler — wire up or delete"),
                });
            }
            i = k + 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run;
    use super::*;

    #[test]
    fn flags_dead_code_and_unused_variants() {
        let src = "#[allow(dead_code)]\nfn a() {}\n#[allow(unused_variables, clippy::too_many_arguments)]\nfn b() {}\n";
        let v = run(&AllowAudit, "crates/dsp/src/x.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v[0].message.contains("dead_code"));
        assert!(v[1].message.contains("unused_variables"));
    }

    #[test]
    fn flags_inner_attributes() {
        let src = "#![allow(unused)]\nfn a() {}\n";
        assert_eq!(run(&AllowAudit, "crates/dsp/src/x.rs", src).len(), 1);
    }

    #[test]
    fn ignores_other_allows() {
        let src = "#[allow(clippy::float_cmp)]\nfn a() {}\n";
        assert!(run(&AllowAudit, "crates/dsp/src/x.rs", src).is_empty());
    }
}

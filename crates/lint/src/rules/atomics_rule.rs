//! `atomics` — atomic call sites must follow the ordering protocol
//! declared for their atomic in `[atomics]` in `lint.toml`.
//!
//! The rule runs [`crate::atomics::analyze`] with an empty active-cfg
//! set (the shipped configuration — `--cfg sync_mutant` is only
//! reachable through the dedicated CLI subcommand, which is how CI
//! proves the seeded ordering mutant is caught). Each finding carries
//! the witness call chain from the nearest public entry point, like
//! `panic-reach` and `hot-path-cost`.

use crate::atomics;
use crate::callgraph::Workspace;
use crate::report::{Severity, Violation};
use crate::rules::SemanticRule;

/// See the module docs.
pub struct Atomics;

impl SemanticRule for Atomics {
    fn id(&self) -> &'static str {
        "atomics"
    }

    fn description(&self) -> &'static str {
        "atomic call site outside its declared [atomics] ordering protocol"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let report = atomics::analyze(ws, &[]);
        report
            .findings
            .into_iter()
            .map(|f| {
                let witness = if f.witness.is_empty() {
                    String::new()
                } else {
                    format!(": {}", f.witness.join(" -> "))
                };
                Violation {
                    rule: "atomics",
                    path: f.path,
                    line: f.line,
                    message: format!("[{}] {}{witness}", f.kind.tag(), f.message),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::source::SourceFile;

    #[test]
    fn violations_carry_kind_tag_and_witness() {
        let src = "pub struct S { hits: AtomicU64 }\n\
             impl S {\n\
               fn inner(&self) { self.hits.fetch_add(1, Ordering::SeqCst); }\n\
               pub fn bump(&self) { self.inner(); }\n\
             }\n";
        let sources = vec![SourceFile::parse("crates/tagbreathe/src/a.rs", src)];
        let config = Config::parse("[atomics]\nS.hits = \"relaxed\"\n").unwrap_or_default();
        let ws = Workspace::build(&sources, &config);
        let v = Atomics.check(&ws);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("[seqcst-overkill]"),
            "{}",
            v[0].message
        );
        assert!(
            v[0].message.contains("S::bump -> S::inner"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn no_declarations_no_violations() {
        let sources = vec![SourceFile::parse(
            "crates/tagbreathe/src/a.rs",
            "pub fn f() {}\n",
        )];
        let ws = Workspace::build(&sources, &Config::default());
        assert!(Atomics.check(&ws).is_empty());
    }
}

//! `float-eq` — exact floating-point comparison in production code.
//!
//! Phase unwrapping (Eq. 3) and displacement integration (Eq. 4) are
//! numerically delicate; `x == 0.3` style comparisons silently break
//! under rounding. The syntactic heuristic: an `==` or `!=` whose
//! immediate neighbour token is a float literal. Comparisons against
//! float *variables* need type knowledge we don't have — clippy's
//! `float_cmp` complements this rule there.
//!
//! Test code is exempt: asserting exact equality of a deterministic
//! computation is a legitimate test technique.

use super::{Rule, RuleCtx};
use crate::lexer::TokenKind;
use crate::report::{Severity, Violation};
use crate::source::SourceFile;

/// See the module docs.
pub struct FloatEq;

impl Rule for FloatEq {
    fn id(&self) -> &'static str {
        "float-eq"
    }

    fn description(&self) -> &'static str {
        "exact == / != against a float literal outside test code"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, file: &SourceFile, _ctx: &RuleCtx) -> Vec<Violation> {
        let code = file.code_tokens();
        let mut out = Vec::new();
        for i in 0..code.len() {
            let op = match &code[i].kind {
                TokenKind::Punct(p) if *p == "==" || *p == "!=" => *p,
                _ => continue,
            };
            if file.is_test_line(code[i].line) {
                continue;
            }
            let float_neighbour = [i.checked_sub(1), Some(i + 1)]
                .into_iter()
                .flatten()
                .filter_map(|j| code.get(j))
                .any(|t| matches!(t.kind, TokenKind::Float(_)));
            if float_neighbour {
                out.push(Violation {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line: code[i].line,
                    message: format!(
                        "float literal compared with `{op}` — use an epsilon helper (dsp::stats)"
                    ),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run;
    use super::*;

    #[test]
    fn flags_float_literal_comparison() {
        let v = run(
            &FloatEq,
            "crates/dsp/src/x.rs",
            "fn f(x: f64) -> bool { x == 0.3 }",
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("=="));
    }

    #[test]
    fn flags_literal_on_left_and_not_equal() {
        let v = run(
            &FloatEq,
            "crates/dsp/src/x.rs",
            "fn f(x: f64) -> bool { 0.0 != x }",
        );
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ignores_integer_comparison_and_test_code() {
        let src = "fn f(x: usize) -> bool { x == 3 }\n#[cfg(test)]\nmod tests {\n fn t(x: f64) { assert!(x == 0.0); }\n}\n";
        assert!(run(&FloatEq, "crates/dsp/src/x.rs", src).is_empty());
    }

    #[test]
    fn ignores_comparison_inside_string() {
        let v = run(
            &FloatEq,
            "crates/dsp/src/x.rs",
            r#"fn f() -> &'static str { "x == 0.0" }"#,
        );
        assert!(v.is_empty());
    }

    #[test]
    fn test_only_files_are_exempt() {
        let v = run(&FloatEq, "tests/t.rs", "fn f(x: f64) -> bool { x == 0.3 }");
        assert!(v.is_empty());
    }
}

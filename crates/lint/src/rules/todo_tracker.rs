//! `todo-comment` — TODO / FIXME tracker.
//!
//! Severity `warn` by default: the findings are inventory, not failures.
//! The per-file counts still live in the baseline, so `report` output
//! and the baseline diff show where deferred work accumulates.

use super::{Rule, RuleCtx};
use crate::lexer::TokenKind;
use crate::report::{Severity, Violation};
use crate::source::SourceFile;

/// See the module docs.
pub struct TodoTracker;

impl Rule for TodoTracker {
    fn id(&self) -> &'static str {
        "todo-comment"
    }

    fn description(&self) -> &'static str {
        "TODO / FIXME markers in comments"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warn
    }

    fn check(&self, file: &SourceFile, _ctx: &RuleCtx) -> Vec<Violation> {
        let mut out = Vec::new();
        for t in &file.tokens {
            let TokenKind::Comment(text) = &t.kind else {
                continue;
            };
            for marker in ["TODO", "FIXME"] {
                if let Some(pos) = text.find(marker) {
                    let rest: String = text[pos..].chars().take(60).collect();
                    out.push(Violation {
                        rule: self.id(),
                        path: file.rel_path.clone(),
                        line: t.line,
                        message: rest.trim_end().to_string(),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run;
    use super::*;

    #[test]
    fn finds_todo_and_fixme_in_line_and_block_comments() {
        let src = "// TODO: faster kernel\nfn f() {}\n/* FIXME handle NaN */\n";
        let v = run(&TodoTracker, "crates/dsp/src/x.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v[0].message.starts_with("TODO"));
        assert!(v[1].message.starts_with("FIXME"));
    }

    #[test]
    fn ignores_markers_in_code_and_strings() {
        let src = "fn todo_list() -> &'static str { \"TODO\" }\n";
        assert!(run(&TodoTracker, "crates/dsp/src/x.rs", src).is_empty());
    }
}

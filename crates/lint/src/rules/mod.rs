//! The rule registry.
//!
//! Each rule is a token-stream pattern matcher over one [`SourceFile`].
//! Rules are deliberately syntactic — no type inference — so every rule
//! documents the heuristic it uses and relies on the ratchet baseline to
//! absorb pre-existing (reviewed) findings.

mod allow_audit;
mod atomics_rule;
mod doc_comment;
mod float_eq;
mod hot_path;
mod lock_discipline;
mod lossy_cast;
mod must_use;
mod nan_guard;
mod panic_reach;
mod panics;
mod shard_safety;
mod todo_tracker;
mod unit_flow;

use crate::callgraph::Workspace;
use crate::report::{Severity, Violation};
use crate::source::SourceFile;

pub use allow_audit::AllowAudit;
pub use atomics_rule::Atomics;
pub use doc_comment::DocComment;
pub use float_eq::FloatEq;
pub use hot_path::HotPathCost;
pub use lock_discipline::LockDiscipline;
pub use lossy_cast::LossyCast;
pub use must_use::MissingMustUse;
pub use nan_guard::NanGuard;
pub use panic_reach::PanicReach;
pub use panics::LibPanic;
pub use shard_safety::ShardSafety;
pub use todo_tracker::TodoTracker;
pub use unit_flow::UnitDataflow;

/// Facts shared by all rules for a scan.
#[derive(Debug, Clone)]
pub struct RuleCtx {
    /// Crates held to library standards (no panicking call sites).
    pub lib_crates: Vec<String>,
}

/// A lint rule.
pub trait Rule {
    /// Stable identifier used in the baseline and config.
    fn id(&self) -> &'static str;
    /// One-line description for `tagbreathe-lint rules`.
    fn description(&self) -> &'static str;
    /// Enforcement level when not overridden in `lint.toml`.
    fn default_severity(&self) -> Severity;
    /// Scans one file.
    fn check(&self, file: &SourceFile, ctx: &RuleCtx) -> Vec<Violation>;
}

/// All shipped rules, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(FloatEq),
        Box::new(LibPanic),
        Box::new(LossyCast),
        Box::new(AllowAudit),
        Box::new(MissingMustUse),
        Box::new(DocComment),
        Box::new(TodoTracker),
    ]
}

/// A semantic rule: runs once over the whole parsed workspace (item
/// model + call graph) instead of per file.
pub trait SemanticRule {
    /// Stable identifier used in the baseline and config.
    fn id(&self) -> &'static str;
    /// One-line description for `tagbreathe-lint rules`.
    fn description(&self) -> &'static str;
    /// Enforcement level when not overridden in `lint.toml`.
    fn default_severity(&self) -> Severity;
    /// Scans the workspace.
    fn check(&self, ws: &Workspace) -> Vec<Violation>;
}

/// All shipped semantic rules, in reporting order.
pub fn semantic_rules() -> Vec<Box<dyn SemanticRule>> {
    vec![
        Box::new(PanicReach),
        Box::new(UnitDataflow),
        Box::new(LockDiscipline),
        Box::new(HotPathCost),
        Box::new(ShardSafety),
        Box::new(NanGuard),
        Box::new(Atomics),
    ]
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Runs one rule over inline source text at a given pseudo-path.
    pub fn run(rule: &dyn Rule, rel_path: &str, source: &str) -> Vec<Violation> {
        let file = SourceFile::parse(rel_path, source);
        let ctx = RuleCtx {
            lib_crates: [
                "dsp",
                "rfchannel",
                "breathing",
                "epcgen2",
                "tagbreathe",
                "obs",
            ]
            .map(String::from)
            .to_vec(),
        };
        rule.check(&file, &ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique() {
        let mut ids: Vec<&str> = all_rules().iter().map(|r| r.id()).collect();
        ids.extend(semantic_rules().iter().map(|r| r.id()));
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate rule id");
    }
}

//! `lib-panic` — panicking call sites in library crates.
//!
//! A production breathing monitor must degrade gracefully; `unwrap()` on
//! a malformed report stream takes the whole pipeline down. This rule
//! counts `.unwrap()`, `.expect(…)`, `panic!(…)` and `unreachable!(…)`
//! in the configured library crates' `src/` trees — *including* their
//! `#[cfg(test)]` modules, because test code that panics on `Err` hides
//! the error context that a `Result`-returning test would print, and
//! because keeping the count visible pressures the whole file toward
//! fallible flows. The ratchet baseline absorbs the frozen debt.

use super::{Rule, RuleCtx};
use crate::report::{Severity, Violation};
use crate::source::SourceFile;

/// See the module docs.
pub struct LibPanic;

impl Rule for LibPanic {
    fn id(&self) -> &'static str {
        "lib-panic"
    }

    fn description(&self) -> &'static str {
        "unwrap()/expect()/panic!/unreachable! in library crates"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, file: &SourceFile, ctx: &RuleCtx) -> Vec<Violation> {
        if !ctx.lib_crates.contains(&file.crate_name) || file.test_only {
            return Vec::new();
        }
        let code = file.code_tokens();
        let mut out = Vec::new();
        for i in 0..code.len() {
            // `.unwrap(` / `.expect(`
            if i + 2 < code.len() && code[i].kind.is_punct(".") {
                if let Some(name) = code[i + 1].kind.ident() {
                    if (name == "unwrap" || name == "expect") && code[i + 2].kind.is_punct("(") {
                        out.push(Violation {
                            rule: self.id(),
                            path: file.rel_path.clone(),
                            line: code[i + 1].line,
                            message: format!("call to .{name}() — prefer a Result/Option flow"),
                        });
                    }
                }
            }
            // `panic!` / `unreachable!`
            if i + 1 < code.len() && code[i + 1].kind.is_punct("!") {
                if let Some(name) = code[i].kind.ident() {
                    if name == "panic" || name == "unreachable" {
                        out.push(Violation {
                            rule: self.id(),
                            path: file.rel_path.clone(),
                            line: code[i].line,
                            message: format!("{name}! in library code"),
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run;
    use super::*;

    #[test]
    fn flags_all_four_forms() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    let a = x.unwrap();\n    let b = x.expect(\"b\");\n    if a == 0 { panic!(\"zero\") }\n    if b == 1 { unreachable!() }\n    a\n}\n";
        let v = run(&LibPanic, "crates/dsp/src/x.rs", src);
        assert_eq!(v.len(), 4);
        assert_eq!(v.iter().map(|v| v.line).collect::<Vec<_>>(), [2, 3, 4, 5]);
    }

    #[test]
    fn counts_test_modules_inside_lib_crates() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { Some(1).unwrap(); }\n}\n";
        assert_eq!(run(&LibPanic, "crates/dsp/src/x.rs", src).len(), 1);
    }

    #[test]
    fn ignores_non_library_crates_and_test_files() {
        let src = "fn f() { Some(1).unwrap(); }";
        assert!(run(&LibPanic, "crates/lint/src/x.rs", src).is_empty());
        assert!(run(&LibPanic, "crates/dsp/tests/t.rs", src).is_empty());
        assert!(run(&LibPanic, "src/bin/cli.rs", src).is_empty());
    }

    #[test]
    fn ignores_identifiers_that_merely_contain_the_names() {
        let src = "fn f(x: Result<u8, u8>) -> u8 { x.unwrap_or(3) }";
        assert!(run(&LibPanic, "crates/dsp/src/x.rs", src).is_empty());
    }

    #[test]
    fn ignores_mentions_in_strings_and_comments() {
        let src = "// never unwrap() here\nfn f() -> &'static str { \"panic!\" }\n";
        assert!(run(&LibPanic, "crates/dsp/src/x.rs", src).is_empty());
    }
}

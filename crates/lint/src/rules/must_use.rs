//! `missing-must-use` — pure DSP computations whose results can be
//! silently dropped.
//!
//! Every `pub fn … -> f64` / `-> Vec<f64>` in `crates/dsp` is a pure
//! computation (the crate holds no I/O or interior mutability); calling
//! one and discarding the result is always a bug. `#[must_use]` turns
//! that bug into a compiler warning. The rule is scoped to the `dsp`
//! crate where the purity convention holds by design.

use super::{Rule, RuleCtx};
use crate::lexer::TokenKind;
use crate::report::{Severity, Violation};
use crate::source::SourceFile;

/// Return types that must not be silently discarded.
const TRACKED_RETURNS: &[&str] = &["f64", "Vec<f64>"];

/// See the module docs.
pub struct MissingMustUse;

impl Rule for MissingMustUse {
    fn id(&self) -> &'static str {
        "missing-must-use"
    }

    fn description(&self) -> &'static str {
        "pub fn -> f64 / Vec<f64> in crates/dsp without #[must_use]"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, file: &SourceFile, _ctx: &RuleCtx) -> Vec<Violation> {
        if file.crate_name != "dsp" || file.test_only {
            return Vec::new();
        }
        let code = file.code_tokens();
        let mut out = Vec::new();
        for i in 0..code.len() {
            if !(code[i].kind.is_ident("pub")
                && code.get(i + 1).is_some_and(|t| t.kind.is_ident("fn")))
            {
                continue;
            }
            if file.is_test_line(code[i].line) {
                continue;
            }
            let Some(name) = code.get(i + 2).and_then(|t| t.kind.ident()) else {
                continue;
            };
            let Some(ret) = return_type(&code, i + 2) else {
                continue;
            };
            if TRACKED_RETURNS.contains(&ret.as_str()) && !has_must_use_attr(&code, i) {
                out.push(Violation {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line: code[i].line,
                    message: format!(
                        "pub fn {name} returns {ret} — add #[must_use] (pure computation)"
                    ),
                });
            }
        }
        out
    }
}

/// Extracts the return type of the fn whose name sits at `name_idx`, as a
/// whitespace-free token concatenation (e.g. `Vec<f64>`), or `None` for
/// `()` returns. Heuristic: find the parameter list's `(`, match parens,
/// then read tokens after `->` until the body `{`, a `where` clause or a
/// terminating `;`.
fn return_type(code: &[&crate::lexer::Token], name_idx: usize) -> Option<String> {
    let open = (name_idx..code.len().min(name_idx + 24)).find(|&j| code[j].kind.is_punct("("))?;
    let mut depth = 0usize;
    let mut close = None;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.kind.is_punct("(") {
            depth += 1;
        } else if t.kind.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                close = Some(j);
                break;
            }
        }
    }
    let close = close?;
    if !code.get(close + 1)?.kind.is_punct("->") {
        return None;
    }
    let mut ret = String::new();
    for t in code.iter().skip(close + 2) {
        match &t.kind {
            TokenKind::Punct("{") => break,
            TokenKind::Ident(s) if s == "where" => break,
            TokenKind::Punct(";") => break,
            TokenKind::Ident(s) => ret.push_str(s),
            TokenKind::Lifetime(l) => {
                ret.push('\'');
                ret.push_str(l);
            }
            TokenKind::Punct(p) => ret.push_str(p),
            _ => ret.push('?'),
        }
    }
    Some(ret)
}

/// Walks attribute groups immediately above token `i` looking for
/// `must_use` (doc comments are not code tokens, so contiguity holds).
fn has_must_use_attr(code: &[&crate::lexer::Token], i: usize) -> bool {
    let mut end = i; // exclusive end of the region before `pub`
    while end > 0 && code[end - 1].kind.is_punct("]") {
        // Find the matching '[' backwards.
        let mut depth = 0usize;
        let mut j = end - 1;
        loop {
            if code[j].kind.is_punct("]") {
                depth += 1;
            } else if code[j].kind.is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return false;
            }
            j -= 1;
        }
        // Expect '#' before the '['.
        if j == 0 || !code[j - 1].kind.is_punct("#") {
            return false;
        }
        if code[j..end - 1].iter().any(|t| t.kind.is_ident("must_use")) {
            return true;
        }
        end = j - 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::super::testutil::run;
    use super::*;

    #[test]
    fn flags_missing_on_f64_and_vec_f64() {
        let src =
            "pub fn rms(x: &[f64]) -> f64 { 0.0 }\npub fn taps(n: usize) -> Vec<f64> { vec![] }\n";
        let v = run(&MissingMustUse, "crates/dsp/src/x.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v[0].message.contains("rms"));
    }

    #[test]
    fn satisfied_by_attribute_even_with_doc_comments_between() {
        let src = "#[must_use]\n/// Mean.\npub fn mean(x: &[f64]) -> f64 { 0.0 }\n";
        assert!(run(&MissingMustUse, "crates/dsp/src/x.rs", src).is_empty());
        let src2 = "/// Docs.\n#[must_use]\npub fn mean(x: &[f64]) -> f64 { 0.0 }\n";
        assert!(run(&MissingMustUse, "crates/dsp/src/x.rs", src2).is_empty());
    }

    #[test]
    fn other_returns_and_other_crates_ignored() {
        let src = "pub fn go(x: &mut [f64]) {}\npub fn n() -> usize { 0 }\n";
        assert!(run(&MissingMustUse, "crates/dsp/src/x.rs", src).is_empty());
        let f64_src = "pub fn rms(x: &[f64]) -> f64 { 0.0 }\n";
        assert!(run(&MissingMustUse, "crates/tagbreathe/src/x.rs", f64_src).is_empty());
    }

    #[test]
    fn result_wrapped_returns_are_not_flagged() {
        let src = "pub fn f(x: &[f64]) -> Result<f64, Error> { Ok(0.0) }\n";
        assert!(run(&MissingMustUse, "crates/dsp/src/x.rs", src).is_empty());
    }

    #[test]
    fn generic_params_are_handled() {
        let src = "pub fn g<T: Into<f64>>(x: T) -> f64 { x.into() }\n";
        assert_eq!(run(&MissingMustUse, "crates/dsp/src/x.rs", src).len(), 1);
    }

    #[test]
    fn test_modules_in_dsp_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n pub fn helper() -> f64 { 0.0 }\n}\n";
        assert!(run(&MissingMustUse, "crates/dsp/src/x.rs", src).is_empty());
    }
}

//! `hot-path-cost` — heap allocations and keyed lookups reachable from
//! the configured ingest roots.
//!
//! The slab/SoA refactor needs the per-report path allocation-free and
//! map-lookup-light; this rule turns [`crate::hotpath::inventory`] into
//! ratcheted violations so new cost can never sneak onto the hot path
//! unnoticed, and existing cost burns down monotonically. Each finding
//! carries the witness call chain from its root, like `panic-reach`.
//!
//! A configured root that matches no workspace function is itself a
//! violation (reported against `lint.toml`), so a rename cannot silently
//! disable the pass.

use crate::callgraph::Workspace;
use crate::hotpath;
use crate::report::{Severity, Violation};
use crate::rules::SemanticRule;

/// See the module docs.
pub struct HotPathCost;

impl SemanticRule for HotPathCost {
    fn id(&self) -> &'static str {
        "hot-path-cost"
    }

    fn description(&self) -> &'static str {
        "heap allocation or keyed map lookup reachable from a hot ingest root"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let inv = hotpath::inventory(ws);
        let mut violations = Vec::new();
        for root in &inv.unmatched_roots {
            violations.push(Violation {
                rule: "hot-path-cost",
                path: "lint.toml".to_string(),
                line: 1,
                message: format!("[hotpath] root `{root}` matches no workspace function"),
            });
        }
        for site in &inv.sites {
            violations.push(Violation {
                rule: "hot-path-cost",
                path: site.path.clone(),
                line: site.line,
                message: format!(
                    "{} `{}` on hot path: {}",
                    site.kind.human(),
                    site.what,
                    site.witness.join(" -> ")
                ),
            });
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, HotPathConfig};
    use crate::source::SourceFile;

    fn run(files: &[(&str, &str)], roots: &[&str]) -> Vec<Violation> {
        let sources: Vec<SourceFile> = files.iter().map(|(p, t)| SourceFile::parse(p, t)).collect();
        let config = Config {
            lib_crates: vec!["tagbreathe".to_string()],
            hotpath: HotPathConfig {
                roots: roots.iter().map(|s| s.to_string()).collect(),
                allow: Vec::new(),
            },
            ..Config::default()
        };
        let ws = Workspace::build(&sources, &config);
        HotPathCost.check(&ws)
    }

    #[test]
    fn no_roots_means_no_findings() {
        let v = run(
            &[(
                "crates/tagbreathe/src/a.rs",
                "pub fn f() { let _v: Vec<f64> = Vec::new(); }\n",
            )],
            &[],
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn alloc_reachable_from_root_is_flagged_with_chain() {
        let v = run(
            &[(
                "crates/tagbreathe/src/a.rs",
                "struct S;\nimpl S {\n  pub fn push(&self) { self.inner(); }\n  fn inner(&self) { let _s = \"x\".to_string(); }\n}\n",
            )],
            &["S::push"],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("S::push -> S::inner"),
            "{}",
            v[0].message
        );
        assert!(v[0].message.contains(".to_string()"), "{}", v[0].message);
    }

    #[test]
    fn unmatched_root_is_a_config_violation() {
        let v = run(
            &[("crates/tagbreathe/src/a.rs", "pub fn f() {}\n")],
            &["Ghost::push"],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].path, "lint.toml");
        assert!(v[0].message.contains("Ghost::push"), "{}", v[0].message);
    }
}

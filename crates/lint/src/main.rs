//! CLI for the workspace lint engine.
//!
//! ```text
//! tagbreathe-lint check   [--root DIR] [--update-baseline] [--format F] [--out FILE]
//! tagbreathe-lint report  [--root DIR] [--format F] [--out FILE]
//! tagbreathe-lint hotpath [--root DIR] [--out FILE] [--max-sites N]
//! tagbreathe-lint atomics [--root DIR] [--out FILE] [--max-violations N] [--cfg NAME]...
//! tagbreathe-lint rules
//! tagbreathe-lint validate-json FILE
//! ```
//!
//! `check` exits non-zero iff an error-severity rule found more
//! violations in some file than the ratchet baseline allows. `--format
//! sarif` additionally renders the scan as a SARIF 2.1.0 log (written to
//! `--out`, or stdout for `report`); `hotpath` emits the machine-readable
//! hot-path cost inventory (self-validated JSON) and exits non-zero when
//! a configured root matches nothing or the site count exceeds
//! `--max-sites`, so CI can ratchet the inventory downward;
//! `validate-json` runs the in-tree RFC 8259 validator over a file so CI
//! can prove the artifact parses; `atomics` emits the atomics-discipline
//! report (self-validated JSON) and exits non-zero when findings exceed
//! `--max-violations` — `--cfg sync_mutant` re-resolves the workspace's
//! `Ordering` constants under that cfg so CI can prove the seeded
//! ordering mutant is caught without rebuilding anything.

use std::path::PathBuf;
use std::process::ExitCode;
use tagbreathe_lint::config::Config;
use tagbreathe_lint::engine::{
    check, load_config, load_workspace, regressed_violations, scan, BASELINE_FILE,
};
use tagbreathe_lint::sarif::{self, RuleMeta};
use tagbreathe_lint::{atomics, baseline, hotpath, rules};

/// Parsed command line.
struct Cli {
    command: String,
    root: PathBuf,
    update_baseline: bool,
    sarif: bool,
    out: Option<PathBuf>,
    /// Positional argument of `validate-json`.
    file: Option<PathBuf>,
    /// `hotpath --max-sites`: fail when the inventory exceeds this.
    max_sites: Option<usize>,
    /// `atomics --max-violations`: fail when findings exceed this.
    max_violations: Option<usize>,
    /// `atomics --cfg`: active cfg flags for const resolution.
    cfgs: Vec<String>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(c) => c,
        Err(problem) => return usage(&problem),
    };
    match cli.command.as_str() {
        "rules" => run_rules(),
        "report" => run_report(&cli),
        "check" => run_check(&cli),
        "hotpath" => run_hotpath(&cli),
        "atomics" => run_atomics(&cli),
        "validate-json" => run_validate_json(&cli),
        other => usage(&format!("unknown command {other:?}")),
    }
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        command: String::new(),
        root: PathBuf::from("."),
        update_baseline: false,
        sarif: false,
        out: None,
        file: None,
        max_sites: None,
        max_violations: None,
        cfgs: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" | "report" | "rules" | "hotpath" | "atomics" | "validate-json"
                if cli.command.is_empty() =>
            {
                cli.command = args[i].clone();
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => cli.root = PathBuf::from(dir),
                    None => return Err("--root needs a directory".to_string()),
                }
            }
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("human") => cli.sarif = false,
                    Some("sarif") => cli.sarif = true,
                    Some(other) => {
                        return Err(format!("unknown format {other:?} (human or sarif)"))
                    }
                    None => return Err("--format needs a value".to_string()),
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => cli.out = Some(PathBuf::from(path)),
                    None => return Err("--out needs a file path".to_string()),
                }
            }
            "--update-baseline" => cli.update_baseline = true,
            "--max-sites" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse().ok()) {
                    Some(n) => cli.max_sites = Some(n),
                    None => return Err("--max-sites needs a number".to_string()),
                }
            }
            "--max-violations" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse().ok()) {
                    Some(n) => cli.max_violations = Some(n),
                    None => return Err("--max-violations needs a number".to_string()),
                }
            }
            "--cfg" => {
                i += 1;
                match args.get(i) {
                    Some(name) => cli.cfgs.push(name.clone()),
                    None => return Err("--cfg needs a flag name".to_string()),
                }
            }
            other if cli.command == "validate-json" && cli.file.is_none() => {
                cli.file = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if cli.command.is_empty() {
        return Err("missing command".to_string());
    }
    Ok(cli)
}

fn run_rules() -> ExitCode {
    for rule in rules::all_rules() {
        println!(
            "{:<18} {:<6} {}",
            rule.id(),
            rule.default_severity().to_string(),
            rule.description()
        );
    }
    for rule in rules::semantic_rules() {
        println!(
            "{:<18} {:<6} {}",
            rule.id(),
            rule.default_severity().to_string(),
            rule.description()
        );
    }
    ExitCode::SUCCESS
}

fn run_report(cli: &Cli) -> ExitCode {
    let config = match load_config(&cli.root) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let outcome = match scan(&cli.root, &config) {
        Ok(o) => o,
        Err(e) => return fail(&format!("scan failed: {e}")),
    };
    if cli.sarif {
        let text = sarif::render(&rule_metas(&config), &outcome.violations);
        return emit(cli.out.as_deref(), &text);
    }
    for v in &outcome.violations {
        println!("{v}");
    }
    println!(
        "{} violations in {} files scanned",
        outcome.violations.len(),
        outcome.files_scanned
    );
    ExitCode::SUCCESS
}

fn run_check(cli: &Cli) -> ExitCode {
    let result = match check(&cli.root) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    if cli.sarif {
        let config = match load_config(&cli.root) {
            Ok(c) => c,
            Err(e) => return fail(&e),
        };
        let text = sarif::render(&rule_metas(&config), &result.outcome.violations);
        // Always write the artifact, pass or fail, so CI can upload it.
        let status = emit(cli.out.as_deref(), &text);
        if status != ExitCode::SUCCESS {
            return status;
        }
    }
    if cli.update_baseline {
        let text = baseline::render(&result.outcome.enforced_counts);
        if let Err(e) = std::fs::write(cli.root.join(BASELINE_FILE), text) {
            return fail(&format!("writing {BASELINE_FILE}: {e}"));
        }
        println!(
            "lint: baseline refrozen at {} violations across {} (rule, file) pairs",
            result.outcome.enforced.len(),
            result.outcome.enforced_counts.len()
        );
        return ExitCode::SUCCESS;
    }
    if !result.passed() {
        eprintln!("lint: NEW violations beyond the ratchet baseline:\n");
        for v in regressed_violations(&result.outcome, &result.regressions) {
            eprintln!("  {v}");
        }
        eprintln!();
        for r in &result.regressions {
            eprintln!(
                "  {}: {} has {} (baseline allows {})",
                r.rule, r.path, r.actual, r.allowed
            );
        }
        eprintln!(
            "\nFix the new violations, or (after review) refreeze with:\n  cargo run -p tagbreathe-lint -- check --update-baseline"
        );
        return ExitCode::FAILURE;
    }
    if !result.slack.is_empty() {
        println!(
            "lint: debt shrank in {} (rule, file) pairs — tighten the ratchet with --update-baseline",
            result.slack.len()
        );
    }
    println!(
        "lint: OK — {} tracked violations within baseline, {} files scanned",
        result.outcome.enforced.len(),
        result.outcome.files_scanned
    );
    ExitCode::SUCCESS
}

fn run_hotpath(cli: &Cli) -> ExitCode {
    let config = match load_config(&cli.root) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let ws = match load_workspace(&cli.root, &config) {
        Ok(w) => w,
        Err(e) => return fail(&format!("scan failed: {e}")),
    };
    let inv = hotpath::inventory(&ws);
    let text = hotpath::render_json(&ws, &inv);
    // The report validates itself before anything consumes it.
    if let Err(e) = tagbreathe_obs::json::validate(&text) {
        return fail(&format!(
            "internal error: hotpath report is invalid JSON at offset {}: {}",
            e.offset, e.what
        ));
    }
    let status = emit(cli.out.as_deref(), &text);
    if status != ExitCode::SUCCESS {
        return status;
    }
    for root in &inv.unmatched_roots {
        eprintln!("lint: [hotpath] root `{root}` matches no workspace function");
    }
    if !inv.unmatched_roots.is_empty() {
        return ExitCode::FAILURE;
    }
    if let Some(max) = cli.max_sites {
        if inv.sites.len() > max {
            eprintln!(
                "lint: hot-path inventory has {} cost sites, budget is {max}",
                inv.sites.len()
            );
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "lint: hot path has {} cost sites across {} reachable fns",
        inv.sites.len(),
        inv.reachable_fns
    );
    ExitCode::SUCCESS
}

fn run_atomics(cli: &Cli) -> ExitCode {
    let config = match load_config(&cli.root) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let ws = match load_workspace(&cli.root, &config) {
        Ok(w) => w,
        Err(e) => return fail(&format!("scan failed: {e}")),
    };
    let report = atomics::analyze(&ws, &cli.cfgs);
    let text = atomics::render_json(&report);
    // The report validates itself before anything consumes it.
    if let Err(e) = tagbreathe_obs::json::validate(&text) {
        return fail(&format!(
            "internal error: atomics report is invalid JSON at offset {}: {}",
            e.offset, e.what
        ));
    }
    let status = emit(cli.out.as_deref(), &text);
    if status != ExitCode::SUCCESS {
        return status;
    }
    for f in &report.findings {
        eprintln!(
            "lint: [atomics/{}] {}:{}: {}",
            f.kind.tag(),
            f.path,
            f.line,
            f.message
        );
        if !f.witness.is_empty() {
            eprintln!("      via {}", f.witness.join(" -> "));
        }
    }
    eprintln!(
        "lint: atomics checked {} ops against {} declarations ({} findings{})",
        report.checked_ops,
        report.decl_count,
        report.findings.len(),
        if cli.cfgs.is_empty() {
            String::new()
        } else {
            format!(", cfgs: {}", cli.cfgs.join(","))
        }
    );
    if let Some(max) = cli.max_violations {
        if report.findings.len() > max {
            eprintln!(
                "lint: atomics has {} findings, budget is {max}",
                report.findings.len()
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn run_validate_json(cli: &Cli) -> ExitCode {
    let Some(path) = &cli.file else {
        return usage("validate-json needs a file argument");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("{}: {e}", path.display())),
    };
    match tagbreathe_obs::json::validate(&text) {
        Ok(()) => {
            println!("{}: valid JSON ({} bytes)", path.display(), text.len());
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!(
            "{}: invalid JSON at offset {}: {}",
            path.display(),
            e.offset,
            e.what
        )),
    }
}

/// Rule table (with effective severities) for the SARIF driver block.
fn rule_metas(config: &Config) -> Vec<RuleMeta> {
    let mut metas = Vec::new();
    for rule in rules::all_rules() {
        metas.push(RuleMeta {
            id: rule.id(),
            description: rule.description(),
            severity: config.severity_for(rule.id(), rule.default_severity()),
        });
    }
    for rule in rules::semantic_rules() {
        metas.push(RuleMeta {
            id: rule.id(),
            description: rule.description(),
            severity: config.severity_for(rule.id(), rule.default_severity()),
        });
    }
    metas
}

/// Writes rendered output to a file, or stdout when no path was given.
fn emit(out: Option<&std::path::Path>, text: &str) -> ExitCode {
    match out {
        Some(path) => match std::fs::write(path, text) {
            Ok(()) => {
                println!("lint: wrote {}", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => fail(&format!("writing {}: {e}", path.display())),
        },
        None => {
            print!("{text}");
            ExitCode::SUCCESS
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!(
        "tagbreathe-lint: {problem}\n\nusage:\n  tagbreathe-lint check   [--root DIR] [--update-baseline] [--format human|sarif] [--out FILE]\n  tagbreathe-lint report  [--root DIR] [--format human|sarif] [--out FILE]\n  tagbreathe-lint hotpath [--root DIR] [--out FILE] [--max-sites N]\n  tagbreathe-lint atomics [--root DIR] [--out FILE] [--max-violations N] [--cfg NAME]...\n  tagbreathe-lint rules\n  tagbreathe-lint validate-json FILE"
    );
    ExitCode::FAILURE
}

fn fail(message: &str) -> ExitCode {
    eprintln!("tagbreathe-lint: {message}");
    ExitCode::FAILURE
}

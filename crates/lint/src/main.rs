//! CLI for the workspace lint engine.
//!
//! ```text
//! tagbreathe-lint check  [--root DIR] [--update-baseline]
//! tagbreathe-lint report [--root DIR]
//! tagbreathe-lint rules
//! ```
//!
//! `check` exits non-zero iff an error-severity rule found more
//! violations in some file than the ratchet baseline allows.

use std::path::PathBuf;
use std::process::ExitCode;
use tagbreathe_lint::engine::{check, load_config, regressed_violations, scan, BASELINE_FILE};
use tagbreathe_lint::{baseline, rules};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = PathBuf::from(".");
    let mut update_baseline = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" | "report" | "rules" if command.is_none() => {
                command = Some(args[i].clone());
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = PathBuf::from(dir),
                    None => return usage("--root needs a directory"),
                }
            }
            "--update-baseline" => update_baseline = true,
            other => return usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    let Some(command) = command else {
        return usage("missing command");
    };

    match command.as_str() {
        "rules" => {
            for rule in rules::all_rules() {
                println!(
                    "{:<18} {:<6} {}",
                    rule.id(),
                    rule.default_severity().to_string(),
                    rule.description()
                );
            }
            ExitCode::SUCCESS
        }
        "report" => {
            let config = match load_config(&root) {
                Ok(c) => c,
                Err(e) => return fail(&e),
            };
            let outcome = match scan(&root, &config) {
                Ok(o) => o,
                Err(e) => return fail(&format!("scan failed: {e}")),
            };
            for v in &outcome.violations {
                println!("{v}");
            }
            println!(
                "{} violations in {} files scanned",
                outcome.violations.len(),
                outcome.files_scanned
            );
            ExitCode::SUCCESS
        }
        "check" => {
            let result = match check(&root) {
                Ok(r) => r,
                Err(e) => return fail(&e),
            };
            if update_baseline {
                let text = baseline::render(&result.outcome.enforced_counts);
                if let Err(e) = std::fs::write(root.join(BASELINE_FILE), text) {
                    return fail(&format!("writing {BASELINE_FILE}: {e}"));
                }
                println!(
                    "lint: baseline refrozen at {} violations across {} (rule, file) pairs",
                    result.outcome.enforced.len(),
                    result.outcome.enforced_counts.len()
                );
                return ExitCode::SUCCESS;
            }
            if !result.passed() {
                eprintln!("lint: NEW violations beyond the ratchet baseline:\n");
                for v in regressed_violations(&result.outcome, &result.regressions) {
                    eprintln!("  {v}");
                }
                eprintln!();
                for r in &result.regressions {
                    eprintln!(
                        "  {}: {} has {} (baseline allows {})",
                        r.rule, r.path, r.actual, r.allowed
                    );
                }
                eprintln!(
                    "\nFix the new violations, or (after review) refreeze with:\n  cargo run -p tagbreathe-lint -- check --update-baseline"
                );
                return ExitCode::FAILURE;
            }
            if !result.slack.is_empty() {
                println!(
                    "lint: debt shrank in {} (rule, file) pairs — tighten the ratchet with --update-baseline",
                    result.slack.len()
                );
            }
            println!(
                "lint: OK — {} tracked violations within baseline, {} files scanned",
                result.outcome.enforced.len(),
                result.outcome.files_scanned
            );
            ExitCode::SUCCESS
        }
        _ => unreachable!("command validated above"),
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!(
        "tagbreathe-lint: {problem}\n\nusage:\n  tagbreathe-lint check  [--root DIR] [--update-baseline]\n  tagbreathe-lint report [--root DIR]\n  tagbreathe-lint rules"
    );
    ExitCode::FAILURE
}

fn fail(message: &str) -> ExitCode {
    eprintln!("tagbreathe-lint: {message}");
    ExitCode::FAILURE
}

//! SARIF 2.1.0 emission.
//!
//! Renders a scan's violations as a [SARIF] log so editors and CI
//! annotation tooling can consume the lint results. The JSON is built by
//! hand (the workspace is zero-external-dependency) and `ci.sh`
//! round-trips the artifact through the in-tree `tagbreathe_obs::json`
//! validator (`tagbreathe-lint validate-json`), so a malformed emitter
//! fails the build rather than producing a silently broken artifact.
//!
//! [SARIF]: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html

use crate::report::{Severity, Violation};
use std::fmt::Write as _;

/// Static description of one rule for the `tool.driver.rules` table.
#[derive(Debug, Clone)]
pub struct RuleMeta {
    /// Stable rule identifier (`lib-panic`, `panic-reach`, …).
    pub id: &'static str,
    /// One-line rule description.
    pub description: &'static str,
    /// Effective severity for this scan (after `lint.toml` overrides).
    pub severity: Severity,
}

/// Renders a complete SARIF 2.1.0 log for one scan.
#[must_use]
pub fn render(rules: &[RuleMeta], violations: &[Violation]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \"2.1.0\",\n",
    );
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"tagbreathe-lint\",\n");
    out.push_str("          \"informationUri\": \"https://github.com/tagbreathe\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in rules.iter().enumerate() {
        let sep = if i + 1 < rules.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}, \
             \"defaultConfiguration\": {{\"level\": {}}}}}{sep}",
            json_string(rule.id),
            json_string(rule.description),
            json_string(level(rule.severity)),
        );
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, v) in violations.iter().enumerate() {
        let sev = rules
            .iter()
            .find(|r| r.id == v.rule)
            .map_or(Severity::Warn, |r| r.severity);
        let sep = if i + 1 < violations.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "        {{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}{sep}",
            json_string(v.rule),
            json_string(level(sev)),
            json_string(&v.message),
            json_string(&v.path),
            v.line,
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// SARIF `level` for a severity.
fn level(s: Severity) -> &'static str {
    match s {
        Severity::Error => "error",
        Severity::Warn => "warning",
        Severity::Off => "none",
    }
}

/// Encodes a string as a JSON string literal (RFC 8259 escaping).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if c < '\u{20}' => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<RuleMeta>, Vec<Violation>) {
        let rules = vec![
            RuleMeta {
                id: "lib-panic",
                description: "panicking call site in a library crate",
                severity: Severity::Error,
            },
            RuleMeta {
                id: "todo-tracker",
                description: "TODO without an issue reference",
                severity: Severity::Warn,
            },
        ];
        let violations = vec![
            Violation {
                rule: "lib-panic",
                path: "crates/dsp/src/lib.rs".to_string(),
                line: 42,
                message: "`.unwrap()` in library code — use `?` or handle the None".to_string(),
            },
            Violation {
                rule: "todo-tracker",
                path: "crates/dsp/src/filter.rs".to_string(),
                line: 7,
                message: "TODO with \"quotes\" and a\nnewline".to_string(),
            },
        ];
        (rules, violations)
    }

    #[test]
    fn output_is_valid_json() {
        let (rules, violations) = sample();
        let text = render(&rules, &violations);
        let verdict = tagbreathe_obs::json::validate(&text);
        assert!(verdict.is_ok(), "invalid JSON ({verdict:?}):\n{text}");
    }

    #[test]
    fn output_carries_required_sarif_fields() {
        let (rules, violations) = sample();
        let text = render(&rules, &violations);
        for needle in [
            "\"version\": \"2.1.0\"",
            "\"name\": \"tagbreathe-lint\"",
            "\"ruleId\": \"lib-panic\"",
            "\"level\": \"error\"",
            "\"level\": \"warning\"",
            "\"uri\": \"crates/dsp/src/lib.rs\"",
            "\"startLine\": 42",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn escaping_survives_validation() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_scan_is_still_valid() {
        let text = render(&[], &[]);
        assert!(tagbreathe_obs::json::validate(&text).is_ok(), "{text}");
    }
}

//! Hand-parsed configuration (`lint.toml` at the workspace root).
//!
//! The workspace is zero-external-dependency, so no TOML crate: this
//! parses the small INI-style subset the lint engine needs — `[section]`
//! headers and `key = "value"` pairs, `#` comments, blank lines. Unknown
//! keys are rejected so typos fail loudly instead of silently disabling
//! a rule.

use crate::report::Severity;
use std::collections::BTreeMap;

/// A declared unit-conversion function: calling `name(x)` takes a value
/// in `from` units and yields one in `to` units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conversion {
    /// Function name, e.g. `hz_to_bpm`.
    pub name: String,
    /// Unit of the argument.
    pub from: String,
    /// Unit of the result.
    pub to: String,
}

/// Physical-units configuration for the `unit-dataflow` rule
/// (`[units]` in `lint.toml`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitsConfig {
    /// Recognised unit suffixes, without the underscore: an identifier
    /// `rate_hz` (or a call to a fn named `…_hz`) carries unit `hz`.
    pub suffixes: Vec<String>,
    /// Declared conversion functions.
    pub conversions: Vec<Conversion>,
}

impl Default for UnitsConfig {
    fn default() -> Self {
        UnitsConfig {
            suffixes: ["rad", "hz", "bpm", "m", "s", "dbm"]
                .map(String::from)
                .to_vec(),
            conversions: Vec::new(),
        }
    }
}

impl UnitsConfig {
    /// The unit carried by an identifier, by suffix convention. The whole
    /// name matching a multi-letter suffix also counts (`hz` alone is in
    /// Hz, but a variable named `m` is not in metres — single letters are
    /// too common as ordinary names). Longest suffix wins (`_dbm` before
    /// `_m`).
    pub fn unit_of_name(&self, name: &str) -> Option<&str> {
        let mut best: Option<&str> = None;
        for s in &self.suffixes {
            let hit = (name == s && s.len() >= 2) || name.ends_with(&format!("_{s}"));
            if hit && best.is_none_or(|b| s.len() > b.len()) {
                best = Some(s);
            }
        }
        best
    }

    /// The conversion declared for a function name, if any.
    pub fn conversion_for(&self, fn_name: &str) -> Option<&Conversion> {
        self.conversions.iter().find(|c| c.name == fn_name)
    }
}

/// Hot-path cost configuration for the `hot-path-cost` rule
/// (`[hotpath]` in `lint.toml`). Empty roots disable the rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HotPathConfig {
    /// Ingest-root functions, as `Type::name` labels or bare free-fn
    /// names. The rule walks their transitive call closure.
    pub roots: Vec<String>,
    /// Functions (same label syntax) the walk does not descend into —
    /// reviewed cold seams such as snapshot or eviction cadence code.
    pub allow: Vec<String>,
}

/// Shard-safety configuration for the `shard-safety` rule
/// (`[shard]` in `lint.toml`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardConfig {
    /// Root state types whose reachable field closure must stay free of
    /// single-threaded shared-ownership types (`Rc`, `RefCell`, …).
    pub roots: Vec<String>,
}

/// NaN-guard configuration for the `nan-guard` rule
/// (`[nanguard]` in `lint.toml`). Empty paths disable the rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NanGuardConfig {
    /// Workspace-relative path prefixes the float-dataflow pass covers
    /// (signal-processing code where a NaN corrupts fusion weights).
    pub paths: Vec<String>,
}

/// The declared ordering protocol for one named atomic
/// (`[atomics]` in `lint.toml`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// A cross-thread publication point: every store must be `Release`
    /// (it publishes data written before it) and every load `Acquire`
    /// (it observes that data on another thread).
    ReleaseAcquire,
    /// A standalone counter or payload cell that carries no
    /// synchronisation of its own: all accesses must be `Relaxed`.
    Relaxed,
}

impl Protocol {
    /// Parses a declaration value: `"relaxed"` or
    /// `"publish(Release) / observe(Acquire)"` (whitespace-insensitive).
    #[must_use]
    pub fn parse(value: &str) -> Option<Protocol> {
        let norm: String = value
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect::<String>()
            .to_ascii_lowercase();
        match norm.as_str() {
            "relaxed" => Some(Protocol::Relaxed),
            "publish(release)/observe(acquire)" => Some(Protocol::ReleaseAcquire),
            _ => None,
        }
    }

    /// The canonical declaration text, for diagnostics.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            Protocol::ReleaseAcquire => "publish(Release) / observe(Acquire)",
            Protocol::Relaxed => "relaxed",
        }
    }
}

/// Atomics-discipline configuration for the `atomics` rule
/// (`[atomics]` in `lint.toml`). Each key names one atomic, either as
/// `Type.member` (a struct field, or an accessor method returning the
/// atomic) or as a bare member/binding name; the value declares its
/// protocol. No declarations disables the rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AtomicsConfig {
    /// Declarations in file order: key → protocol.
    pub decls: Vec<(String, Protocol)>,
    /// Crates whose atomic call sites the pass skips (`exempt-crates`):
    /// e.g. `syncmodel`, whose model shim intentionally mirrors the
    /// `std::sync::atomic` API.
    pub exempt: Vec<String>,
}

impl AtomicsConfig {
    /// Looks up the protocol declared for `Owner.member`, trying the
    /// qualified key first and then the bare member name.
    #[must_use]
    pub fn protocol_for(&self, owner: &str, member: &str) -> Option<(&str, Protocol)> {
        let qualified = format!("{owner}.{member}");
        self.decls
            .iter()
            .find(|(k, _)| *k == qualified)
            .or_else(|| self.decls.iter().find(|(k, _)| k == member))
            .map(|(k, p)| (k.as_str(), *p))
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Per-rule severity overrides (rule id → severity).
    pub severity: BTreeMap<String, Severity>,
    /// Crates whose code is held to library standards (the `lib-panic`
    /// rule applies only to these).
    pub lib_crates: Vec<String>,
    /// Directory names pruned from the workspace walk.
    pub skip_dirs: Vec<String>,
    /// Physical-units checking configuration.
    pub units: UnitsConfig,
    /// Hot-path cost roots and allow list.
    pub hotpath: HotPathConfig,
    /// Shard-safety root state types.
    pub shard: ShardConfig,
    /// Declared lock-acquisition order (`[locks] order`), coarsest lock
    /// first. Empty means no ordering is enforced.
    pub lock_order: Vec<String>,
    /// NaN-guard covered paths.
    pub nanguard: NanGuardConfig,
    /// Declared atomic ordering protocols.
    pub atomics: AtomicsConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            severity: BTreeMap::new(),
            lib_crates: ["dsp", "rfchannel", "breathing", "epcgen2", "tagbreathe"]
                .map(String::from)
                .to_vec(),
            skip_dirs: ["target", ".git", "fixtures"].map(String::from).to_vec(),
            units: UnitsConfig::default(),
            hotpath: HotPathConfig::default(),
            shard: ShardConfig::default(),
            lock_order: Vec::new(),
            nanguard: NanGuardConfig::default(),
            atomics: AtomicsConfig::default(),
        }
    }
}

/// A config-file problem, with the 1-indexed line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses configuration text. See the module docs for the grammar.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                let known = [
                    "severity", "engine", "units", "hotpath", "shard", "locks", "nanguard",
                    "atomics",
                ];
                if !known.contains(&section.as_str()) {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown section [{section}]"),
                    });
                }
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
                line: lineno,
                message: "expected `key = \"value\"`".to_string(),
            })?;
            let key = key.trim();
            let value = value.trim().trim_matches('"');
            match section.as_str() {
                "severity" => {
                    let sev = Severity::parse(value).ok_or_else(|| ConfigError {
                        line: lineno,
                        message: format!(
                            "invalid severity {value:?} (expected error, warn or off)"
                        ),
                    })?;
                    config.severity.insert(key.to_string(), sev);
                }
                "engine" => match key {
                    "lib-crates" => config.lib_crates = split_list(value),
                    "skip-dirs" => config.skip_dirs = split_list(value),
                    _ => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown engine key {key:?}"),
                        })
                    }
                },
                "units" => match key {
                    "suffixes" => config.units.suffixes = split_list(value),
                    "conversions" => {
                        config.units.conversions = parse_conversions(value, lineno)?;
                    }
                    _ => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown units key {key:?}"),
                        })
                    }
                },
                "hotpath" => match key {
                    "roots" => config.hotpath.roots = split_list(value),
                    "allow" => config.hotpath.allow = split_list(value),
                    _ => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown hotpath key {key:?}"),
                        })
                    }
                },
                "shard" => match key {
                    "roots" => config.shard.roots = split_list(value),
                    _ => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown shard key {key:?}"),
                        })
                    }
                },
                "locks" => match key {
                    "order" => config.lock_order = split_list(value),
                    _ => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown locks key {key:?}"),
                        })
                    }
                },
                "nanguard" => match key {
                    "paths" => config.nanguard.paths = split_list(value),
                    _ => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown nanguard key {key:?}"),
                        })
                    }
                },
                "atomics" if key == "exempt-crates" => {
                    config.atomics.exempt = split_list(value);
                }
                "atomics" => {
                    let proto = Protocol::parse(value).ok_or_else(|| ConfigError {
                        line: lineno,
                        message: format!(
                            "invalid atomics protocol {value:?} (expected \"relaxed\" or \
                             \"publish(Release) / observe(Acquire)\")"
                        ),
                    })?;
                    if config.atomics.decls.iter().any(|(k, _)| k == key) {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("duplicate atomics declaration {key:?}"),
                        });
                    }
                    config.atomics.decls.push((key.to_string(), proto));
                }
                _ => {
                    return Err(ConfigError {
                        line: lineno,
                        message: "key outside any [section]".to_string(),
                    })
                }
            }
        }
        Ok(config)
    }

    /// Severity for a rule, falling back to the rule's default.
    pub fn severity_for(&self, rule: &str, default: Severity) -> Severity {
        self.severity.get(rule).copied().unwrap_or(default)
    }
}

fn split_list(value: &str) -> Vec<String> {
    value
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Parses `name: from -> to` conversion entries, comma-separated.
fn parse_conversions(value: &str, lineno: usize) -> Result<Vec<Conversion>, ConfigError> {
    let mut out = Vec::new();
    for entry in value.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let parsed = entry.split_once(':').and_then(|(name, rest)| {
            let (from, to) = rest.split_once("->")?;
            Some(Conversion {
                name: name.trim().to_string(),
                from: from.trim().to_string(),
                to: to.trim().to_string(),
            })
        });
        match parsed {
            Some(c) if !c.name.is_empty() && !c.from.is_empty() && !c.to.is_empty() => {
                out.push(c);
            }
            _ => {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("invalid conversion {entry:?} (expected `name: from -> to`)"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_overrides() -> Result<(), ConfigError> {
        let cfg = Config::parse(
            "# comment\n\n[severity]\nfloat-eq = \"warn\"\n[engine]\nlib-crates = \"dsp, tagbreathe\"\n",
        )?;
        assert_eq!(
            cfg.severity_for("float-eq", Severity::Error),
            Severity::Warn
        );
        assert_eq!(cfg.lib_crates, vec!["dsp", "tagbreathe"]);
        Ok(())
    }

    #[test]
    fn parses_semantic_pass_sections() -> Result<(), ConfigError> {
        let cfg = Config::parse(
            "[hotpath]\nroots = \"UserStreamState::push, ingest\"\nallow = \"snapshot\"\n\
             [shard]\nroots = \"UserStreamState\"\n\
             [locks]\norder = \"registry, ring\"\n\
             [nanguard]\npaths = \"crates/dsp, crates/tagbreathe/src/quality.rs\"\n",
        )?;
        assert_eq!(cfg.hotpath.roots, vec!["UserStreamState::push", "ingest"]);
        assert_eq!(cfg.hotpath.allow, vec!["snapshot"]);
        assert_eq!(cfg.shard.roots, vec!["UserStreamState"]);
        assert_eq!(cfg.lock_order, vec!["registry", "ring"]);
        assert_eq!(cfg.nanguard.paths.len(), 2);
        Ok(())
    }

    #[test]
    fn parses_atomics_declarations() -> Result<(), ConfigError> {
        let cfg = Config::parse(
            "[atomics]\n\
             SpscRing.head = \"publish(Release) / observe(Acquire)\"\n\
             SpscRing.slot = \"relaxed\"\n\
             stop = \"publish(Release)/observe(Acquire)\"\n",
        )?;
        assert_eq!(cfg.atomics.decls.len(), 3);
        assert_eq!(
            cfg.atomics.protocol_for("SpscRing", "head"),
            Some(("SpscRing.head", Protocol::ReleaseAcquire))
        );
        assert_eq!(
            cfg.atomics.protocol_for("SpscRing", "slot"),
            Some(("SpscRing.slot", Protocol::Relaxed))
        );
        // Bare keys match the member regardless of owner.
        assert_eq!(
            cfg.atomics.protocol_for("ServerHandle", "stop"),
            Some(("stop", Protocol::ReleaseAcquire))
        );
        assert_eq!(cfg.atomics.protocol_for("SpscRing", "mask"), None);
        Ok(())
    }

    #[test]
    fn invalid_atomics_protocol_rejected() {
        assert!(Config::parse("[atomics]\nhead = \"seqcst\"\n").is_err());
        assert!(Config::parse("[atomics]\nh = \"relaxed\"\nh = \"relaxed\"\n").is_err());
    }

    #[test]
    fn unknown_keys_in_new_sections_rejected() {
        assert!(Config::parse("[hotpath]\nrootz = \"x\"\n").is_err());
        assert!(Config::parse("[locks]\nordering = \"x\"\n").is_err());
    }

    #[test]
    fn unknown_section_rejected() {
        let err = Config::parse("[rulez]\n").expect_err("must fail");
        assert_eq!(err.line, 1);
    }

    #[test]
    fn invalid_severity_rejected() {
        assert!(Config::parse("[severity]\nfloat-eq = \"fatal\"\n").is_err());
    }

    #[test]
    fn default_used_when_not_overridden() -> Result<(), ConfigError> {
        let cfg = Config::parse("")?;
        assert_eq!(
            cfg.severity_for("float-eq", Severity::Error),
            Severity::Error
        );
        assert!(cfg.lib_crates.contains(&"dsp".to_string()));
        Ok(())
    }
}

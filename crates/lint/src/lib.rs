//! `tagbreathe-lint` — zero-dependency static analysis for the
//! TagBreathe workspace.
//!
//! The pipeline's maths (phase unwrapping Eq. 3, displacement
//! integration Eq. 4, zero-crossing rates Eq. 5) silently corrupts on
//! float-equality compares, truncating `as` casts and panicking call
//! sites. This crate enforces those correctness conventions statically,
//! with nothing but `std`:
//!
//! * [`lexer`] — a hand-rolled Rust lexer (comments, raw strings, char
//!   vs. lifetime disambiguation) producing a line-annotated token
//!   stream;
//! * [`parser`] — a tolerant Rust-subset parser producing an item model
//!   (fn signatures, impls, use-trees, statement/expression bodies);
//! * [`callgraph`] — a workspace model + heuristic call graph feeding the
//!   semantic rules (panic reachability, unit dataflow, lock discipline,
//!   hot-path cost, shard safety, NaN guarding);
//! * [`hotpath`] — the hot-path cost inventory behind the
//!   `hot-path-cost` rule and the `hotpath` CLI report;
//! * [`atomics`] — the atomics-discipline pass behind the `atomics`
//!   rule and CLI report: every atomic call site must follow the
//!   ordering protocol declared for it in `[atomics]` in `lint.toml`;
//! * [`rules`] — token-pattern and semantic rules with per-rule severity;
//! * [`sarif`] — a SARIF 2.1.0 emitter for editor/CI integration,
//!   self-validated with the in-tree `tagbreathe_obs::json` checker;
//! * [`baseline`] — the ratchet: existing debt is frozen in
//!   `lint-baseline.txt`, any *new* violation fails the build, and
//!   burn-downs re-freeze at the lower count;
//! * [`config`] — a hand-parsed `lint.toml` (severity overrides, library
//!   crate list, walk exclusions);
//! * [`engine`] — workspace walking and check orchestration.
//!
//! Run it as `cargo run -p tagbreathe-lint -- check` (see `ci.sh`).

pub mod atomics;
pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod engine;
pub mod hotpath;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod source;
pub mod walk;

//! Workspace model and heuristic call graph over parsed files.
//!
//! Name resolution is deliberately conservative — an edge is added only
//! when the target is reasonably certain, because the panic-reachability
//! and lock-discipline rules propagate facts *transitively* and a single
//! bogus edge (e.g. treating every `vec.push(…)` as a call into every
//! workspace method named `push`) would drown the report in noise:
//!
//! * bare calls `f(…)` resolve to free functions named `f`, preferring
//!   the same file, then the same crate, then the whole workspace;
//! * qualified calls `Type::f(…)` resolve to methods of workspace impls
//!   of `Type` (`Self::f` uses the enclosing impl);
//! * method calls `recv.f(…)` resolve only when the receiver's type is
//!   locally inferable — `self`, a parameter, or a `let` with a type
//!   annotation / `Type::new(…)` / struct-literal initialiser — or when
//!   exactly one workspace function bears that name (unique-name
//!   fallback).
//!
//! Unresolvable calls produce no edge; rules treat them as leaves.

use crate::config::{
    AtomicsConfig, Config, HotPathConfig, NanGuardConfig, ShardConfig, UnitsConfig,
};
use crate::parser::{base_type_name, parse_file, Expr, FnItem, ParsedFile, Stmt};
use crate::source::SourceFile;
use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;

/// One parsed workspace file.
#[derive(Debug)]
pub struct AnalyzedFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Crate the file belongs to (directory under `crates/`).
    pub crate_name: String,
    /// Whole file is test/bench/example code.
    pub test_only: bool,
    /// The parsed item model.
    pub parsed: ParsedFile,
}

/// Everything the semantic rules need for one scan.
#[derive(Debug)]
pub struct Workspace {
    /// All parsed files, in walk (sorted-path) order.
    pub files: Vec<AnalyzedFile>,
    /// Crates held to library standards.
    pub lib_crates: Vec<String>,
    /// Physical-units configuration from `lint.toml`.
    pub units: UnitsConfig,
    /// Hot-path cost configuration from `lint.toml`.
    pub hotpath: HotPathConfig,
    /// Shard-safety configuration from `lint.toml`.
    pub shard: ShardConfig,
    /// Declared lock-acquisition order from `lint.toml` (coarsest first).
    pub lock_order: Vec<String>,
    /// NaN-guard configuration from `lint.toml`.
    pub nanguard: NanGuardConfig,
    /// Declared atomic ordering protocols from `lint.toml`.
    pub atomics: AtomicsConfig,
    /// The call graph over every function in `files`.
    pub graph: CallGraph,
}

/// One function node in the call graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's `parsed.fns`.
    pub item: usize,
    /// Function name.
    pub name: String,
    /// Impl self type, when the function is a method.
    pub impl_type: Option<String>,
    /// Crate of the defining file.
    pub crate_name: String,
    /// `true` when the function lives in test code.
    pub is_test: bool,
}

/// Call graph: nodes plus forward adjacency (caller → callees).
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All workspace functions.
    pub nodes: Vec<FnNode>,
    /// `edges[i]` — sorted, deduplicated callee node indices of node `i`.
    pub edges: Vec<Vec<usize>>,
}

impl Workspace {
    /// Builds the workspace model and call graph from lexed files.
    pub fn build(sources: &[SourceFile], config: &Config) -> Workspace {
        let files: Vec<AnalyzedFile> = sources
            .iter()
            .map(|sf| AnalyzedFile {
                rel_path: sf.rel_path.clone(),
                crate_name: sf.crate_name.clone(),
                test_only: sf.test_only,
                parsed: parse_file(sf),
            })
            .collect();
        let graph = CallGraph::build(&files);
        Workspace {
            files,
            lib_crates: config.lib_crates.clone(),
            units: config.units.clone(),
            hotpath: config.hotpath.clone(),
            shard: config.shard.clone(),
            lock_order: config.lock_order.clone(),
            nanguard: config.nanguard.clone(),
            atomics: config.atomics.clone(),
            graph,
        }
    }

    /// The parsed item behind a graph node. Total: an out-of-range node
    /// (impossible for indices handed out by this workspace's own graph)
    /// yields a shared empty item rather than a panic.
    pub fn item(&self, node: usize) -> &FnItem {
        static EMPTY: OnceLock<FnItem> = OnceLock::new();
        self.graph
            .nodes
            .get(node)
            .and_then(|n| self.files.get(n.file).map(|f| (f, n.item)))
            .and_then(|(f, item)| f.parsed.fns.get(item))
            .unwrap_or_else(|| EMPTY.get_or_init(FnItem::default))
    }

    /// Workspace-relative path of the file defining a node (empty for an
    /// out-of-range node).
    pub fn path_of(&self, node: usize) -> &str {
        self.graph
            .nodes
            .get(node)
            .and_then(|n| self.files.get(n.file))
            .map_or("", |f| f.rel_path.as_str())
    }

    /// Whether a node's crate is held to library standards.
    pub fn in_lib_crate(&self, node: usize) -> bool {
        self.graph
            .nodes
            .get(node)
            .is_some_and(|n| self.lib_crates.contains(&n.crate_name))
    }

    /// A human-readable label for diagnostics: `Type::name` or `name`
    /// (`?` for an out-of-range node).
    pub fn label(&self, node: usize) -> String {
        let Some(n) = self.graph.nodes.get(node) else {
            return "?".to_string();
        };
        match &n.impl_type {
            Some(t) => format!("{t}::{}", n.name),
            None => n.name.clone(),
        }
    }

    /// All non-test nodes matching a `Type::name` label (exact) or a bare
    /// name (free functions and methods of any type). Used to resolve
    /// configured function names (`[hotpath] roots`, allow lists).
    pub fn nodes_labelled(&self, wanted: &str) -> Vec<usize> {
        self.graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.is_test)
            .filter(|(i, n)| {
                if wanted.contains("::") {
                    self.label(*i) == wanted
                } else {
                    n.name == wanted
                }
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// All non-test `type` aliases of the workspace, name → aliased type
    /// text. Duplicate names keep the first definition.
    pub fn alias_map(&self) -> HashMap<&str, &str> {
        let mut map = HashMap::new();
        for file in &self.files {
            for a in &file.parsed.aliases {
                if !a.is_test && !file.test_only {
                    map.entry(a.name.as_str()).or_insert(a.ty.as_str());
                }
            }
        }
        map
    }

    /// Flat type text with `type` aliases substituted (transitively, to a
    /// small depth so cycles terminate) — so rules inspecting field types
    /// see `Vec < … TagState … >` where the source says `TagSlab`.
    pub fn expand_aliases(&self, ty: &str, aliases: &HashMap<&str, &str>) -> String {
        let mut current = ty.to_string();
        for _ in 0..4 {
            let mut changed = false;
            let expanded: Vec<&str> = current
                .split_whitespace()
                .map(|w| match aliases.get(w) {
                    Some(rhs) => {
                        changed = true;
                        *rhs
                    }
                    None => w,
                })
                .collect();
            current = expanded.join(" ");
            if !changed {
                break;
            }
        }
        current
    }
}

impl CallGraph {
    /// Builds nodes and edges for all functions in `files`.
    pub fn build(files: &[AnalyzedFile]) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for (ii, f) in file.parsed.fns.iter().enumerate() {
                nodes.push(FnNode {
                    file: fi,
                    item: ii,
                    name: f.name.clone(),
                    impl_type: f.impl_type.clone(),
                    crate_name: file.crate_name.clone(),
                    is_test: f.is_test,
                });
            }
        }
        let index = NameIndex::build(&nodes);
        let mut edges = Vec::with_capacity(nodes.len());
        for node in &nodes {
            let mut callees = Vec::new();
            let item = files
                .get(node.file)
                .and_then(|f| f.parsed.fns.get(node.item));
            if let Some(body) = item.and_then(|i| i.body.as_ref()) {
                let vars =
                    item.map_or_else(HashMap::new, |i| local_types(i, node.impl_type.as_deref()));
                body.visit(&mut |e| {
                    resolve_expr(e, node, &nodes, &vars, &index, &mut callees);
                });
            }
            callees.sort_unstable();
            callees.dedup();
            edges.push(callees);
        }
        CallGraph { nodes, edges }
    }

    /// Reverse adjacency (callee → callers), for backward propagation.
    pub fn reverse_edges(&self) -> Vec<Vec<usize>> {
        let mut rev = vec![Vec::new(); self.nodes.len()];
        for (caller, callees) in self.edges.iter().enumerate() {
            for &callee in callees {
                if let Some(callers) = rev.get_mut(callee) {
                    callers.push(caller);
                }
            }
        }
        rev
    }
}

/// Secondary indexes for name resolution.
struct NameIndex {
    /// Free functions by name.
    free: BTreeMap<String, Vec<usize>>,
    /// Methods by `(self type, name)`.
    method: BTreeMap<(String, String), Vec<usize>>,
    /// Every function by bare name (free + methods).
    any: BTreeMap<String, Vec<usize>>,
}

impl NameIndex {
    fn build(nodes: &[FnNode]) -> NameIndex {
        let mut free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut method: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut any: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            any.entry(n.name.clone()).or_default().push(i);
            match &n.impl_type {
                Some(t) => method
                    .entry((t.clone(), n.name.clone()))
                    .or_default()
                    .push(i),
                None => free.entry(n.name.clone()).or_default().push(i),
            }
        }
        NameIndex { free, method, any }
    }
}

/// Infers local variable types from parameters and `let` statements.
fn local_types(item: &FnItem, impl_type: Option<&str>) -> HashMap<String, String> {
    let mut vars = HashMap::new();
    let resolve_self = |t: String| {
        if t == "Self" {
            impl_type.map(str::to_string)
        } else {
            Some(t)
        }
    };
    for p in &item.params {
        if let (Some(name), Some(ty)) = (&p.name, base_type_name(&p.ty)) {
            if let Some(t) = resolve_self(ty) {
                vars.insert(name.clone(), t);
            }
        }
    }
    if let Some(body) = &item.body {
        collect_let_types(body, &mut vars, impl_type);
    }
    vars
}

/// Walks every statement (including nested blocks) collecting `let` types.
fn collect_let_types(
    block: &crate::parser::Block,
    vars: &mut HashMap<String, String>,
    impl_type: Option<&str>,
) {
    for stmt in &block.stmts {
        if let Stmt::Let {
            name: Some(name),
            ty,
            init,
            ..
        } = stmt
        {
            let inferred = ty
                .as_deref()
                .and_then(base_type_name)
                .or_else(|| init.as_ref().and_then(constructed_type));
            if let Some(t) = inferred {
                let t = if t == "Self" {
                    impl_type.map(str::to_string)
                } else {
                    Some(t)
                };
                if let Some(t) = t {
                    vars.insert(name.clone(), t);
                }
            }
        }
    }
    // Nested blocks: scoping is ignored (shadowing across blocks is rare
    // enough that a flat map is an acceptable approximation).
    block.visit(&mut |e| {
        if let Expr::BlockExpr { block: b, .. } = e {
            for stmt in &b.stmts {
                if let Stmt::Let {
                    name: Some(name),
                    ty: Some(ty),
                    ..
                } = stmt
                {
                    if let Some(t) = base_type_name(ty) {
                        vars.entry(name.clone()).or_insert(t);
                    }
                }
            }
        }
    });
}

/// The type constructed by an initialiser, when syntactically evident:
/// `Type::new(…)`, `Type(…)` or `Type { … }`.
fn constructed_type(init: &Expr) -> Option<String> {
    match init {
        Expr::Call { path, .. } if path.len() >= 2 => {
            let t = path.get(path.len() - 2)?;
            t.chars().next().filter(char::is_ascii_uppercase)?;
            Some(t.clone())
        }
        Expr::Call { path, .. } if path.len() == 1 => {
            let t = path.first()?;
            t.chars().next().filter(char::is_ascii_uppercase)?;
            Some(t.clone())
        }
        Expr::StructLit { path, .. } => path.last().cloned(),
        Expr::Try { expr, .. } => constructed_type(expr),
        Expr::MethodCall { recv, method, .. }
            if method == "unwrap" || method == "expect" || method == "clone" =>
        {
            constructed_type(recv)
        }
        _ => None,
    }
}

/// Resolves one expression's call, if any, appending edge targets.
fn resolve_expr(
    e: &Expr,
    node: &FnNode,
    nodes: &[FnNode],
    vars: &HashMap<String, String>,
    index: &NameIndex,
    out: &mut Vec<usize>,
) {
    match e {
        Expr::Call { path, .. } => match (path.first(), path.last(), path.len()) {
            (None, _, _) | (_, None, _) => {}
            (Some(first), _, 1) => out.extend(prefer(index.free.get(first), node, nodes)),
            (_, Some(name), len) => {
                let Some(qualifier) = path.get(len - 2) else {
                    return;
                };
                let type_name = if qualifier == "Self" {
                    node.impl_type.clone()
                } else if qualifier
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_uppercase())
                {
                    Some(qualifier.clone())
                } else {
                    None
                };
                match type_name {
                    Some(t) => {
                        if let Some(v) = index.method.get(&(t, name.clone())) {
                            out.extend(v.iter().copied());
                        }
                    }
                    // module-qualified free call, e.g. `units::hz_to_bpm(…)`
                    None => out.extend(prefer(index.free.get(name), node, nodes)),
                }
            }
        },
        Expr::MethodCall { recv, method, .. } => {
            let recv_type = receiver_type(recv, node, vars);
            match recv_type {
                Some(t) => {
                    if let Some(v) = index.method.get(&(t, method.clone())) {
                        out.extend(v.iter().copied());
                    }
                }
                None => {
                    // Unique-name fallback: only when the workspace has
                    // exactly one function with this name.
                    if let Some(v) = index.any.get(method) {
                        if v.len() == 1 {
                            out.extend(v.iter().copied());
                        }
                    }
                }
            }
        }
        _ => {}
    }
}

/// Type of a method receiver, when locally inferable.
fn receiver_type(recv: &Expr, node: &FnNode, vars: &HashMap<String, String>) -> Option<String> {
    match recv {
        Expr::Path { segs, .. } if segs.len() == 1 => match segs.first().map(String::as_str) {
            Some("self") => node.impl_type.clone(),
            Some(name) => vars.get(name).cloned(),
            None => None,
        },
        Expr::Unary { expr, .. } | Expr::Try { expr, .. } => receiver_type(expr, node, vars),
        _ => None,
    }
}

/// Candidate list narrowed by proximity: same file wins, then same crate,
/// then every match.
fn prefer(candidates: Option<&Vec<usize>>, node: &FnNode, nodes: &[FnNode]) -> Vec<usize> {
    let Some(all) = candidates else {
        return Vec::new();
    };
    let same_file: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&i| nodes.get(i).is_some_and(|n| n.file == node.file))
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&i| {
            nodes
                .get(i)
                .is_some_and(|n| n.crate_name == node.crate_name)
        })
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    all.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(path, text)| SourceFile::parse(path, text))
            .collect();
        let config = Config {
            lib_crates: vec!["dsp".to_string(), "tagbreathe".to_string()],
            ..Config::default()
        };
        Workspace::build(&sources, &config)
    }

    fn node(ws: &Workspace, name: &str) -> usize {
        ws.graph
            .nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or(usize::MAX)
    }

    fn callees(ws: &Workspace, name: &str) -> Vec<String> {
        let i = node(ws, name);
        ws.graph.edges[i]
            .iter()
            .map(|&j| ws.graph.nodes[j].name.clone())
            .collect()
    }

    #[test]
    fn free_fn_calls_resolve() {
        let w = ws(&[(
            "crates/dsp/src/a.rs",
            "pub fn outer(x: f64) -> f64 { helper(x) }\nfn helper(x: f64) -> f64 { x }\n",
        )]);
        assert_eq!(callees(&w, "outer"), vec!["helper"]);
    }

    #[test]
    fn qualified_and_self_calls_resolve_to_methods() {
        let w = ws(&[(
            "crates/dsp/src/a.rs",
            "struct S;\nimpl S {\n  pub fn new() -> Self { S }\n  fn go(&self) { self.step(); Self::leap(); }\n  fn step(&self) {}\n  fn leap() {}\n}\nfn use_it() { let s = S::new(); s.go(); }\n",
        )]);
        let go = callees(&w, "go");
        assert!(go.contains(&"step".to_string()), "self.method: {go:?}");
        assert!(go.contains(&"leap".to_string()), "Self::assoc: {go:?}");
        let use_it = callees(&w, "use_it");
        assert!(use_it.contains(&"new".to_string()), "{use_it:?}");
        assert!(
            use_it.contains(&"go".to_string()),
            "let-typed receiver: {use_it:?}"
        );
    }

    #[test]
    fn untyped_receivers_do_not_explode() {
        let w = ws(&[(
            "crates/dsp/src/a.rs",
            "struct A;\nimpl A { pub fn push(&self) {} }\nstruct B;\nimpl B { pub fn push(&self) {} }\nfn f(v: Vec<f64>) { v.iter().count(); }\n",
        )]);
        // `v.iter()` must not resolve to either `push`.
        assert!(callees(&w, "f").is_empty(), "{:?}", callees(&w, "f"));
    }

    #[test]
    fn unique_name_fallback_applies() {
        let w = ws(&[(
            "crates/tagbreathe/src/a.rs",
            "struct Only;\nimpl Only { pub fn very_unique_helper(&self) {} }\nfn f() { current().very_unique_helper(); }\n",
        )]);
        assert!(
            callees(&w, "f").contains(&"very_unique_helper".to_string()),
            "{:?}",
            callees(&w, "f")
        );
    }

    #[test]
    fn cross_file_resolution_and_reverse_edges() {
        let w = ws(&[
            (
                "crates/dsp/src/a.rs",
                "pub fn mean(xs: &[f64]) -> f64 { xs[0] }\n",
            ),
            (
                "crates/tagbreathe/src/b.rs",
                "pub fn analyze(xs: &[f64]) -> f64 { mean(xs) }\n",
            ),
        ]);
        assert_eq!(callees(&w, "analyze"), vec!["mean"]);
        let rev = w.graph.reverse_edges();
        let mean = node(&w, "mean");
        let analyze = node(&w, "analyze");
        assert_eq!(rev[mean], vec![analyze]);
    }
}

//! Golden-file diagnostic tests.
//!
//! Each directory under `tests/fixtures/lint/` is a miniature workspace
//! (`crates/<name>/src/*.rs`, optional `lint.toml`) with known
//! violations. The rendered report must match the case's `expected.txt`
//! byte for byte, so any change to a rule's detection logic or message
//! wording shows up as a reviewable diff against the corpus.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use tagbreathe_lint::engine::{load_config, scan};

/// Renders a fixture workspace's report exactly as the golden files
/// store it: one `path:line: [rule] message` line per violation, sorted
/// (scan output is already ordered by path, line, rule).
fn rendered(root: &Path) -> Result<String, String> {
    let config = load_config(root)?;
    let outcome = scan(root, &config).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for v in &outcome.violations {
        writeln!(out, "{v}").map_err(|e| e.to_string())?;
    }
    Ok(out)
}

#[test]
fn fixtures_match_expected_reports() -> Result<(), String> {
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lint");
    let mut cases = Vec::new();
    for entry in fs::read_dir(&base).map_err(|e| e.to_string())? {
        let entry = entry.map_err(|e| e.to_string())?;
        if entry.path().is_dir() {
            cases.push(entry.path());
        }
    }
    cases.sort();
    assert!(
        cases.len() >= 5,
        "fixture corpus went missing: found {} cases",
        cases.len()
    );
    let mut failures = String::new();
    for case in &cases {
        let expected = fs::read_to_string(case.join("expected.txt"))
            .map_err(|e| format!("{}: {e}", case.display()))?;
        let actual = rendered(case)?;
        if actual != expected {
            let _ = writeln!(
                failures,
                "== {} ==\n--- expected ---\n{expected}--- actual ---\n{actual}",
                case.display()
            );
        }
    }
    assert!(failures.is_empty(), "golden mismatches:\n{failures}");
    Ok(())
}

/// The corpus must collectively exercise every rule the engine ships,
/// so a new rule cannot land without a golden example (the `clean`
/// case covers the zero-violation path).
#[test]
fn corpus_covers_every_rule() -> Result<(), String> {
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lint");
    let mut seen = std::collections::BTreeSet::new();
    for entry in fs::read_dir(&base).map_err(|e| e.to_string())? {
        let entry = entry.map_err(|e| e.to_string())?;
        if !entry.path().is_dir() {
            continue;
        }
        let expected =
            fs::read_to_string(entry.path().join("expected.txt")).map_err(|e| e.to_string())?;
        for line in expected.lines() {
            if let Some(rule) = line.split('[').nth(1).and_then(|r| r.split(']').next()) {
                seen.insert(rule.to_string());
            }
        }
    }
    for rule in tagbreathe_lint::rules::all_rules() {
        assert!(
            seen.contains(rule.id()),
            "no golden fixture exercises rule `{}`",
            rule.id()
        );
    }
    for rule in tagbreathe_lint::rules::semantic_rules() {
        assert!(
            seen.contains(rule.id()),
            "no golden fixture exercises semantic rule `{}`",
            rule.id()
        );
    }
    Ok(())
}

//! Fixture: a file with no violations at all.

/// Doubles a sample.
#[must_use]
pub fn double(x: f64) -> f64 {
    2.0 * x
}

//! Fixture: physical-unit mix-ups.

/// Adds two rates that are in different units.
pub fn drift(rate_hz: f64, rate_bpm: f64) -> f64 {
    rate_hz + rate_bpm
}

/// Feeds a conversion function the unit it produces.
pub fn wrong_conversion(rate_bpm: f64) -> f64 {
    hz_to_bpm(rate_bpm)
}

/// Declared (by name suffix) to return Hz, but returns a bpm value.
pub fn rate_hz(rate_bpm: f64) -> f64 {
    rate_bpm
}

fn hz_to_bpm(hz: f64) -> f64 {
    hz * 60.0
}

//! Fixture: atomic call sites that break their declared [atomics]
//! protocols, one per finding kind the rule classifies.

use std::sync::atomic::{AtomicU64, Ordering};

/// A miniature publish/observe pair with deliberate ordering bugs.
pub struct Queue {
    head: AtomicU64,
    stat: AtomicU64,
    other: AtomicU64,
}

impl Queue {
    /// Publishes a new head — missing its release edge.
    pub fn publish(&self, v: u64) {
        self.head.store(v, Ordering::Relaxed);
    }

    /// Observes the head — missing its acquire edge.
    pub fn observe(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Bumps a statistic with a needless full fence.
    pub fn bump(&self) {
        self.stat.fetch_add(1, Ordering::SeqCst);
    }

    /// Touches an atomic nobody declared.
    pub fn stray(&self) -> u64 {
        self.other.load(Ordering::Acquire)
    }
}

//! Fixture: heap allocation and keyed lookups on the configured hot path.

use std::collections::BTreeMap;

/// Per-tag ingest state.
pub struct Ingest {
    counts: BTreeMap<u32, u64>,
    scratch: Vec<f64>,
}

impl Ingest {
    /// Hot per-report entry point.
    pub fn push(&mut self, tag: u32, v: f64) {
        let slot = self.counts.entry(tag).or_insert(0);
        *slot += 1;
        self.scratch.push(v);
        let label = format!("tag-{tag}");
        self.audit(label);
        self.reset();
    }

    fn audit(&self, label: String) {
        drop(label);
    }

    /// Cold, allow-listed: the fixture expects no finding here.
    fn reset(&mut self) {
        self.scratch = Vec::new();
    }
}

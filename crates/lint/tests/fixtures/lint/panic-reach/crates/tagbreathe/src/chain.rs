//! Fixture: panic reachable only through a private call chain.

/// Entry point; panics transitively when `xs` is empty.
pub fn entry(xs: &[f64]) -> f64 {
    middle(xs)
}

fn middle(xs: &[f64]) -> f64 {
    leaf(xs)
}

fn leaf(xs: &[f64]) -> f64 {
    xs[0]
}

//! Fixture: shard-unsafe state reachable from the configured shard root.

use std::cell::RefCell;
use std::rc::Rc;

static mut SCRATCH: u64 = 0;

/// Shard root: one of these per monitored user.
pub struct UserState {
    window: WindowState,
}

struct WindowState {
    cache: Rc<RefCell<Vec<f64>>>,
}

/// Hands single-threaded shared ownership out of the crate.
pub fn share(state: &UserState) -> Rc<RefCell<Vec<f64>>> {
    state.window.cache.clone()
}

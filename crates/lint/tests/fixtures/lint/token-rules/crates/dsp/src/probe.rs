//! Fixture: one violation for each per-token rule.

#[allow(dead_code)]
pub fn undocumented(x: Option<f64>) -> f64 {
    // TODO tune this threshold
    let v = x.unwrap();
    if v == 0.5 {
        return 0.0;
    }
    f64::from(v as f32)
}

//! Fixture: guards held across locking calls, and a double-lock.

use std::sync::Mutex;

/// Shared state with two independent locks.
pub struct Shared {
    counter: Mutex<u64>,
    journal: Mutex<Vec<u64>>,
}

impl Shared {
    fn log(&self, v: u64) {
        let mut journal = self.journal.lock().unwrap();
        journal.push(v);
    }

    /// Logs while still holding the counter lock.
    pub fn bump(&self) {
        let mut counter = self.counter.lock().unwrap();
        *counter += 1;
        self.log(*counter);
    }

    /// Locks the same mutex twice on one path.
    pub fn stuck(&self) -> u64 {
        let a = self.counter.lock().unwrap();
        let b = self.counter.lock().unwrap();
        *a + *b
    }
}

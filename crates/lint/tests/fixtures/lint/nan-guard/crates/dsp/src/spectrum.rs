//! Fixture: unguarded division and domain calls on signal-derived values.

/// Fraction of spectrum energy inside the breathing band.
#[must_use]
pub fn band_fraction(band_energy: f64, total_energy: f64) -> f64 {
    band_energy / total_energy
}

/// Log-power of one bin.
#[must_use]
pub fn log_power(power: f64) -> f64 {
    power.ln()
}

/// Guarded division: the fixture expects no finding here.
#[must_use]
pub fn safe_ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

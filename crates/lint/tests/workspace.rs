//! Integration tests: the lint engine run over this very workspace.
//!
//! * the shipped tree must have no violations beyond the ratchet
//!   baseline (this is what keeps `ci.sh` green);
//! * a fixture with fresh violations must make `check` fail — proving
//!   the ratchet actually bites;
//! * the real `tagbreathe-lint` binary must exit 0 on the shipped tree
//!   and non-zero on a tree with a new violation.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use tagbreathe_lint::engine;
use tagbreathe_lint::report::Severity;
use tagbreathe_lint::rules::{all_rules, RuleCtx};
use tagbreathe_lint::source::SourceFile;

/// The workspace root, two levels above this crate.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn shipped_tree_has_no_regressions_beyond_baseline() {
    let result = engine::check(&workspace_root()).expect("check runs");
    assert!(
        result.passed(),
        "new lint violations beyond lint-baseline.txt:\n{:#?}",
        result.regressions
    );
}

#[test]
fn shipped_tree_scan_covers_the_whole_workspace() {
    let config = engine::load_config(&workspace_root()).expect("config loads");
    let outcome = engine::scan(&workspace_root(), &config).expect("scan runs");
    // The workspace has ~100 source files; a broken walker returning a
    // handful would make the ratchet trivially green.
    assert!(
        outcome.files_scanned > 80,
        "only {} files scanned — walker broken?",
        outcome.files_scanned
    );
}

#[test]
fn baseline_has_no_slack_left_uncommitted() {
    // The checked-in baseline must stay tight: if a burn-down shrank the
    // real counts, --update-baseline must be re-run before committing.
    let result = engine::check(&workspace_root()).expect("check runs");
    assert!(
        result.slack.is_empty(),
        "baseline is looser than reality — run `cargo run -p tagbreathe-lint -- check --update-baseline`:\n{:#?}",
        result.slack
    );
}

/// A fixture file exercising every error-severity rule at least once.
const VIOLATING_FIXTURE: &str = r#"
pub fn compare(x: f64) -> bool {
    x == 0.3
}

pub fn take(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn narrow(x: f64) -> f32 {
    x as f32
}

#[allow(dead_code)]
fn silenced() {}

pub fn pure_energy(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}
"#;

#[test]
fn fixture_triggers_every_error_rule() {
    let file = SourceFile::parse("crates/dsp/src/fixture.rs", VIOLATING_FIXTURE);
    let ctx = RuleCtx {
        lib_crates: vec!["dsp".to_string()],
    };
    let fired: Vec<&str> = all_rules()
        .iter()
        .filter(|r| r.default_severity() == Severity::Error)
        .filter(|r| !r.check(&file, &ctx).is_empty())
        .map(|r| r.id())
        .collect();
    assert_eq!(
        fired,
        vec![
            "float-eq",
            "lib-panic",
            "lossy-cast",
            "allow-attr",
            "missing-must-use",
            "doc-comment"
        ]
    );
}

#[test]
fn semantic_error_rules_are_registered() {
    let ids: Vec<&str> = tagbreathe_lint::rules::semantic_rules()
        .iter()
        .map(|r| r.id())
        .collect();
    assert_eq!(
        ids,
        vec![
            "panic-reach",
            "unit-dataflow",
            "lock-discipline",
            "hot-path-cost",
            "shard-safety",
            "nan-guard",
            "atomics"
        ]
    );
    for rule in tagbreathe_lint::rules::semantic_rules() {
        assert_eq!(rule.default_severity(), Severity::Error, "{}", rule.id());
    }
}

#[test]
fn declared_conversions_exist_in_the_workspace() {
    // Every conversion declared in lint.toml must be a real function —
    // otherwise the unit checker trusts a conversion nobody wrote.
    let root = workspace_root();
    let config = engine::load_config(&root).expect("config loads");
    assert!(
        !config.units.conversions.is_empty(),
        "workspace lint.toml must declare unit conversions"
    );
    let files =
        tagbreathe_lint::walk::rust_files(&root, &config.skip_dirs).expect("walk workspace");
    let mut all_text = String::new();
    for rel in &files {
        all_text.push_str(&fs::read_to_string(root.join(rel)).expect("read source"));
    }
    for c in &config.units.conversions {
        assert!(
            all_text.contains(&format!("fn {}(", c.name)),
            "conversion `{}` declared in lint.toml but not defined anywhere",
            c.name
        );
        assert!(
            config.units.suffixes.contains(&c.from) && config.units.suffixes.contains(&c.to),
            "conversion `{}` uses undeclared unit suffixes ({} -> {})",
            c.name,
            c.from,
            c.to
        );
    }
}

/// Builds a throwaway mini-workspace containing one freshly violating
/// file and no baseline allowance for it.
fn scratch_tree(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tagbreathe-lint-test-{}-{name}",
        std::process::id()
    ));
    let src_dir = dir.join("crates/dsp/src");
    fs::create_dir_all(&src_dir).expect("mkdir scratch tree");
    fs::write(src_dir.join("bad.rs"), VIOLATING_FIXTURE).expect("write fixture");
    fs::write(dir.join("lint-baseline.txt"), "").expect("write empty baseline");
    dir
}

#[test]
fn check_fails_on_new_violation_and_engine_agrees() {
    let dir = scratch_tree("engine");
    let result = engine::check(&dir).expect("check runs on scratch tree");
    assert!(!result.passed(), "fresh violations must fail the ratchet");
    assert!(
        result.regressions.iter().any(|r| r.rule == "lib-panic"),
        "{:#?}",
        result.regressions
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_exits_nonzero_on_new_violation_and_zero_on_shipped_tree() {
    let binary = env!("CARGO_BIN_EXE_tagbreathe-lint");

    let dir = scratch_tree("binary");
    let bad = Command::new(binary)
        .args(["check", "--root"])
        .arg(&dir)
        .output()
        .expect("run lint binary on scratch tree");
    assert!(
        !bad.status.success(),
        "binary must exit non-zero on a new violation; stdout: {}",
        String::from_utf8_lossy(&bad.stdout)
    );
    fs::remove_dir_all(&dir).ok();

    let good = Command::new(binary)
        .args(["check", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run lint binary on workspace");
    assert!(
        good.status.success(),
        "binary must exit zero on the shipped tree; stderr: {}",
        String::from_utf8_lossy(&good.stderr)
    );
}

#[test]
fn update_baseline_refreezes_scratch_tree() {
    let binary = env!("CARGO_BIN_EXE_tagbreathe-lint");
    let dir = scratch_tree("refreeze");
    let update = Command::new(binary)
        .args(["check", "--update-baseline", "--root"])
        .arg(&dir)
        .output()
        .expect("run --update-baseline");
    assert!(update.status.success());
    // After refreezing, the same tree passes.
    let again = Command::new(binary)
        .args(["check", "--root"])
        .arg(&dir)
        .output()
        .expect("run check after refreeze");
    assert!(
        again.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&again.stderr)
    );
    let text = fs::read_to_string(dir.join("lint-baseline.txt")).expect("baseline written");
    assert!(text.contains("lib-panic"), "{text}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn shipped_tree_atomics_protocols_all_hold() {
    let config = engine::load_config(&workspace_root()).expect("config loads");
    let ws = engine::load_workspace(&workspace_root(), &config).expect("workspace loads");
    let report = tagbreathe_lint::atomics::analyze(&ws, &[]);
    assert!(
        report.findings.is_empty(),
        "shipped tree must satisfy every [atomics] declaration:\n{:#?}",
        report.findings
    );
    // The declaration table is alive: the pass actually resolved sites
    // against every entry rather than silently checking nothing.
    assert!(
        report.decl_count >= 8,
        "declaration table shrank to {}",
        report.decl_count
    );
    assert!(
        report.checked_ops >= 15,
        "only {} atomic ops resolved — receiver-chain resolution broken?",
        report.checked_ops
    );
}

#[test]
fn sync_mutant_cfg_is_caught_with_ring_witnesses() {
    let config = engine::load_config(&workspace_root()).expect("config loads");
    let ws = engine::load_workspace(&workspace_root(), &config).expect("workspace loads");
    let report = tagbreathe_lint::atomics::analyze(&ws, &["sync_mutant".to_string()]);
    let ring: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.path.ends_with("fleet/ring.rs"))
        .collect();
    assert!(
        ring.len() >= 2,
        "--cfg sync_mutant must surface the seeded ring ordering bugs:\n{:#?}",
        report.findings
    );
    let tags: Vec<&str> = ring.iter().map(|f| f.kind.tag()).collect();
    assert!(tags.contains(&"relaxed-publish"), "{tags:?}");
    assert!(tags.contains(&"relaxed-observe"), "{tags:?}");
    for f in &ring {
        assert!(
            !f.witness.is_empty(),
            "every mutant finding carries a witness path: {f:#?}"
        );
    }
}

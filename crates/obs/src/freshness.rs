//! Ingest→publication freshness attribution.
//!
//! A served snapshot is only as good as it is *fresh*: the paper's
//! real-time monitoring claim is a latency promise, and this module
//! supplies the measurement half of the closed loop (`crate::slo` is the
//! judgement half). Two pieces:
//!
//! * [`Stage`] — the named pipeline boundaries lag is attributed to.
//!   Stages render as the numeric `stage` label on the shared
//!   `tagbreathe_snapshot_lag_ns` histogram (label values are integers by
//!   the repo-wide convention; `docs/METRICS.md` carries the code table).
//! * [`WatermarkClock`] — a bounded queue of `(stream time, wall
//!   instant)` stamps taken at ingest. When a snapshot covering stream
//!   time `W` publishes, [`WatermarkClock::lag`] pops every stamp at or
//!   below `W` and returns the wall age of the *newest* popped stamp: the
//!   time the last report covered by the snapshot spent in flight — the
//!   classic watermark-lag freshness measure.
//!
//! Everything here is wall-clock-reading and therefore **hot-path
//! hostile**: callers must gate every `stamp`/`lag` call behind
//! `Recorder::enabled`, keeping the disabled path free of clock reads and
//! allocation (the `hotpath` lint pass pins this for the fleet router).
//!
//! # Examples
//!
//! ```
//! use std::time::{Duration, Instant};
//! use tagbreathe_obs::freshness::WatermarkClock;
//!
//! let mut clock = WatermarkClock::new(16, 0.5);
//! let t0 = Instant::now();
//! clock.stamp_at(1.0, t0);
//! clock.stamp_at(2.0, t0 + Duration::from_millis(10));
//! // Snapshot covering stream time 2.0 publishes 30 ms after t0: the
//! // newest covered stamp (2.0, t0+10ms) is 20 ms old.
//! let lag = clock.lag_at(2.0, t0 + Duration::from_millis(30));
//! assert_eq!(lag, Some(Duration::from_millis(20)));
//! ```

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// A pipeline boundary that snapshot lag is attributed to.
///
/// The `u8` discriminant is the value of the `stage` label under which
/// the measurement is recorded (`Label::stage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Server engine ingest → snapshot publication (end-to-end).
    Total = 0,
    /// Server engine ingest → release from the reader merge lanes.
    LaneMerge = 1,
    /// Wall time spent handing one report batch onto the shard rings
    /// (routing plus bounded-backpressure spins).
    RingHandoff = 2,
    /// Fleet ingest → emission of the covering merged snapshot (ring
    /// transit, shard processing and cadence wait).
    ShardIngest = 3,
    /// Snapshot-request broadcast → all shard parts absorbed and the
    /// merged snapshot emitted.
    EpochMerge = 4,
    /// HTTP request parsed → response body rendered.
    HttpServe = 5,
}

impl Stage {
    /// Every stage, in label-code order.
    pub const ALL: [Stage; 6] = [
        Stage::Total,
        Stage::LaneMerge,
        Stage::RingHandoff,
        Stage::ShardIngest,
        Stage::EpochMerge,
        Stage::HttpServe,
    ];

    /// The numeric `stage` label value.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Stage::Total => 0,
            Stage::LaneMerge => 1,
            Stage::RingHandoff => 2,
            Stage::ShardIngest => 3,
            Stage::EpochMerge => 4,
            Stage::HttpServe => 5,
        }
    }

    /// Stable lowercase name used in docs and status renderings.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Total => "total",
            Stage::LaneMerge => "lane_merge",
            Stage::RingHandoff => "ring_handoff",
            Stage::ShardIngest => "shard_ingest",
            Stage::EpochMerge => "epoch_merge",
            Stage::HttpServe => "http_serve",
        }
    }

    /// The stage for a label code, if any.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.code() == code)
    }
}

/// Bounded ingest-stamp queue measuring watermark lag.
///
/// Stamps are taken at most once per `resolution_s` of stream time, so a
/// kilohertz report stream costs a handful of retained stamps per second
/// rather than one per report. When the queue is full further stamps are
/// skipped — the measurement degrades gracefully instead of growing.
#[derive(Debug, Clone)]
pub struct WatermarkClock {
    stamps: VecDeque<(f64, Instant)>,
    capacity: usize,
    resolution_s: f64,
    last_stamped_s: f64,
    /// Stamps skipped because the queue was full.
    skipped: u64,
}

impl WatermarkClock {
    /// Creates a clock retaining at most `capacity` stamps, stamping at
    /// most once per `resolution_s` of stream time (a non-finite or
    /// negative resolution behaves as zero: every advance stamps).
    #[must_use]
    pub fn new(capacity: usize, resolution_s: f64) -> Self {
        WatermarkClock {
            stamps: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            resolution_s: if resolution_s.is_finite() && resolution_s > 0.0 {
                resolution_s
            } else {
                0.0
            },
            last_stamped_s: f64::NEG_INFINITY,
            skipped: 0,
        }
    }

    /// Stamps stream time `time_s` as ingested now. The wall clock is
    /// only read when the stamp would actually be retained, so calling
    /// this per report costs one float compare in the common
    /// (coalesced) case.
    pub fn stamp(&mut self, time_s: f64) {
        if !time_s.is_finite() || time_s < self.last_stamped_s + self.resolution_s {
            return;
        }
        self.stamp_at(time_s, Instant::now());
    }

    /// Stamps stream time `time_s` as ingested at `at` (the testable
    /// seam). Non-finite and non-advancing times are ignored.
    pub fn stamp_at(&mut self, time_s: f64, at: Instant) {
        if !time_s.is_finite() || time_s < self.last_stamped_s + self.resolution_s {
            return;
        }
        if self.stamps.len() >= self.capacity {
            self.skipped = self.skipped.saturating_add(1);
            return;
        }
        self.last_stamped_s = time_s;
        self.stamps.push_back((time_s, at));
    }

    /// Pops every stamp with stream time ≤ `up_to_s` and returns the wall
    /// age of the newest popped stamp — `None` when no stamp is covered.
    pub fn lag(&mut self, up_to_s: f64) -> Option<Duration> {
        self.lag_at(up_to_s, Instant::now())
    }

    /// As [`WatermarkClock::lag`], measured against `now` (the testable
    /// seam).
    pub fn lag_at(&mut self, up_to_s: f64, now: Instant) -> Option<Duration> {
        let mut newest = None;
        while let Some(&(t, at)) = self.stamps.front() {
            if t <= up_to_s {
                newest = Some(at);
                self.stamps.pop_front();
            } else {
                break;
            }
        }
        newest.map(|at| now.saturating_duration_since(at))
    }

    /// Stamps currently awaiting a covering snapshot.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.stamps.len()
    }

    /// Stamps dropped because the queue was full.
    #[must_use]
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

/// Saturating nanosecond count of a duration, for histogram recording.
#[must_use]
pub fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_codes_round_trip_and_names_are_stable() {
        for stage in Stage::ALL {
            assert_eq!(Stage::from_code(stage.code()), Some(stage));
            assert!(!stage.as_str().is_empty());
        }
        assert_eq!(Stage::from_code(200), None);
        assert_eq!(Stage::Total.code(), 0);
        assert_eq!(Stage::HttpServe.as_str(), "http_serve");
    }

    #[test]
    fn lag_pops_covered_stamps_and_returns_newest_age() {
        let mut clock = WatermarkClock::new(8, 0.0);
        let t0 = Instant::now();
        clock.stamp_at(1.0, t0);
        clock.stamp_at(2.0, t0 + Duration::from_millis(5));
        clock.stamp_at(3.0, t0 + Duration::from_millis(9));
        let now = t0 + Duration::from_millis(29);
        assert_eq!(clock.lag_at(2.5, now), Some(Duration::from_millis(24)));
        assert_eq!(clock.pending(), 1, "the 3.0 stamp stays queued");
        // Nothing newly covered: no measurement.
        assert_eq!(clock.lag_at(2.5, now), None);
        assert_eq!(clock.lag_at(3.0, now), Some(Duration::from_millis(20)));
    }

    #[test]
    fn resolution_coalesces_and_capacity_bounds() {
        let mut clock = WatermarkClock::new(2, 1.0);
        let t0 = Instant::now();
        clock.stamp_at(0.0, t0);
        clock.stamp_at(0.5, t0); // within resolution: coalesced
        clock.stamp_at(1.0, t0);
        assert_eq!(clock.pending(), 2);
        clock.stamp_at(2.0, t0); // full: skipped, not grown
        assert_eq!(clock.pending(), 2);
        assert_eq!(clock.skipped(), 1);
    }

    #[test]
    fn nan_and_regressing_times_are_ignored() {
        let mut clock = WatermarkClock::new(4, 0.0);
        let t0 = Instant::now();
        clock.stamp_at(f64::NAN, t0);
        clock.stamp_at(5.0, t0);
        clock.stamp_at(4.0, t0); // time went backwards: ignored
        assert_eq!(clock.pending(), 1);
        assert_eq!(clock.lag_at(f64::NAN, t0), None, "NaN covers nothing");
    }

    #[test]
    fn duration_ns_saturates() {
        assert_eq!(duration_ns(Duration::from_nanos(42)), 42);
        assert_eq!(duration_ns(Duration::MAX), u64::MAX);
    }
}

//! Fixed log-bucket histogram over `u64` values.
//!
//! [`LogHistogram`] buckets by the position of the highest set bit: bucket
//! 0 holds zeros, bucket `k` (1 ≤ k ≤ 63) holds values in
//! `[2^(k-1), 2^k)`, and the last bucket overflows — values at or above
//! `2^63`. The record path is pure integer work (`leading_zeros`, a
//! saturating add and an array increment), so it is safe to call from
//! latency-sensitive pipeline stages: no floats, no allocation, no
//! branching on data-dependent bucket counts.
//!
//! Quantiles read from the bucket boundaries are approximate — accurate to
//! within one power of two — which is exactly the resolution stage-latency
//! monitoring needs.

/// Number of buckets: one for zero, one per highest-bit position up to
/// `2^62..2^63`, and one overflow bucket for values `>= 2^63`.
pub const BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram with running count / sum / min / max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Bucket index of `value`: 0 for zero, otherwise one plus the
    /// position of the highest set bit. Always `< BUCKETS`.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `index`, or `None` for the
    /// overflow bucket (and any out-of-range index).
    #[must_use]
    pub fn bucket_upper_bound(index: usize) -> Option<u64> {
        if index + 1 < BUCKETS {
            Some((1u64 << index) - 1)
        } else {
            None
        }
    }

    /// Records one observation. Count and sum saturate rather than wrap.
    pub fn record(&mut self, value: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let idx = Self::bucket_index(value).min(BUCKETS - 1);
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Per-bucket observation counts (see [`LogHistogram::bucket_index`]).
    #[must_use]
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Approximate quantile `q` (clamped to 0–1): the upper bound of the
    /// first bucket at which the cumulative count reaches `q` of the
    /// total, clamped to the observed maximum. `None` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let target = target.clamp(1, self.count);
        let mut cumulative = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(n);
            if cumulative >= target {
                let bound = Self::bucket_upper_bound(idx).unwrap_or(self.max);
                return Some(bound.min(self.max));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_bucket_zero() {
        let mut h = LogHistogram::new();
        h.record(0);
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(0));
        assert_eq!(h.sum(), 0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn max_value_lands_in_overflow_bucket() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(h.buckets()[BUCKETS - 1], 1);
        assert_eq!(h.max(), Some(u64::MAX));
        assert!(LogHistogram::bucket_upper_bound(BUCKETS - 1).is_none());
    }

    #[test]
    fn overflow_bucket_starts_at_two_to_the_sixty_three() {
        // 2^63 - 1 is the last finite bucket; 2^63 overflows.
        assert_eq!(LogHistogram::bucket_index((1u64 << 63) - 1), BUCKETS - 2);
        assert_eq!(LogHistogram::bucket_index(1u64 << 63), BUCKETS - 1);
        assert_eq!(
            LogHistogram::bucket_upper_bound(BUCKETS - 2),
            Some((1u64 << 63) - 1)
        );
    }

    #[test]
    fn power_of_two_boundaries() {
        // Each bucket k >= 1 covers [2^(k-1), 2^k).
        for k in 0..63u32 {
            let lo = 1u64 << k;
            let hi = (1u64 << (k + 1)) - 1;
            assert_eq!(LogHistogram::bucket_index(lo), (k + 1) as usize);
            assert_eq!(LogHistogram::bucket_index(hi), (k + 1) as usize);
        }
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn empty_histogram_has_no_extremes() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert!(h.min().is_none());
        assert!(h.max().is_none());
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        // q1 ≤ q2 ⇒ quantile(q1) ≤ quantile(q2), across distributions
        // that exercise the zero bucket, dense mid buckets, the last
        // finite bucket and the overflow bucket.
        let distributions: [&[u64]; 4] = [
            &[0, 0, 1, 2, 3, 500, 501, 1 << 40],
            &[7],
            &[0, u64::MAX, (1 << 63) - 1, 1 << 63],
            &[1, 1, 1, 2, 4, 8, 16, 32, 64, 128, 1024, 1_000_000],
        ];
        for values in distributions {
            let mut h = LogHistogram::new();
            for &v in values {
                h.record(v);
            }
            let mut prev = 0u64;
            for step in 0..=100u32 {
                let q = f64::from(step) / 100.0;
                let at = h.quantile(q).unwrap_or(0);
                assert!(
                    at >= prev,
                    "quantile({q}) = {at} < quantile(prev) = {prev} for {values:?}"
                );
                prev = at;
            }
            assert_eq!(h.quantile(1.0), h.max(), "q=1 is the observed max");
        }
    }

    #[test]
    fn quantile_is_within_one_power_of_two() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap_or(0);
        // Median 30 lives in bucket [16, 31].
        assert!((16..=31).contains(&p50), "p50 {p50}");
        let p100 = h.quantile(1.0).unwrap_or(0);
        assert_eq!(p100, 1000, "p100 clamps to observed max");
        // Out-of-range q clamps rather than panicking.
        assert!(h.quantile(7.0).is_some());
        assert!(h.quantile(-1.0).is_some());
    }
}

//! # tagbreathe-obs
//!
//! Zero-dependency observability for the TagBreathe pipeline: counters,
//! gauges, fixed log-bucket histograms and span-style stage timers behind
//! the cheap [`Recorder`] trait.
//!
//! The design centre is the **disabled path**: every instrumented pipeline
//! stage takes a `&dyn Recorder` (defaulting to [`NoopRecorder`]) and gates
//! all non-trivial metric work behind [`Recorder::enabled`], so monitoring
//! costs approximately one virtual call per report when nothing is
//! listening — the streaming ingest hot path stays amortised O(1) with no
//! clock reads, no allocation and no floating-point work.
//!
//! When something *is* listening, the concrete sink is [`Registry`]: a
//! thread-safe store keyed by `(name, label)` that exposes a
//! Prometheus-style plain-text rendering
//! ([`Registry::render_prometheus`]) and a JSON dump
//! ([`Registry::render_json`]) for machine consumption (the `stream_bench`
//! metrics sidecar, the `tagbreathe-cli metrics` subcommand).
//!
//! * [`recorder`] — the [`Recorder`] trait, [`NoopRecorder`], and the
//!   cloneable [`SharedRecorder`] handle long-lived stages store;
//! * [`registry`] — the recording [`Registry`] and its renderings;
//! * [`histogram`] — [`LogHistogram`], 64 power-of-two buckets plus an
//!   overflow bucket, integers only on the record path;
//! * [`span`] — [`StageTimer`], a drop guard that reads the clock only
//!   when the recorder is enabled;
//! * [`freshness`] — ingest→publication lag attribution: the
//!   [`freshness::Stage`] label codes and the [`freshness::WatermarkClock`]
//!   watermark-lag tracker;
//! * [`slo`] — declarative service-level objectives ([`slo::SloTable`])
//!   evaluated by a windowed multi-rate burn-rate state machine
//!   (ok → warning → burning);
//! * [`trace`] — the flight recorder: typed [`trace::TraceEvent`]s behind
//!   the [`Tracer`] trait, retained in a fixed-capacity overwrite-oldest
//!   ring ([`FlightRecorder`]) and exportable as Chrome trace-event JSON;
//! * [`json`] — a minimal JSON well-formedness checker so dependants can
//!   assert that emitted dumps parse without an external JSON crate.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use tagbreathe_obs::{Recorder, Registry, SharedRecorder};
//!
//! let registry = Arc::new(Registry::new());
//! let rec = SharedRecorder::new(registry.clone());
//!
//! // Instrumented code sees only `&dyn Recorder`.
//! rec.count("demo_reports_total", 3);
//! rec.gauge("demo_backlog", 1.5);
//! rec.record("demo_latency_ns", 1200);
//!
//! assert_eq!(registry.counter("demo_reports_total"), 3);
//! let text = registry.render_prometheus();
//! assert!(text.contains("demo_reports_total 3"));
//! tagbreathe_obs::json::validate(&registry.render_json())?;
//! # Ok::<(), tagbreathe_obs::json::JsonError>(())
//! ```
//!
//! And the disabled path — the default for every instrumented API:
//!
//! ```
//! use tagbreathe_obs::{NoopRecorder, Recorder};
//!
//! let rec = NoopRecorder;
//! assert!(!rec.enabled());
//! rec.count("never_stored", 1); // free: no state, no clock, no floats
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod freshness;
pub mod histogram;
pub mod json;
pub mod recorder;
pub mod registry;
pub mod slo;
pub mod span;
pub mod trace;

pub use freshness::{Stage, WatermarkClock};
pub use histogram::LogHistogram;
pub use recorder::{Label, NoopRecorder, Recorder, SharedRecorder};
pub use registry::{MetricsSnapshot, Registry};
pub use slo::{BurnRatePolicy, SloSpec, SloState, SloTable, SloTransition};
pub use span::StageTimer;
pub use trace::{FlightRecorder, NoopTracer, SharedTracer, TraceEvent, TraceSpan, Tracer};

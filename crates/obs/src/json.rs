//! A minimal JSON well-formedness checker.
//!
//! The workspace is zero-external-dependency, so the BENCH sidecar and
//! registry dumps are emitted by hand-rolled writers. This module closes
//! the loop: [`validate`] parses a string as one JSON value (RFC 8259
//! grammar, no semantic interpretation) so producers and CI can assert the
//! emitted text actually parses without pulling in a JSON crate.

/// Maximum nesting depth accepted before bailing out (guards the
/// recursive-descent parser's stack).
const MAX_DEPTH: usize = 128;

/// Why a text failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What the parser expected or found.
    pub what: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Validates that `text` is exactly one well-formed JSON value (with
/// optional surrounding whitespace).
///
/// # Errors
///
/// Returns the first syntax error found.
///
/// # Examples
///
/// ```
/// use tagbreathe_obs::json::validate;
///
/// assert!(validate("{\"a\": [1, 2.5e3, null]}").is_ok());
/// assert!(validate("{\"a\": }").is_err());
/// ```
pub fn validate(text: &str) -> Result<(), JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after the value"));
    }
    Ok(())
}

fn err(offset: usize, what: &'static str) -> JsonError {
    JsonError { offset, what }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos, depth),
        Some(b'[') => array(bytes, pos, depth),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(bytes, pos),
        Some(_) => Err(err(*pos, "expected a JSON value")),
        None => Err(err(*pos, "unexpected end of input")),
    }
}

fn object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), JsonError> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected a string key"));
        }
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':' after key"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), JsonError> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // consume opening quote
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !matches!(
                                bytes.get(*pos),
                                Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')
                            ) {
                                return Err(err(*pos, "bad unicode escape"));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(err(*pos, "bad escape sequence")),
                }
            }
            Some(b) if *b < 0x20 => return Err(err(*pos, "raw control character in string")),
            Some(_) => *pos += 1,
            None => return Err(err(*pos, "unterminated string")),
        }
    }
}

fn literal(bytes: &[u8], pos: &mut usize, word: &[u8]) -> Result<(), JsonError> {
    if bytes.len() >= *pos + word.len() && &bytes[*pos..*pos + word.len()] == word {
        *pos += word.len();
        Ok(())
    } else {
        Err(err(*pos, "bad literal"))
    }
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => digits(bytes, pos),
        _ => return Err(err(*pos, "expected a digit")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(err(*pos, "expected a digit after '.'"));
        }
        digits(bytes, pos);
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(err(*pos, "expected a digit in exponent"));
        }
        digits(bytes, pos);
    }
    Ok(())
}

fn digits(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for text in [
            "null",
            "true",
            "  false  ",
            "0",
            "-12.5e-3",
            "\"a \\\"quoted\\\" string\\n\"",
            "[]",
            "[1, [2, [3]], {\"k\": null}]",
            "{\"a\": 1, \"b\": {\"c\": [true, \"x\"]}}",
        ] {
            assert!(validate(text).is_ok(), "{text}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for text in [
            "",
            "{",
            "{\"a\": }",
            "[1,]",
            "{\"a\" 1}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"unterminated",
            "\"bad \\x escape\"",
            "{} extra",
            "{1: 2}",
        ] {
            assert!(validate(text).is_err(), "{text}");
        }
    }

    #[test]
    fn error_reports_offset_and_displays() {
        let err = validate("[1, oops]").err();
        assert_eq!(err.as_ref().map(|e| e.offset), Some(4));
        assert!(err.is_some_and(|e| e.to_string().contains("byte 4")));
    }

    #[test]
    fn depth_limit_guards_the_stack() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(validate(&deep).is_err());
    }
}

//! Declarative service-level objectives with burn-rate evaluation.
//!
//! The judgement half of the freshness loop (`crate::freshness` is the
//! measurement half): a host declares a table of upper-bound objectives —
//! e.g. *p99 snapshot lag < 250 ms*, *shed ratio < 0.1%*, *bytes per
//! resident user < ceiling* — and feeds each one a measured value at a
//! regular cadence ("ticks"; the ingest server ticks once per published
//! snapshot). A windowed multi-rate state machine classifies every
//! objective as [`SloState::Ok`], [`SloState::Warning`] or
//! [`SloState::Burning`] and reports each transition, so hosts can count
//! it, trace it, and fire a flight-recorder dump the moment an objective
//! starts burning.
//!
//! The machine is deliberately wall-clock-free: windows are counted in
//! ticks, so evaluation is deterministic and unit-testable. A tick is
//! *bad* when the measured value meets or exceeds the objective. The
//! multi-rate rule follows the SRE burn-rate pattern: **burning** needs
//! the bad fraction over both the short and the long window at or above
//! the fast rate (sustained, recent breach), **warning** needs both at
//! or above the slow rate (slow burn), anything less is ok.
//!
//! # Examples
//!
//! ```
//! use tagbreathe_obs::slo::{BurnRatePolicy, Slo, SloSpec, SloState};
//!
//! let mut slo = Slo::new(
//!     SloSpec::new("snapshot_lag_p99_ns", 250_000_000.0, "ns"),
//!     BurnRatePolicy::default(),
//! );
//! assert_eq!(slo.state(), SloState::Ok);
//! // A persistently breached objective burns immediately.
//! let transition = slo.evaluate(Some(1.0e9));
//! assert_eq!(transition.map(|t| t.to), Some(SloState::Burning));
//! ```

use std::fmt;

/// One objective's health, worst last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SloState {
    /// The objective is being met.
    Ok = 0,
    /// The error budget is burning slowly (sustained partial breach).
    Warning = 1,
    /// The error budget is burning fast (recent sustained breach).
    Burning = 2,
}

impl SloState {
    /// Stable lowercase name used in JSON and status renderings.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warning => "warning",
            SloState::Burning => "burning",
        }
    }

    /// The numeric code used as a metric label / gauge value.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            SloState::Ok => 0,
            SloState::Warning => 1,
            SloState::Burning => 2,
        }
    }
}

impl fmt::Display for SloState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A state change reported by [`Slo::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloTransition {
    /// State before this tick.
    pub from: SloState,
    /// State after this tick.
    pub to: SloState,
}

/// One declared upper-bound objective: `value < objective`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Objective name, e.g. `"snapshot_lag_p99_ns"`.
    pub name: &'static str,
    /// The bound the measured value must stay strictly below.
    pub objective: f64,
    /// Unit suffix for rendering, e.g. `"ns"`, `"ratio"`, `"bytes"`.
    pub unit: &'static str,
}

impl SloSpec {
    /// Declares an objective.
    #[must_use]
    pub fn new(name: &'static str, objective: f64, unit: &'static str) -> Self {
        SloSpec {
            name,
            objective,
            unit,
        }
    }

    /// Whether `value` breaches the objective (missing data never does).
    #[must_use]
    pub fn breached(&self, value: Option<f64>) -> bool {
        value.is_some_and(|v| v.is_nan() || v >= self.objective)
    }
}

/// Window lengths and rates for the burn-rate machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRatePolicy {
    /// Short (fast-burn) window, ticks.
    pub short_window: usize,
    /// Long (slow-burn) window, ticks. Clamped up to the short window.
    pub long_window: usize,
    /// Bad fraction over both windows at which the slow burn warns.
    pub warning_ratio: f64,
    /// Bad fraction over both windows at which the fast burn fires.
    pub burning_ratio: f64,
}

impl Default for BurnRatePolicy {
    /// 3-tick fast window and 12-tick slow window; warn at a quarter of
    /// ticks bad, burn at three quarters. At the server's default 5 s
    /// snapshot cadence that is a 15 s fast / 60 s slow alert pair.
    fn default() -> Self {
        BurnRatePolicy {
            short_window: 3,
            long_window: 12,
            warning_ratio: 0.25,
            burning_ratio: 0.75,
        }
    }
}

/// The windowed multi-rate burn-rate state machine for one objective.
#[derive(Debug, Clone)]
pub struct BurnRateMachine {
    policy: BurnRatePolicy,
    /// Ring of the last `long_window` tick outcomes, oldest first.
    window: Vec<bool>,
    state: SloState,
}

impl BurnRateMachine {
    /// Creates a machine in [`SloState::Ok`]. Degenerate policies are
    /// clamped sane (windows at least 1 tick, long ≥ short).
    #[must_use]
    pub fn new(policy: BurnRatePolicy) -> Self {
        let short = policy.short_window.max(1);
        let long = policy.long_window.max(short);
        BurnRateMachine {
            policy: BurnRatePolicy {
                short_window: short,
                long_window: long,
                ..policy
            },
            window: Vec::with_capacity(long),
            state: SloState::Ok,
        }
    }

    /// Folds in one tick outcome; returns the transition if the state
    /// changed.
    pub fn tick(&mut self, bad: bool) -> Option<SloTransition> {
        if self.window.len() >= self.policy.long_window {
            self.window.remove(0);
        }
        self.window.push(bad);
        let next = self.classify();
        if next == self.state {
            return None;
        }
        let from = self.state;
        self.state = next;
        Some(SloTransition { from, to: next })
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> SloState {
        self.state
    }

    /// Bad fraction over the short (fast-burn) window.
    #[must_use]
    pub fn short_ratio(&self) -> f64 {
        ratio(suffix(&self.window, self.policy.short_window))
    }

    /// Bad fraction over the long (slow-burn) window.
    #[must_use]
    pub fn long_ratio(&self) -> f64 {
        ratio(&self.window)
    }

    fn classify(&self) -> SloState {
        let short = self.short_ratio();
        let long = self.long_ratio();
        if short >= self.policy.burning_ratio && long >= self.policy.burning_ratio {
            SloState::Burning
        } else if short >= self.policy.warning_ratio && long >= self.policy.warning_ratio {
            SloState::Warning
        } else {
            SloState::Ok
        }
    }
}

fn suffix(window: &[bool], len: usize) -> &[bool] {
    let start = window.len().saturating_sub(len);
    window.get(start..).unwrap_or(window)
}

fn ratio(ticks: &[bool]) -> f64 {
    if ticks.is_empty() {
        return 0.0;
    }
    let bad = ticks.iter().filter(|&&b| b).count();
    bad as f64 / ticks.len() as f64
}

/// One declared objective plus its burn-rate state and last measurement.
#[derive(Debug, Clone)]
pub struct Slo {
    /// The declared objective.
    pub spec: SloSpec,
    machine: BurnRateMachine,
    last_value: Option<f64>,
}

impl Slo {
    /// Pairs an objective with a burn-rate policy.
    #[must_use]
    pub fn new(spec: SloSpec, policy: BurnRatePolicy) -> Self {
        Slo {
            spec,
            machine: BurnRateMachine::new(policy),
            last_value: None,
        }
    }

    /// Feeds one measured value (`None` when the metric has no data yet —
    /// counted as a good tick); returns the transition, if any.
    pub fn evaluate(&mut self, value: Option<f64>) -> Option<SloTransition> {
        self.last_value = value;
        self.machine.tick(self.spec.breached(value))
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> SloState {
        self.machine.state()
    }

    /// A rendering-ready row for this objective.
    #[must_use]
    pub fn row(&self) -> SloRow {
        SloRow {
            name: self.spec.name,
            objective: self.spec.objective,
            unit: self.spec.unit,
            value: self.last_value,
            state: self.machine.state(),
            short_ratio: self.machine.short_ratio(),
            long_ratio: self.machine.long_ratio(),
        }
    }
}

/// A table of objectives evaluated together at each tick.
#[derive(Debug, Clone, Default)]
pub struct SloTable {
    slos: Vec<Slo>,
}

impl SloTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        SloTable::default()
    }

    /// Appends an objective.
    pub fn push(&mut self, spec: SloSpec, policy: BurnRatePolicy) {
        self.slos.push(Slo::new(spec, policy));
    }

    /// Number of objectives.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slos.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slos.is_empty()
    }

    /// The objectives, declaration order.
    #[must_use]
    pub fn slos(&self) -> &[Slo] {
        &self.slos
    }

    /// Ticks every objective with its measured value (by declaration
    /// index; missing entries tick as no-data). Returns the transitions
    /// that fired, as `(index, transition)`.
    pub fn evaluate(&mut self, values: &[Option<f64>]) -> Vec<(usize, SloTransition)> {
        self.slos
            .iter_mut()
            .enumerate()
            .filter_map(|(i, slo)| {
                let value = values.get(i).copied().flatten();
                slo.evaluate(value).map(|t| (i, t))
            })
            .collect()
    }

    /// Rendering-ready rows, declaration order.
    #[must_use]
    pub fn rows(&self) -> Vec<SloRow> {
        self.slos.iter().map(Slo::row).collect()
    }

    /// The worst state across the table (ok when empty).
    #[must_use]
    pub fn worst(&self) -> SloState {
        self.slos
            .iter()
            .map(Slo::state)
            .max()
            .unwrap_or(SloState::Ok)
    }
}

/// One objective's rendering-ready status.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloRow {
    /// Objective name.
    pub name: &'static str,
    /// Declared upper bound.
    pub objective: f64,
    /// Unit suffix.
    pub unit: &'static str,
    /// Last measured value (`None` before any data).
    pub value: Option<f64>,
    /// Current burn-rate state.
    pub state: SloState,
    /// Bad fraction over the fast window.
    pub short_ratio: f64,
    /// Bad fraction over the slow window.
    pub long_ratio: f64,
}

/// Renders rows as one JSON object — the `/slo` endpoint body and the
/// `tagbreathe-cli slo` machine output. Valid per [`crate::json`].
#[must_use]
pub fn render_rows_json(rows: &[SloRow]) -> String {
    use std::fmt::Write as _;
    let worst = rows.iter().map(|r| r.state).max().unwrap_or(SloState::Ok);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"worst\": \"{}\",", worst.as_str());
    out.push_str("  \"slos\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"unit\": \"{}\", \"objective\": {}, \"value\": {}, \
             \"state\": \"{}\", \"short_ratio\": {}, \"long_ratio\": {}}}{comma}",
            row.name,
            row.unit,
            json_number(row.objective),
            row.value.map_or("null".to_string(), json_number),
            row.state.as_str(),
            json_number(row.short_ratio),
            json_number(row.long_ratio),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders rows as a fixed-width plain-text table — the `/status` section
/// and the `tagbreathe-cli slo` terminal output.
#[must_use]
pub fn render_rows_text(rows: &[SloRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>14} {:>14} {:>8} {:>6} {:>6}",
        "slo", "value", "objective", "state", "fast", "slow"
    );
    for row in rows {
        let value = row
            .value
            .map_or("-".to_string(), |v| format_value(v, row.unit));
        let _ = writeln!(
            out,
            "{:<28} {:>14} {:>14} {:>8} {:>5.0}% {:>5.0}%",
            row.name,
            value,
            format_value(row.objective, row.unit),
            row.state.as_str(),
            row.short_ratio * 100.0,
            row.long_ratio * 100.0,
        );
    }
    out
}

fn format_value(value: f64, unit: &str) -> String {
    if unit == "ns" && value.is_finite() {
        // Lag objectives read better in milliseconds.
        format!("{:.1} ms", value / 1.0e6)
    } else if value.is_finite() && value.abs() >= 100.0 {
        format!("{value:.0} {unit}")
    } else {
        format!("{value} {unit}")
    }
}

/// JSON has no NaN/Inf literals; map non-finite values to null.
fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn policy() -> BurnRatePolicy {
        BurnRatePolicy {
            short_window: 2,
            long_window: 4,
            warning_ratio: 0.25,
            burning_ratio: 1.0,
        }
    }

    #[test]
    fn machine_walks_ok_warning_burning_and_back() {
        let mut m = BurnRateMachine::new(policy());
        assert_eq!(m.state(), SloState::Ok);
        // Good ticks keep it ok.
        assert!(m.tick(false).is_none());
        assert!(m.tick(false).is_none());
        // One bad tick in four: long ratio 1/3 ≥ 0.25 but the short
        // window goes [false, true] → 0.5 < 1.0: warning, not burning.
        assert_eq!(
            m.tick(true).map(|t| (t.from, t.to)),
            Some((SloState::Ok, SloState::Warning))
        );
        // Sustained badness saturates both windows → burning.
        assert!(m.tick(true).is_none(), "short 1.0 but long 2/4 = 0.5");
        assert!(m.tick(true).is_none(), "long 3/4 = 0.75 < 1.0");
        assert_eq!(m.tick(true).map(|t| t.to), Some(SloState::Burning));
        assert_eq!(m.state(), SloState::Burning);
        // Recovery drains the fast window first, then the slow one.
        assert_eq!(m.tick(false).map(|t| t.to), Some(SloState::Warning));
        assert_eq!(
            m.tick(false).map(|t| t.to),
            Some(SloState::Ok),
            "short window all-good again"
        );
        assert!(m.tick(false).is_none());
    }

    #[test]
    fn impossible_objective_burns_on_first_tick() {
        let mut slo = Slo::new(SloSpec::new("lag", 0.0, "ns"), BurnRatePolicy::default());
        assert_eq!(
            slo.evaluate(Some(5.0)).map(|t| (t.from, t.to)),
            Some((SloState::Ok, SloState::Burning))
        );
    }

    #[test]
    fn missing_data_and_nan_are_good_and_bad_respectively() {
        let spec = SloSpec::new("x", 10.0, "ns");
        assert!(!spec.breached(None));
        assert!(!spec.breached(Some(9.9)));
        assert!(spec.breached(Some(10.0)), "bound is strict");
        assert!(spec.breached(Some(f64::NAN)), "unmeasurable is breached");
    }

    #[test]
    fn table_evaluates_by_index_and_tracks_worst() {
        let mut table = SloTable::new();
        table.push(SloSpec::new("a", 1.0, "ns"), policy());
        table.push(SloSpec::new("b", 1.0, "ratio"), policy());
        assert_eq!(table.len(), 2);
        assert_eq!(table.worst(), SloState::Ok);
        let fired = table.evaluate(&[Some(0.5), Some(2.0)]);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired.first().map(|(i, _)| *i), Some(1));
        // A freshly-filled window is all-bad: straight to burning.
        assert_eq!(table.worst(), SloState::Burning);
        let rows = table.rows();
        assert_eq!(rows.first().map(|r| r.state), Some(SloState::Ok));
        assert_eq!(rows.last().map(|r| r.value), Some(Some(2.0)));
    }

    #[test]
    fn renderings_are_valid_and_carry_states() {
        let mut table = SloTable::new();
        table.push(SloSpec::new("snapshot_lag_p99_ns", 2.5e8, "ns"), policy());
        table.push(SloSpec::new("shed_ratio", 0.001, "ratio"), policy());
        let _ = table.evaluate(&[Some(1.0e6), None]);
        let rows = table.rows();
        let json_out = render_rows_json(&rows);
        assert!(json::validate(&json_out).is_ok(), "valid JSON: {json_out}");
        assert!(json_out.contains("\"worst\": \"ok\""), "{json_out}");
        assert!(json_out.contains("\"value\": null"), "{json_out}");
        let text = render_rows_text(&rows);
        assert!(text.contains("snapshot_lag_p99_ns"), "{text}");
        assert!(text.contains("ok"), "{text}");
    }

    #[test]
    fn degenerate_policy_is_clamped() {
        let m = BurnRateMachine::new(BurnRatePolicy {
            short_window: 0,
            long_window: 0,
            warning_ratio: 0.5,
            burning_ratio: 0.5,
        });
        assert_eq!(m.state(), SloState::Ok);
    }
}

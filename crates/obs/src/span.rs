//! Span-style stage timers.
//!
//! [`StageTimer`] is a drop guard: construct it at the top of a pipeline
//! stage and the elapsed wall time lands in the named histogram when it
//! goes out of scope. The clock is read only when the recorder is enabled,
//! so a timer on the no-op path costs one branch.

use crate::recorder::Recorder;
use std::fmt;
use std::time::Instant;

/// Times a stage and records elapsed nanoseconds into histogram `name`
/// on drop.
///
/// # Examples
///
/// ```
/// use tagbreathe_obs::{Registry, StageTimer};
///
/// let registry = Registry::new();
/// {
///     let _timer = StageTimer::start(&registry, "demo_stage_ns");
///     // ... stage work ...
/// }
/// let h = registry.histogram("demo_stage_ns").expect("recorded");
/// assert_eq!(h.count(), 1);
/// ```
pub struct StageTimer<'a> {
    recorder: &'a dyn Recorder,
    name: &'static str,
    start: Option<Instant>,
}

impl<'a> StageTimer<'a> {
    /// Starts a timer for histogram `name`. When `recorder` is disabled
    /// the clock is never read and drop records nothing.
    #[must_use]
    pub fn start(recorder: &'a dyn Recorder, name: &'static str) -> Self {
        let start = if recorder.enabled() {
            Some(Instant::now())
        } else {
            None
        };
        StageTimer {
            recorder,
            name,
            start,
        }
    }

    /// Whether the timer is live (the recorder was enabled at start).
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.recorder.record(self.name, ns);
        }
    }
}

impl fmt::Debug for StageTimer<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageTimer")
            .field("name", &self.name)
            .field("running", &self.is_running())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::NoopRecorder;
    use crate::registry::Registry;

    #[test]
    fn disabled_timer_records_nothing_and_reads_no_clock() {
        let rec = NoopRecorder;
        let timer = StageTimer::start(&rec, "t_ns");
        assert!(!timer.is_running());
        drop(timer);
    }

    #[test]
    fn enabled_timer_records_one_observation() {
        let registry = Registry::new();
        {
            let timer = StageTimer::start(&registry, "t_ns");
            assert!(timer.is_running());
        }
        let count = registry.histogram("t_ns").map(|h| h.count());
        assert_eq!(count, Some(1));
    }

    #[test]
    fn debug_prints_name() {
        let registry = Registry::new();
        let timer = StageTimer::start(&registry, "t_ns");
        assert!(format!("{timer:?}").contains("t_ns"));
    }
}

//! The flight recorder: typed trace events in a fixed-capacity,
//! overwrite-oldest ring buffer, plus a Chrome trace-event export.
//!
//! Aggregate metrics ([`crate::registry`]) say *how often* something
//! happened; this module records *what happened, in order* — the exact
//! sequence of per-read provenance, phase accepts/rejects, channel hops
//! and stage spans that led to one breathing estimate. The design centre
//! mirrors the [`Recorder`](crate::Recorder) trait:
//!
//! * instrumented code takes `&dyn Tracer` and gates all event
//!   construction behind [`Tracer::enabled`], so a [`NoopTracer`] costs
//!   one virtual call;
//! * [`TraceEvent`] is `Copy` and fixed-size — names are `&'static str`,
//!   payloads are plain numbers — so emitting into the preallocated ring
//!   never allocates on the hot path;
//! * the ring overwrites its oldest event when full ([`FlightRecorder`]),
//!   keeping the *most recent* history (the "flight recorder" semantics)
//!   and counting what it dropped.
//!
//! [`chrome_trace`] renders a slice of events as Chrome trace-event JSON
//! (loadable in `chrome://tracing` or Perfetto); the per-user / per-tag /
//! per-port keys on every event make a single user's last-N-seconds
//! history extractable with [`events_for_user`].
//!
//! # Examples
//!
//! ```
//! use tagbreathe_obs::trace::{chrome_trace, FlightRecorder, TraceEvent, Tracer};
//!
//! let ring = FlightRecorder::with_capacity(128)?;
//! ring.emit(TraceEvent::instant("snapshot", 5.0).with_user(1));
//! ring.emit(TraceEvent::read(5.01, 1, 2, 1, 7, 1.25, -55.0));
//! assert_eq!(ring.len(), 2);
//! let events = ring.snapshot();
//! tagbreathe_obs::json::validate(&chrome_trace(&events))?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// What a [`TraceEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A completed span: `dur_ns` holds the elapsed wall time.
    Span,
    /// A point-in-time marker (phase accept/reject, channel hop, anomaly).
    Instant,
    /// Per-read provenance: the payload carries the full report fields
    /// (`channel`, phase in `value_a`, RSSI in `value_b`), enough to
    /// reconstruct the read for deterministic replay.
    Read,
}

/// One fixed-size trace event. `Copy`, no heap: pushing into the ring is
/// allocation-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Event kind.
    pub kind: EventKind,
    /// Event name (static so hot-path emission never allocates).
    pub name: &'static str,
    /// Stream time of the event, seconds.
    pub time_s: f64,
    /// Span duration, nanoseconds (0 for non-span events).
    pub dur_ns: u64,
    /// User the event belongs to (0 = not user-scoped).
    pub user: u64,
    /// Tag ID within the user (0 = not tag-scoped).
    pub tag: u32,
    /// Antenna port (0 = not port-scoped).
    pub port: u8,
    /// RF channel index.
    pub channel: u16,
    /// First payload slot (meaning depends on `name`; phase for reads).
    pub value_a: f64,
    /// Second payload slot (RSSI for reads).
    pub value_b: f64,
}

impl TraceEvent {
    /// An instant event with no scope or payload.
    #[must_use]
    pub fn instant(name: &'static str, time_s: f64) -> Self {
        TraceEvent {
            kind: EventKind::Instant,
            name,
            time_s,
            dur_ns: 0,
            user: 0,
            tag: 0,
            port: 0,
            channel: 0,
            value_a: 0.0,
            value_b: 0.0,
        }
    }

    /// A completed span of `dur_ns` nanoseconds starting at `time_s`.
    #[must_use]
    pub fn span(name: &'static str, time_s: f64, dur_ns: u64) -> Self {
        TraceEvent {
            kind: EventKind::Span,
            dur_ns,
            ..TraceEvent::instant(name, time_s)
        }
    }

    /// A per-read provenance event carrying the full report fields.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn read(
        time_s: f64,
        user: u64,
        tag: u32,
        port: u8,
        channel: u16,
        phase_rad: f64,
        rssi_dbm: f64,
    ) -> Self {
        TraceEvent {
            kind: EventKind::Read,
            name: "read",
            time_s,
            dur_ns: 0,
            user,
            tag,
            port,
            channel,
            value_a: phase_rad,
            value_b: rssi_dbm,
        }
    }

    /// Scopes the event to a user.
    #[must_use]
    pub fn with_user(mut self, user: u64) -> Self {
        self.user = user;
        self
    }

    /// Scopes the event to a tag.
    #[must_use]
    pub fn with_tag(mut self, tag: u32) -> Self {
        self.tag = tag;
        self
    }

    /// Scopes the event to an antenna port.
    #[must_use]
    pub fn with_port(mut self, port: u8) -> Self {
        self.port = port;
        self
    }

    /// Attaches the RF channel index.
    #[must_use]
    pub fn with_channel(mut self, channel: u16) -> Self {
        self.channel = channel;
        self
    }

    /// Attaches the payload slots.
    #[must_use]
    pub fn with_values(mut self, value_a: f64, value_b: f64) -> Self {
        self.value_a = value_a;
        self.value_b = value_b;
        self
    }
}

/// A trace-event sink.
///
/// Same contract as [`crate::Recorder`]: implementations must be cheap and
/// non-blocking enough for the streaming ingest path, and instrumented
/// code gates event *construction* behind [`Tracer::enabled`] so a
/// disabled tracer costs ~0.
pub trait Tracer: Send + Sync {
    /// Whether this tracer stores anything at all.
    fn enabled(&self) -> bool;

    /// Accepts one event.
    fn emit(&self, event: TraceEvent);
}

/// The do-nothing tracer: `enabled()` is `false`, `emit` is empty. The
/// default for every traced API.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _event: TraceEvent) {}
}

/// Error returned when a [`FlightRecorder`] is configured with zero
/// capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError;

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flight recorder capacity must be at least 1 event")
    }
}

impl std::error::Error for CapacityError {}

/// Interior ring state: a preallocated buffer, a write head, and the live
/// length. `head` always points at the slot the *next* event lands in, so
/// once full the oldest event is at `head`.
#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    head: usize,
    len: usize,
}

/// The flight recorder: a thread-safe, fixed-capacity, overwrite-oldest
/// ring of [`TraceEvent`]s.
///
/// The buffer is allocated once at construction; [`Tracer::emit`] only
/// moves a `Copy` struct into a slot, so recording never allocates. When
/// the ring is full the oldest event is overwritten and counted in
/// [`FlightRecorder::dropped`].
///
/// # Examples
///
/// ```
/// use tagbreathe_obs::trace::{FlightRecorder, TraceEvent, Tracer};
///
/// let ring = FlightRecorder::with_capacity(2)?;
/// for i in 0..3 {
///     ring.emit(TraceEvent::instant("tick", f64::from(i)));
/// }
/// // Oldest-first snapshot; the t=0 tick was overwritten.
/// let times: Vec<f64> = ring.snapshot().iter().map(|e| e.time_s).collect();
/// assert_eq!(times, [1.0, 2.0]);
/// assert_eq!(ring.dropped(), 1);
/// # Ok::<(), tagbreathe_obs::trace::CapacityError>(())
/// ```
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    /// Overwrite counter. A standalone `Relaxed` statistic (declared in
    /// lint.toml `[atomics]`): it synchronises nothing, so readers never
    /// take the ring lock just to poll it.
    dropped: AtomicU64,
    capacity: usize,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] for `capacity == 0` — a zero-length ring
    /// would silently drop every event.
    pub fn with_capacity(capacity: usize) -> Result<Self, CapacityError> {
        if capacity == 0 {
            return Err(CapacityError);
        }
        Ok(FlightRecorder {
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity),
                head: 0,
                len: 0,
            }),
            dropped: AtomicU64::new(0),
            capacity,
        })
    }

    fn lock(&self) -> MutexGuard<'_, Ring> {
        // A poisoned lock only means another thread panicked mid-emit; the
        // ring contents are still the best history available.
        self.ring.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events overwritten since construction (or the last
    /// [`FlightRecorder::clear`]).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies the retained events out, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let ring = self.lock();
        let mut out = Vec::with_capacity(ring.len);
        if ring.len < self.capacity {
            out.extend_from_slice(ring.buf.get(..ring.len).unwrap_or(&ring.buf));
        } else {
            // Full ring: oldest at head, wrapping.
            out.extend_from_slice(ring.buf.get(ring.head..).unwrap_or_default());
            out.extend_from_slice(ring.buf.get(..ring.head).unwrap_or(&ring.buf));
        }
        out
    }

    /// Discards all retained events and resets the dropped counter.
    pub fn clear(&self) {
        // The counter is a standalone relaxed statistic — reset it outside
        // the ring guard so no atomic work happens under the lock.
        self.dropped.store(0, Ordering::Relaxed);
        let mut ring = self.lock();
        ring.buf.clear();
        ring.head = 0;
        ring.len = 0;
    }
}

impl Tracer for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&self, event: TraceEvent) {
        let mut ring = self.lock();
        if ring.len < self.capacity {
            // Still filling the preallocated buffer.
            ring.buf.push(event);
            ring.len += 1;
            ring.head = ring.len % self.capacity;
        } else {
            let head = ring.head;
            ring.buf[head] = event;
            ring.head = (head + 1) % self.capacity;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A cloneable, thread-safe tracer handle — the [`crate::SharedRecorder`]
/// twin for trace events. The no-op default allocates nothing.
#[derive(Clone, Default)]
pub struct SharedTracer {
    inner: Option<Arc<dyn Tracer>>,
}

impl SharedTracer {
    /// A handle that records nothing (the default).
    #[must_use]
    pub fn noop() -> Self {
        SharedTracer { inner: None }
    }

    /// Wraps a concrete tracer. `Arc<FlightRecorder>` coerces directly.
    #[must_use]
    pub fn new(tracer: Arc<dyn Tracer>) -> Self {
        SharedTracer {
            inner: Some(tracer),
        }
    }

    /// Borrows the underlying tracer as a trait object.
    #[must_use]
    pub fn as_dyn(&self) -> &dyn Tracer {
        match &self.inner {
            Some(tracer) => tracer.as_ref(),
            None => &NoopTracer,
        }
    }
}

impl fmt::Debug for SharedTracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedTracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer for SharedTracer {
    fn enabled(&self) -> bool {
        self.as_dyn().enabled()
    }

    fn emit(&self, event: TraceEvent) {
        self.as_dyn().emit(event);
    }
}

/// A span drop guard: emits one [`EventKind::Span`] event with the
/// elapsed wall time when it goes out of scope. The clock is read only
/// when the tracer is enabled, so a guard on the no-op path costs one
/// branch.
///
/// # Examples
///
/// ```
/// use tagbreathe_obs::trace::{FlightRecorder, TraceSpan};
///
/// let ring = FlightRecorder::with_capacity(8)?;
/// {
///     let _span = TraceSpan::start(&ring, "demo_stage", 12.5);
///     // ... stage work ...
/// }
/// assert_eq!(ring.snapshot().first().map(|e| e.name), Some("demo_stage"));
/// # Ok::<(), tagbreathe_obs::trace::CapacityError>(())
/// ```
pub struct TraceSpan<'a> {
    tracer: &'a dyn Tracer,
    name: &'static str,
    time_s: f64,
    start: Option<Instant>,
}

impl<'a> TraceSpan<'a> {
    /// Starts a span named `name` at stream time `time_s`. When `tracer`
    /// is disabled the clock is never read and drop emits nothing.
    #[must_use]
    pub fn start(tracer: &'a dyn Tracer, name: &'static str, time_s: f64) -> Self {
        let start = if tracer.enabled() {
            Some(Instant::now())
        } else {
            None
        };
        TraceSpan {
            tracer,
            name,
            time_s,
            start,
        }
    }

    /// Whether the span is live (the tracer was enabled at start).
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.tracer
                .emit(TraceEvent::span(self.name, self.time_s, ns));
        }
    }
}

impl fmt::Debug for TraceSpan<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSpan")
            .field("name", &self.name)
            .field("running", &self.is_running())
            .finish()
    }
}

/// The events of `events` scoped to one user, preserving order.
#[must_use]
pub fn events_for_user(events: &[TraceEvent], user: u64) -> Vec<TraceEvent> {
    events.iter().filter(|e| e.user == user).copied().collect()
}

/// Renders events as Chrome trace-event JSON — one
/// `{"traceEvents": [...]}` object loadable in `chrome://tracing` or
/// Perfetto. Spans become complete (`"ph": "X"`) events with
/// microsecond timestamps and durations; instants and reads become
/// thread-scoped instant (`"ph": "i"`) events. The user maps to `pid`
/// and the antenna port to `tid`, so each user renders as one process
/// row with per-port tracks.
#[must_use]
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        let comma = if i + 1 < events.len() { "," } else { "" };
        let ts = finite_or_zero(e.time_s * 1.0e6);
        let common = format!(
            "\"name\": \"{}\", \"ts\": {}, \"pid\": {}, \"tid\": {}",
            escape(e.name),
            ts,
            e.user,
            e.port
        );
        let args = format!(
            "{{\"tag\": {}, \"channel\": {}, \"a\": {}, \"b\": {}}}",
            e.tag,
            e.channel,
            finite_or_zero(e.value_a),
            finite_or_zero(e.value_b)
        );
        let line = match e.kind {
            EventKind::Span => format!(
                "{{\"ph\": \"X\", \"cat\": \"span\", {common}, \"dur\": {}, \"args\": {args}}}{comma}",
                finite_or_zero(e.dur_ns as f64 / 1.0e3)
            ),
            EventKind::Instant => format!(
                "{{\"ph\": \"i\", \"s\": \"t\", \"cat\": \"instant\", {common}, \"args\": {args}}}{comma}"
            ),
            EventKind::Read => format!(
                "{{\"ph\": \"i\", \"s\": \"t\", \"cat\": \"read\", {common}, \"args\": {args}}}{comma}"
            ),
        };
        let _ = writeln!(out, "{line}");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON has no NaN/Inf literals; clamp non-finite payloads to 0.
fn finite_or_zero(value: f64) -> f64 {
    if value.is_finite() {
        value
    } else {
        0.0
    }
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn ticks(n: usize) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| TraceEvent::instant("tick", i as f64))
            .collect()
    }

    #[test]
    fn capacity_zero_is_rejected() {
        assert_eq!(FlightRecorder::with_capacity(0).err(), Some(CapacityError));
        let msg = CapacityError.to_string();
        assert!(msg.contains("at least 1"), "{msg}");
    }

    #[test]
    fn capacity_one_keeps_only_the_newest_event() -> TestResult {
        let ring = FlightRecorder::with_capacity(1)?;
        for e in ticks(5) {
            ring.emit(e);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events.first().map(|e| e.time_s), Some(4.0));
        assert_eq!(ring.dropped(), 4);
        Ok(())
    }

    #[test]
    fn wraparound_at_exact_capacity_drops_nothing() -> TestResult {
        let ring = FlightRecorder::with_capacity(8)?;
        for e in ticks(8) {
            ring.emit(e);
        }
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.dropped(), 0);
        let times: Vec<f64> = ring.snapshot().iter().map(|e| e.time_s).collect();
        assert_eq!(times, [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        // One more event crosses the seam: oldest is gone, order holds.
        ring.emit(TraceEvent::instant("tick", 8.0));
        let times: Vec<f64> = ring.snapshot().iter().map(|e| e.time_s).collect();
        assert_eq!(times, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(ring.dropped(), 1);
        Ok(())
    }

    #[test]
    fn ordering_is_preserved_across_many_wraps() -> TestResult {
        let ring = FlightRecorder::with_capacity(7)?;
        for e in ticks(100) {
            ring.emit(e);
        }
        let times: Vec<f64> = ring.snapshot().iter().map(|e| e.time_s).collect();
        let expect: Vec<f64> = (93..100).map(f64::from).collect();
        assert_eq!(times, expect);
        assert_eq!(ring.dropped(), 93);
        assert_eq!(ring.capacity(), 7);
        Ok(())
    }

    #[test]
    fn clear_resets_contents_and_dropped() -> TestResult {
        let ring = FlightRecorder::with_capacity(2)?;
        for e in ticks(5) {
            ring.emit(e);
        }
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        ring.emit(TraceEvent::instant("tick", 9.0));
        assert_eq!(ring.len(), 1);
        Ok(())
    }

    #[test]
    fn noop_tracer_is_disabled_and_spans_skip_the_clock() {
        let tracer = NoopTracer;
        assert!(!tracer.enabled());
        tracer.emit(TraceEvent::instant("never", 0.0));
        let span = TraceSpan::start(&tracer, "s", 0.0);
        assert!(!span.is_running());
        drop(span);
    }

    #[test]
    fn shared_tracer_delegates() -> TestResult {
        let ring = Arc::new(FlightRecorder::with_capacity(4)?);
        let shared = SharedTracer::new(ring.clone());
        assert!(shared.enabled());
        shared.emit(TraceEvent::instant("via_shared", 1.0));
        assert_eq!(ring.len(), 1);
        assert!(!SharedTracer::default().enabled());
        assert!(format!("{shared:?}").contains("enabled: true"));
        Ok(())
    }

    #[test]
    fn span_guard_emits_duration() -> TestResult {
        let ring = FlightRecorder::with_capacity(4)?;
        {
            let span = TraceSpan::start(&ring, "stage", 2.5);
            assert!(span.is_running());
            assert!(format!("{span:?}").contains("stage"));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 1);
        let e = events.first().copied().ok_or("no event")?;
        assert_eq!(e.kind, EventKind::Span);
        assert_eq!(e.time_s, 2.5);
        Ok(())
    }

    #[test]
    fn events_filter_by_user() {
        let events = vec![
            TraceEvent::instant("a", 0.0).with_user(1),
            TraceEvent::instant("b", 1.0).with_user(2),
            TraceEvent::read(2.0, 1, 3, 1, 7, 0.5, -50.0),
        ];
        let mine = events_for_user(&events, 1);
        assert_eq!(mine.len(), 2);
        assert!(mine.iter().all(|e| e.user == 1));
    }

    #[test]
    fn chrome_trace_is_valid_json_for_all_kinds() -> TestResult {
        let events = vec![
            TraceEvent::span("snapshot", 5.0, 12_345).with_user(1),
            TraceEvent::instant("channel_hop", 5.1)
                .with_user(1)
                .with_port(2)
                .with_values(3.0, 7.0),
            TraceEvent::read(5.2, 1, 0, 1, 7, 1.25, -55.0),
            // Non-finite payloads must not corrupt the JSON.
            TraceEvent::instant("bad", f64::NAN).with_values(f64::INFINITY, f64::NAN),
        ];
        let text = chrome_trace(&events);
        json::validate(&text)?;
        assert!(text.contains("\"ph\": \"X\""), "{text}");
        assert!(text.contains("\"cat\": \"read\""), "{text}");
        assert!(text.contains("\"pid\": 1"), "{text}");
        Ok(())
    }

    #[test]
    fn chrome_trace_of_no_events_is_valid() -> TestResult {
        json::validate(&chrome_trace(&[]))?;
        Ok(())
    }
}

//! The [`Recorder`] trait and its no-op / shared implementations.
//!
//! Instrumented pipeline code never names a concrete sink: it takes
//! `&dyn Recorder` and calls [`Recorder::count`] / [`Recorder::gauge`] /
//! [`Recorder::observe`]. The two shipped implementations are
//! [`NoopRecorder`] (the default everywhere — `enabled()` is `false`, so
//! instrumentation costs one virtual call) and
//! [`crate::registry::Registry`] (records everything). [`SharedRecorder`]
//! is the cloneable, thread-safe handle long-lived stages store, so a
//! `StreamingMonitor`-style owner stays `Send + Debug` without generic
//! plumbing.

use std::fmt;
use std::sync::Arc;

/// One metric label dimension — e.g. `port="2"` on the per-antenna
/// link-quality gauges. Values are integers so labelled hot-path metrics
/// stay float-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label {
    /// Label name, e.g. `"port"`.
    pub name: &'static str,
    /// Label value.
    pub value: u64,
}

impl Label {
    /// Creates a label.
    #[must_use]
    pub fn new(name: &'static str, value: u64) -> Self {
        Label { name, value }
    }

    /// The conventional antenna-port label.
    #[must_use]
    pub fn port(port: u8) -> Self {
        Label::new("port", u64::from(port))
    }

    /// The conventional fleet-shard label.
    #[must_use]
    pub fn shard(shard: u32) -> Self {
        Label::new("shard", u64::from(shard))
    }

    /// The conventional ingest-reader label (server-side sessions).
    #[must_use]
    pub fn reader(reader: u32) -> Self {
        Label::new("reader", u64::from(reader))
    }

    /// The conventional protocol-error-code label on shed counters.
    #[must_use]
    pub fn code(code: u8) -> Self {
        Label::new("code", u64::from(code))
    }

    /// The conventional pipeline-stage label on the snapshot-lag
    /// histogram (codes documented by `crate::freshness::Stage`).
    #[must_use]
    pub fn stage(code: u8) -> Self {
        Label::new("stage", u64::from(code))
    }
}

/// A metric sink.
///
/// Implementations must be cheap and non-blocking enough to call from the
/// streaming ingest path; instrumented code additionally gates any metric
/// *computation* (clock reads, length sums, EWMA updates) behind
/// [`Recorder::enabled`] so a disabled recorder costs ~0.
pub trait Recorder: Send + Sync {
    /// Whether this recorder stores anything at all. Instrumented code
    /// checks this once per unit of work and skips metric derivation when
    /// `false`.
    fn enabled(&self) -> bool;

    /// Adds `delta` to the (optionally labelled) counter `name`.
    fn add(&self, name: &'static str, label: Option<Label>, delta: u64);

    /// Sets the (optionally labelled) gauge `name` to `value`.
    fn set_gauge(&self, name: &'static str, label: Option<Label>, value: f64);

    /// Records one observation of `value` into the (optionally labelled)
    /// histogram `name`.
    fn observe(&self, name: &'static str, label: Option<Label>, value: u64);

    /// Convenience: unlabelled counter add.
    fn count(&self, name: &'static str, delta: u64) {
        self.add(name, None, delta);
    }

    /// Convenience: unlabelled gauge set.
    fn gauge(&self, name: &'static str, value: f64) {
        self.set_gauge(name, None, value);
    }

    /// Convenience: unlabelled histogram observation.
    fn record(&self, name: &'static str, value: u64) {
        self.observe(name, None, value);
    }
}

/// The do-nothing recorder: `enabled()` is `false` and every sink method
/// is empty. This is the default for every instrumented API, making
/// observability free until a caller opts in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn add(&self, _name: &'static str, _label: Option<Label>, _delta: u64) {}

    fn set_gauge(&self, _name: &'static str, _label: Option<Label>, _value: f64) {}

    fn observe(&self, _name: &'static str, _label: Option<Label>, _value: u64) {}
}

/// A cloneable, thread-safe recorder handle.
///
/// The no-op default allocates nothing, so storing a `SharedRecorder`
/// field in a pipeline struct is free until a registry is attached.
#[derive(Clone, Default)]
pub struct SharedRecorder {
    inner: Option<Arc<dyn Recorder>>,
}

impl SharedRecorder {
    /// A handle that records nothing (the default).
    #[must_use]
    pub fn noop() -> Self {
        SharedRecorder { inner: None }
    }

    /// Wraps a concrete recorder. `Arc<Registry>` coerces directly:
    /// `SharedRecorder::new(registry.clone())`.
    #[must_use]
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        SharedRecorder {
            inner: Some(recorder),
        }
    }

    /// Borrows the underlying recorder as a trait object.
    #[must_use]
    pub fn as_dyn(&self) -> &dyn Recorder {
        match &self.inner {
            Some(recorder) => recorder.as_ref(),
            None => &NoopRecorder,
        }
    }
}

impl fmt::Debug for SharedRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedRecorder")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Recorder for SharedRecorder {
    fn enabled(&self) -> bool {
        self.as_dyn().enabled()
    }

    fn add(&self, name: &'static str, label: Option<Label>, delta: u64) {
        self.as_dyn().add(name, label, delta);
    }

    fn set_gauge(&self, name: &'static str, label: Option<Label>, value: f64) {
        self.as_dyn().set_gauge(name, label, value);
    }

    fn observe(&self, name: &'static str, label: Option<Label>, value: u64) {
        self.as_dyn().observe(name, label, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn noop_is_disabled_and_stateless() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.count("x", 1);
        rec.gauge("y", 2.0);
        rec.record("z", 3);
    }

    #[test]
    fn shared_default_is_noop() {
        let rec = SharedRecorder::default();
        assert!(!rec.enabled());
        assert!(format!("{rec:?}").contains("enabled: false"));
    }

    #[test]
    fn shared_delegates_to_registry() {
        let registry = Arc::new(Registry::new());
        let rec = SharedRecorder::new(registry.clone());
        assert!(rec.enabled());
        rec.count("hits_total", 2);
        rec.add("hits_total", Some(Label::port(3)), 5);
        assert_eq!(registry.counter("hits_total"), 7);
    }

    #[test]
    fn labels_order_and_compare() {
        assert_eq!(Label::port(1), Label::new("port", 1));
        assert!(Label::new("port", 1) < Label::new("port", 2));
    }
}

//! The recording metric store and its text renderings.
//!
//! [`Registry`] implements [`Recorder`] by storing counters, gauges and
//! [`LogHistogram`]s in `BTreeMap`s behind one `Mutex` — deterministic
//! iteration order, safe to share across the pipelined monitor's worker
//! thread via `Arc`. Reading is cold-path only: take a
//! [`Registry::snapshot`] (or render directly) after the run.

use crate::histogram::{LogHistogram, BUCKETS};
use crate::recorder::{Label, Recorder};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

type Key = (&'static str, Option<Label>);

#[derive(Debug, Default)]
struct Store {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, LogHistogram>,
}

/// A thread-safe metric store.
///
/// # Examples
///
/// ```
/// use tagbreathe_obs::{Recorder, Registry};
///
/// let registry = Registry::new();
/// registry.count("frames_total", 2);
/// registry.record("frame_ns", 512);
/// assert_eq!(registry.counter("frames_total"), 2);
/// assert!(registry.render_prometheus().contains("frame_ns_count 1"));
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    store: Mutex<Store>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn store(&self) -> MutexGuard<'_, Store> {
        // A poisoned lock only means another thread panicked mid-update of
        // a monotone counter; the data is still the best available.
        self.store.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current value of counter `name`, summed across labels.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.store()
            .counters
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Value of the unlabelled gauge `name`, if set.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.labeled_gauge(name, None)
    }

    /// Value of gauge `name` with exactly `label`, if set.
    #[must_use]
    pub fn labeled_gauge(&self, name: &str, label: Option<Label>) -> Option<f64> {
        self.store()
            .gauges
            .iter()
            .find(|((n, l), _)| *n == name && *l == label)
            .map(|(_, v)| *v)
    }

    /// A copy of the unlabelled histogram `name`, if any observation was
    /// recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<LogHistogram> {
        self.labeled_histogram(name, None)
    }

    /// A copy of the histogram `name` with exactly `label`, if any
    /// observation was recorded — e.g. one stage of the snapshot-lag
    /// histogram.
    #[must_use]
    pub fn labeled_histogram(&self, name: &str, label: Option<Label>) -> Option<LogHistogram> {
        self.store()
            .histograms
            .iter()
            .find(|((n, l), _)| *n == name && *l == label)
            .map(|(_, h)| h.clone())
    }

    /// A point-in-time copy of everything, with labels rendered into the
    /// metric keys (`name{port="1"}`).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let store = self.store();
        MetricsSnapshot {
            counters: store
                .counters
                .iter()
                .map(|(&(n, l), &v)| (render_key(n, l), v))
                .collect(),
            gauges: store
                .gauges
                .iter()
                .map(|(&(n, l), &v)| (render_key(n, l), v))
                .collect(),
            histograms: store
                .histograms
                .iter()
                .map(|(&(n, l), h)| (render_key(n, l), h.clone()))
                .collect(),
        }
    }

    /// Renders the registry in the Prometheus plain-text exposition style.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// Renders the registry as a JSON object (counters, gauges and
    /// histogram summaries).
    #[must_use]
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }
}

impl Recorder for Registry {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, name: &'static str, label: Option<Label>, delta: u64) {
        let mut store = self.store();
        let slot = store.counters.entry((name, label)).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn set_gauge(&self, name: &'static str, label: Option<Label>, value: f64) {
        self.store().gauges.insert((name, label), value);
    }

    fn observe(&self, name: &'static str, label: Option<Label>, value: u64) {
        self.store()
            .histograms
            .entry((name, label))
            .or_default()
            .record(value);
    }
}

/// A point-in-time dump of a [`Registry`], decoupled from the live store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counters keyed by rendered metric key.
    pub counters: BTreeMap<String, u64>,
    /// Gauges keyed by rendered metric key.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms keyed by rendered metric key.
    pub histograms: BTreeMap<String, LogHistogram>,
}

impl MetricsSnapshot {
    /// Distinct metric names (label dimension stripped) that carry signal:
    /// non-zero counters, any set gauge, non-empty histograms.
    #[must_use]
    pub fn nonzero_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .counters
            .iter()
            .filter(|(_, &v)| v > 0)
            .map(|(k, _)| base_name(k))
            .chain(self.gauges.keys().map(|k| base_name(k)))
            .chain(
                self.histograms
                    .iter()
                    .filter(|(_, h)| h.count() > 0)
                    .map(|(k, _)| base_name(k)),
            )
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Renders the snapshot in the Prometheus plain-text exposition style:
    /// `# TYPE` lines, one sample per line, histograms expanded into
    /// cumulative `_bucket{le="…"}` / `_sum` / `_count` series.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (key, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {} counter", base_name(key));
            let _ = writeln!(out, "{key} {value}");
        }
        for (key, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {} gauge", base_name(key));
            let _ = writeln!(out, "{key} {value}");
        }
        for (key, histogram) in &self.histograms {
            let name = base_name(key);
            let labels = label_part(key);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (idx, &n) in histogram.buckets().iter().enumerate() {
                cumulative = cumulative.saturating_add(n);
                let last = idx + 1 == BUCKETS;
                if n == 0 && !last {
                    continue;
                }
                let le = match LogHistogram::bucket_upper_bound(idx) {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(
                    out,
                    "{name}_bucket{{{}le=\"{le}\"}} {cumulative}",
                    with_comma(&labels)
                );
            }
            let _ = writeln!(out, "{name}_sum{labels} {}", histogram.sum());
            let _ = writeln!(out, "{name}_count{labels} {}", histogram.count());
        }
        out
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}` with
    /// per-histogram count / sum / min / max / p50 / p99 summaries.
    #[must_use]
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, (key, value)) in self.counters.iter().enumerate() {
            let comma = if i == 0 { "" } else { "," };
            let _ = write!(out, "{comma}\n    \"{}\": {value}", escape_json(key));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (key, value)) in self.gauges.iter().enumerate() {
            let comma = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{comma}\n    \"{}\": {}",
                escape_json(key),
                json_number(*value)
            );
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (key, h)) in self.histograms.iter().enumerate() {
            let comma = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{comma}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p99\": {}}}",
                escape_json(key),
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
                h.quantile(0.5).unwrap_or(0),
                h.quantile(0.99).unwrap_or(0),
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// The metric name with any `{label="…"}` suffix stripped.
fn base_name(key: &str) -> String {
    key.split('{').next().unwrap_or(key).to_string()
}

/// The `{label="…"}` suffix of a rendered key, or the empty string.
fn label_part(key: &str) -> String {
    match key.find('{') {
        Some(idx) => key[idx..].to_string(),
        None => String::new(),
    }
}

/// Inner labels of a rendered suffix with a trailing comma, for splicing
/// a `le` label into a `_bucket` sample.
fn with_comma(labels: &str) -> String {
    let inner = labels.trim_start_matches('{').trim_end_matches('}');
    if inner.is_empty() {
        String::new()
    } else {
        format!("{inner},")
    }
}

fn render_key(name: &str, label: Option<Label>) -> String {
    match label {
        None => name.to_string(),
        Some(l) => format!("{name}{{{}=\"{}\"}}", l.name, l.value),
    }
}

fn escape_json(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

/// JSON has no NaN/Inf literals; map non-finite gauges to null.
fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample_registry() -> Registry {
        let registry = Registry::new();
        registry.count("a_total", 3);
        registry.add("b_total", Some(Label::port(2)), 4);
        registry.gauge("g", -51.25);
        registry.set_gauge("g_port", Some(Label::port(1)), 12.0);
        registry.record("h_ns", 100);
        registry.record("h_ns", 3000);
        registry
    }

    #[test]
    fn counters_sum_across_labels() {
        let registry = sample_registry();
        assert_eq!(registry.counter("a_total"), 3);
        assert_eq!(registry.counter("b_total"), 4);
        assert_eq!(registry.counter("missing"), 0);
    }

    #[test]
    fn gauges_and_histograms_read_back() {
        let registry = sample_registry();
        assert_eq!(registry.gauge_value("g"), Some(-51.25));
        assert_eq!(
            registry.labeled_gauge("g_port", Some(Label::port(1))),
            Some(12.0)
        );
        assert!(registry
            .labeled_gauge("g_port", Some(Label::port(9)))
            .is_none());
        let count = registry.histogram("h_ns").map(|h| h.count());
        assert_eq!(count, Some(2));
    }

    #[test]
    fn prometheus_rendering_shape() {
        let text = sample_registry().render_prometheus();
        assert!(text.contains("# TYPE a_total counter"), "{text}");
        assert!(text.contains("a_total 3"), "{text}");
        assert!(text.contains("b_total{port=\"2\"} 4"), "{text}");
        assert!(text.contains("# TYPE g gauge"), "{text}");
        assert!(text.contains("g -51.25"), "{text}");
        assert!(text.contains("# TYPE h_ns histogram"), "{text}");
        assert!(text.contains("h_ns_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("h_ns_sum 3100"), "{text}");
        assert!(text.contains("h_ns_count 2"), "{text}");
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let registry = Registry::new();
        registry.record("h", 1);
        registry.record("h", 1);
        registry.record("h", 1000);
        let text = registry.render_prometheus();
        // 1 lands at le="1" (count 2); 1000 at le="1023" (cumulative 3).
        assert!(text.contains("h_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("h_bucket{le=\"1023\"} 3"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3"), "{text}");
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let dump = sample_registry().render_json();
        assert!(json::validate(&dump).is_ok(), "{dump}");
        assert!(dump.contains("\"a_total\": 3"), "{dump}");
        assert!(dump.contains("b_total{port=\\\"2\\\"}"), "{dump}");
        assert!(dump.contains("\"count\": 2"), "{dump}");
    }

    #[test]
    fn non_finite_gauge_serialises_as_null() {
        let registry = Registry::new();
        registry.gauge("bad", f64::NEG_INFINITY);
        let dump = registry.render_json();
        assert!(json::validate(&dump).is_ok(), "{dump}");
        assert!(dump.contains("\"bad\": null"), "{dump}");
    }

    #[test]
    fn snapshot_nonzero_names_strip_labels() {
        let registry = sample_registry();
        registry.count("zero_total", 0);
        let names = registry.snapshot().nonzero_names();
        assert!(names.contains(&"a_total".to_string()));
        assert!(names.contains(&"b_total".to_string()));
        assert!(names.contains(&"g_port".to_string()));
        assert!(names.contains(&"h_ns".to_string()));
        assert!(!names.contains(&"zero_total".to_string()));
    }

    #[test]
    fn empty_registry_renders_empty_but_valid() {
        let registry = Registry::new();
        assert_eq!(registry.render_prometheus(), "");
        assert!(json::validate(&registry.render_json()).is_ok());
    }
}

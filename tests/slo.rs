//! Acceptance tests for the freshness/SLO layer: stage-attributed
//! snapshot-lag histograms after a loopback run, burn-rate machines that
//! reach Burning under an impossible objective (and capture a
//! flight-recorder bundle), and a disabled-recorder path that stays
//! bit-identical and cheap.

use obs::freshness::Stage;
use obs::recorder::{Label, SharedRecorder};
use obs::registry::Registry;
use obs::slo::SloState;
use server::{ServerConfig, ServerHandle, SloConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use tagbreathe_suite::prelude::*;

fn capture(user: u64, seed: u64, secs: f64) -> Vec<TagReport> {
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(user, 2.0))
        .build();
    let reader = Reader::new(
        ReaderConfig::paper_default().with_seed(seed),
        vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
    )
    .unwrap();
    reader.run(&ScenarioWorld::new(scenario), secs)
}

fn test_config() -> ServerConfig {
    ServerConfig {
        window_s: 12.5,
        update_every_s: 2.5,
        shards: 2,
        ..ServerConfig::default()
    }
}

fn http_get(handle: &ServerHandle, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(handle.http_addr()).expect("http connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("http write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("http read");
    let (head, body) = response.split_once("\r\n\r\n").expect("http headers");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// Streams `reports` as reader 1 and blocks until the engine has an
/// analysable snapshot for `user`.
fn feed_and_wait(handle: &ServerHandle, reports: &[TagReport], user: u64) {
    let ingest = handle.ingest_addr();
    let reports = reports.to_vec();
    std::thread::spawn(move || {
        let stream = TcpStream::connect(ingest).expect("connect");
        let mut client = epcgen2::client::ReaderClient::connect(stream, 1, 0).expect("hello");
        for chunk in reports.chunks(64) {
            let clock = chunk.last().map_or(0.0, |r| r.time_s);
            client.send_batch(chunk, clock).expect("batch");
        }
        client.goodbye().expect("goodbye");
    })
    .join()
    .expect("feeder");
    for _ in 0..200 {
        if handle.latest_for(user).is_some() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    panic!("user {user} was never analysed");
}

fn stage_count(registry: &Registry, stage: Stage) -> u64 {
    registry
        .labeled_histogram(
            tagbreathe::metrics::SNAPSHOT_LAG_NS,
            Some(Label::stage(stage.code())),
        )
        .map_or(0, |h| h.count())
}

#[test]
fn snapshot_lag_histograms_are_stage_attributed() {
    let handle = server::start(test_config()).expect("server must start");
    let registry = handle.registry();
    feed_and_wait(&handle, &capture(1, 51, 30.0), 1);

    // Exercise the HTTP surface so the http_serve stage has samples, and
    // pin the new endpoints while we are here.
    let (status, body) = http_get(&handle, "/slo");
    assert!(status.contains("200"), "slo: {status}");
    obs::json::validate(&body).expect("/slo must be valid JSON");
    assert!(body.contains("snapshot_lag_p99"), "{body}");
    assert!(body.contains("\"worst\""), "{body}");

    let (status, body) = http_get(&handle, "/status");
    assert!(status.contains("200"), "status: {status}");
    assert!(body.contains("slo"), "status carries the SLO table: {body}");
    assert!(
        body.contains("stage"),
        "status carries the lag table: {body}"
    );
    assert!(body.contains("shard"), "status carries shards: {body}");

    let (status, body) = http_get(&handle, "/status.html");
    assert!(status.contains("200"), "status.html: {status}");
    assert!(body.contains("<pre"), "html wraps the dashboard: {body}");

    let snapshots = handle.shutdown();
    assert!(!snapshots.is_empty(), "server must emit snapshots");

    for stage in [
        Stage::Total,
        Stage::LaneMerge,
        Stage::RingHandoff,
        Stage::ShardIngest,
        Stage::EpochMerge,
        Stage::HttpServe,
    ] {
        assert!(
            stage_count(&registry, stage) > 0,
            "stage {} must have lag samples",
            stage.as_str()
        );
    }
}

#[test]
fn impossible_objective_burns_and_captures_flight_bundle() {
    // A 0 ns lag objective is breached by every published snapshot, so
    // the burn-rate machine's freshly-filled window is all-bad and the
    // SLO goes straight to Burning — which must capture a bundle.
    let config = ServerConfig {
        slo: SloConfig {
            snapshot_lag_p99_ns: 0,
            ..SloConfig::default()
        },
        ..test_config()
    };
    let handle = server::start(config).expect("server must start");
    let registry = handle.registry();
    feed_and_wait(&handle, &capture(1, 61, 30.0), 1);

    let rows = handle.slo_rows();
    let lag_row = rows
        .iter()
        .find(|r| r.name == "snapshot_lag_p99")
        .expect("lag SLO declared");
    assert_eq!(lag_row.state, SloState::Burning, "{lag_row:?}");
    assert!(lag_row.value.is_some(), "lag must be measured");

    let (status, body) = http_get(&handle, "/slo");
    assert!(status.contains("200"), "slo: {status}");
    assert!(body.contains("\"worst\": \"burning\""), "{body}");

    let (status, body) = http_get(&handle, "/bundle");
    assert!(
        status.contains("200"),
        "breach must produce a bundle: {status}"
    );
    assert!(
        body.contains("slo_breach"),
        "bundle names the anomaly: {body}"
    );

    let transitions = registry.counter(server::metrics::SERVER_SLO_TRANSITIONS_TOTAL);
    assert!(transitions >= 1, "transition counter must tick");
    let state = registry.labeled_gauge(server::metrics::SERVER_SLO_STATE, Some(Label::code(0)));
    assert_eq!(state, Some(2.0), "state gauge carries Burning");

    let _ = handle.shutdown();
}

#[test]
fn clock_skew_gauge_tracks_a_deliberately_skewed_reader() {
    let handle = server::start(test_config()).expect("server must start");
    let registry = handle.registry();
    let reports = capture(1, 71, 10.0);
    let ingest = handle.ingest_addr();
    std::thread::spawn(move || {
        let stream = TcpStream::connect(ingest).expect("connect");
        // Hello at reader clock 0, then frames stamped two minutes ahead
        // of wall time: the min-skew estimator must go strongly negative.
        let mut client = epcgen2::client::ReaderClient::connect(stream, 1, 0).expect("hello");
        for chunk in reports.chunks(64) {
            let clock = chunk.last().map_or(0.0, |r| r.time_s) + 120.0;
            client.send_batch(chunk, clock).expect("batch");
        }
        client.goodbye().expect("goodbye");
    })
    .join()
    .expect("feeder");

    let skew = registry.labeled_gauge(
        server::metrics::SERVER_READER_CLOCK_SKEW_S,
        Some(Label::reader(1)),
    );
    assert!(
        skew.is_some_and(|s| s < -60.0),
        "skew gauge must reflect the injected offset, got {skew:?}"
    );
    let _ = handle.shutdown();
}

#[test]
fn disabled_recorder_is_bit_identical_and_cheap() {
    let reports = capture(1, 81, 30.0);
    let cfg = test_config();

    // Observed run: recording enabled end to end.
    let registry = Arc::new(Registry::new());
    let mut observed = tagbreathe::FleetEngine::observed(
        PipelineConfig::paper_default(),
        epcgen2::OpenAdmission,
        cfg.window_s,
        cfg.update_every_s,
        cfg.shards,
        SharedRecorder::new(registry.clone()),
    )
    .expect("observed fleet");
    let mut observed_snaps = Vec::new();
    for chunk in reports.chunks(64) {
        observed_snaps.extend(observed.push(chunk.to_vec()));
    }
    observed_snaps.extend(observed.finish());

    // Disabled run: the no-op recorder path, timed per pushed report.
    let mut plain = tagbreathe::FleetEngine::new(
        PipelineConfig::paper_default(),
        epcgen2::OpenAdmission,
        cfg.window_s,
        cfg.update_every_s,
        cfg.shards,
    )
    .expect("plain fleet");
    let mut plain_snaps = Vec::new();
    let started = std::time::Instant::now();
    for chunk in reports.chunks(64) {
        plain_snaps.extend(plain.push(chunk.to_vec()));
    }
    let push_elapsed = started.elapsed();
    plain_snaps.extend(plain.finish());

    assert_eq!(observed_snaps.len(), plain_snaps.len(), "snapshot count");
    for (o, p) in observed_snaps.iter().zip(&plain_snaps) {
        assert_eq!(o.time_s.to_bits(), p.time_s.to_bits(), "snapshot time");
        assert_eq!(o.rates_bpm.len(), p.rates_bpm.len(), "user count");
        for ((ou, ov), (pu, pv)) in o.rates_bpm.iter().zip(&p.rates_bpm) {
            assert_eq!(ou, pu, "user set");
            assert_eq!(ov.to_bits(), pv.to_bits(), "rate bits for user {ou}");
        }
    }

    // The per-report push cost on the disabled path sits in a ~50–110 ns
    // band on dev hardware; assert a generous multiple so the test pins
    // gross regressions (per-report allocation, lag bookkeeping leaking
    // past the recording gate) without flaking on loaded CI runners.
    let per_report_ns = push_elapsed.as_nanos() as f64 / reports.len().max(1) as f64;
    assert!(
        per_report_ns < 5_000.0,
        "disabled-path push cost {per_report_ns:.0} ns/report exceeds budget"
    );
}

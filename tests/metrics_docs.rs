//! Drift guard between the metric registries and `docs/METRICS.md`.
//!
//! Every metric name a workspace registry can emit is declared in one of
//! the crates' `metrics::ALL` arrays; the reference documentation must
//! list each of them, and must not document names the code no longer
//! emits. Renaming or adding a metric therefore fails here until the
//! docs row moves with it.

use std::collections::BTreeSet;

const DOCS: &str = include_str!("../docs/METRICS.md");

/// Every metric name the workspace can emit, from the per-crate
/// declaration arrays.
fn code_names() -> BTreeSet<&'static str> {
    tagbreathe::metrics::ALL
        .iter()
        .chain(server::metrics::ALL)
        .chain(epcgen2::metrics::ALL)
        .copied()
        .collect()
}

/// Backticked tokens in the docs that look like metric names: snake_case
/// with one of the workspace prefixes. Prose mentions like
/// `tagbreathe::metrics` or globs like `tagbreathe_fleet_*` carry
/// non-name characters and are skipped.
fn doc_names() -> BTreeSet<&'static str> {
    let mut names = BTreeSet::new();
    for piece in DOCS.split('`').skip(1).step_by(2) {
        let is_name = piece
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        if is_name && (piece.starts_with("tagbreathe_") || piece.starts_with("epcgen2_")) {
            names.insert(piece);
        }
    }
    names
}

#[test]
fn every_emitted_metric_is_documented() {
    let code = code_names();
    let docs = doc_names();
    let missing: Vec<_> = code.difference(&docs).collect();
    assert!(
        missing.is_empty(),
        "metrics emitted but missing from docs/METRICS.md: {missing:?}"
    );
}

#[test]
fn every_documented_metric_is_emitted() {
    let code = code_names();
    let docs = doc_names();
    let stale: Vec<_> = docs.difference(&code).collect();
    assert!(
        stale.is_empty(),
        "docs/METRICS.md documents names no registry emits: {stale:?}"
    );
}

#[test]
fn declaration_arrays_have_no_duplicates() {
    let mut seen = BTreeSet::new();
    for name in tagbreathe::metrics::ALL
        .iter()
        .chain(server::metrics::ALL)
        .chain(epcgen2::metrics::ALL)
    {
        assert!(seen.insert(*name), "metric declared twice: {name}");
    }
}

//! Flight-recorder acceptance suite.
//!
//! The contract of the diagnostics loop, end to end over a simulated
//! capture: an injected anomaly (an apnea waveform whose windowed rate
//! jumps as breathing stops and resumes) must fire a trigger, the trigger
//! must capture a diagnostic bundle, and **replaying the bundle's
//! reconstructed report stream through a fresh streaming monitor must
//! reproduce the anomalous estimate** — within 0.1 bpm — because the
//! bundle's per-read provenance events carry the complete phase stream.
//! Both export formats (diagnostic-bundle JSON, Chrome trace-event JSON)
//! must satisfy the in-tree validator.

use std::sync::Arc;
use tagbreathe_suite::obs::trace::{chrome_trace, FlightRecorder};
use tagbreathe_suite::obs::{json, Registry, SharedTracer};
use tagbreathe_suite::prelude::*;
use tagbreathe_suite::tagbreathe::flight::{AnomalyKind, FlightDiagnostics, TriggerConfig};

/// A 90 s single-user session breathing 15 bpm in 30 s bursts separated by
/// 15 s apneas — the windowed rate collapses and recovers, guaranteeing a
/// rate jump between consecutive snapshots.
fn apnea_capture() -> Vec<TagReport> {
    let subject = Subject::new(
        1,
        Vec3::new(2.5, 0.0, 0.0),
        Vec3::new(-1.0, 0.0, 0.0),
        Posture::Lying,
        Waveform::WithApnea {
            rate_bpm: 15.0,
            breathe_s: 30.0,
            apnea_s: 15.0,
        },
        TagSite::ALL.to_vec(),
    );
    let scenario = Scenario::builder().subject(subject).build();
    Reader::paper_default().run(&ScenarioWorld::new(scenario), 90.0)
}

fn monitor() -> StreamingMonitor<EmbeddedIdentity> {
    StreamingMonitor::new(
        PipelineConfig::paper_default(),
        EmbeddedIdentity::new([1]),
        25.0,
        5.0,
    )
    .expect("valid config")
}

#[test]
fn injected_rate_jump_dumps_a_replayable_bundle() {
    let reports = apnea_capture();
    // The bundle window spans the whole session so the replay stream is
    // complete from t=0.
    let mut config = TriggerConfig::default_config();
    config.rate_jump_bpm = 5.0;
    config.bundle_window_s = 120.0;
    let mut flight = FlightDiagnostics::new(1 << 17, config).expect("flight setup");
    let registry = Registry::new();

    let mut sm = monitor().with_tracer(flight.tracer());
    let mut snaps = Vec::new();
    for snap in sm.push(reports.iter().copied()) {
        flight.scan(&snap, &registry);
        snaps.push(snap);
    }

    let bundles = flight.take_bundles();
    let bundle = bundles
        .iter()
        .find(|b| b.anomaly.kind == AnomalyKind::RateJump)
        .unwrap_or_else(|| panic!("no rate-jump bundle; fired: {bundles:?}"));
    assert_eq!(bundle.anomaly.user, 1);
    assert!(
        bundle.dropped_events == 0,
        "ring overflowed; bundle incomplete"
    );
    assert_eq!(
        registry.counter(tagbreathe_suite::tagbreathe::metrics::TRACE_DUMPS),
        bundles.len() as u64
    );

    // Replay the reconstructed report stream through a *fresh* monitor.
    let replay_reports = bundle.reports();
    assert!(
        replay_reports.len() > 100,
        "only {} reads reconstructed",
        replay_reports.len()
    );
    let mut replay = monitor();
    let replay_snaps = replay.push(replay_reports);

    // The snapshot that fired the trigger must reappear with the same
    // estimate, within 0.1 bpm.
    let t = bundle.anomaly.time_s;
    let replayed_bpm = replay_snaps
        .iter()
        .find(|s| (s.time_s - t).abs() < 1e-9)
        .and_then(|s| s.rates_bpm.get(&1))
        .copied()
        .unwrap_or_else(|| panic!("no replayed snapshot at t={t}: {replay_snaps:?}"));
    assert!(
        (replayed_bpm - bundle.anomaly.value).abs() < 0.1,
        "replay gave {replayed_bpm} bpm, anomaly recorded {} bpm",
        bundle.anomaly.value
    );

    // Both export formats satisfy the in-tree JSON validator.
    json::validate(&bundle.to_json()).expect("bundle JSON is well-formed");
    json::validate(&bundle.chrome_trace()).expect("bundle Chrome trace is well-formed");
    json::validate(&chrome_trace(&flight.ring().snapshot())).expect("full trace is well-formed");
}

#[test]
fn overflowed_ring_still_exports_a_valid_trace_and_counts_drops() {
    let reports = apnea_capture();
    let ring = Arc::new(FlightRecorder::with_capacity(64).expect("capacity"));
    let mut sm = monitor().with_tracer(SharedTracer::new(ring.clone()));
    let _ = sm.push(reports.iter().copied());

    assert!(ring.dropped() > 0, "64-slot ring should overflow");
    let events = ring.snapshot();
    assert_eq!(events.len(), 64, "ring keeps exactly its capacity");
    // Oldest-first ordering survives the (many) wraps.
    for pair in events.windows(2) {
        assert!(pair[0].time_s <= pair[1].time_s + 1e-9);
    }
    json::validate(&chrome_trace(&events)).expect("overflowed trace is well-formed");
}

#[test]
fn quality_and_apnea_scans_capture_bundles_end_to_end() {
    use tagbreathe_suite::tagbreathe::quality::{assess_traced, QualityThresholds};
    use tagbreathe_suite::tagbreathe::{detect_apnea_traced, ApneaConfig};

    let reports = apnea_capture();
    let mut flight =
        FlightDiagnostics::new(1 << 16, TriggerConfig::default_config()).expect("flight setup");
    let registry = Registry::new();
    let tracer = flight.tracer();

    let analysis = BreathMonitor::paper_default().analyze(&reports, &EmbeddedIdentity::new([1]));
    let user = analysis.users[&1].as_ref().expect("analysable");
    let quality = assess_traced(
        1,
        user,
        &QualityThresholds::default_thresholds(),
        &registry,
        tracer.as_dyn(),
    );
    flight.scan_quality(1, 90.0, &quality, &registry);
    let episodes = detect_apnea_traced(
        &user.breath_signal,
        &ApneaConfig::default_config(),
        1,
        tracer.as_dyn(),
    )
    .expect("valid apnea config");
    assert!(!episodes.is_empty(), "apnea waveform yields episodes");
    let captured = flight.scan_apnea(1, &episodes, &registry);
    assert_eq!(captured, episodes.len().min(8));
    assert!(flight
        .bundles()
        .iter()
        .any(|b| b.anomaly.kind == AnomalyKind::Apnea));
    // The traced twins left their instants in the ring.
    let events = flight.ring().snapshot();
    for name in ["quality_grade", "apnea_episode"] {
        assert!(events.iter().any(|e| e.name == name), "no {name:?} events");
    }
}

//! End-to-end tests of the pattern-analysis extensions through the full
//! RF / MAC / pipeline stack.

use tagbreathe_suite::prelude::*;
use tagbreathe_suite::tagbreathe::patterns::{analyze_pattern, PatternClass};
use tagbreathe_suite::tagbreathe::quality::{assess, Confidence, QualityThresholds};
use tagbreathe_suite::tagbreathe::{detect_apnea, ApneaConfig};

fn analyze_waveform(waveform: Waveform, secs: f64, seed: u64) -> Option<UserAnalysisBox> {
    let subject = Subject::new(
        1,
        Vec3::new(2.5, 0.0, 0.0),
        Vec3::new(-1.0, 0.0, 0.0),
        Posture::Sitting,
        waveform,
        TagSite::ALL.to_vec(),
    );
    let scenario = Scenario::builder().subject(subject).build();
    let reports = Reader::new(
        ReaderConfig::paper_default().with_seed(seed),
        vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
    )
    .unwrap()
    .run(&ScenarioWorld::new(scenario), secs);
    BreathMonitor::paper_default()
        .analyze(&reports, &EmbeddedIdentity::new([1]))
        .users
        .remove(&1)
        .and_then(Result::ok)
}

type UserAnalysisBox = tagbreathe_suite::tagbreathe::UserAnalysis;

#[test]
fn steady_breathing_classifies_regular_end_to_end() {
    let user = analyze_waveform(Waveform::Sinusoid { rate_bpm: 12.0 }, 120.0, 1).unwrap();
    let p = analyze_pattern(&user.breath_signal, &user.rate);
    assert_eq!(p.class, PatternClass::Regular, "rate CV {}", p.rate_cv);
    assert!(p.breaths.len() >= 15, "{} breaths", p.breaths.len());
}

#[test]
fn cheyne_stokes_is_flagged_irregular_end_to_end() {
    let user = analyze_waveform(
        Waveform::CheyneStokes {
            rate_bpm: 18.0,
            cycle_s: 60.0,
            apnea_fraction: 0.3,
        },
        180.0,
        2,
    )
    .unwrap();
    let p = analyze_pattern(&user.breath_signal, &user.rate);
    assert_ne!(
        p.class,
        PatternClass::Regular,
        "Cheyne-Stokes misread as regular (rate CV {}, depth CV {})",
        p.rate_cv,
        p.depth_cv
    );
}

#[test]
fn apnea_episodes_detected_end_to_end() {
    let user = analyze_waveform(
        Waveform::WithApnea {
            rate_bpm: 15.0,
            breathe_s: 30.0,
            apnea_s: 15.0,
        },
        135.0,
        3,
    )
    .unwrap();
    let episodes =
        detect_apnea(&user.breath_signal, &ApneaConfig::default_config()).expect("valid config");
    // Three apnea windows fall inside the capture (30-45, 75-90, 120-135).
    assert!(
        (2..=4).contains(&episodes.len()),
        "found {} episodes: {episodes:?}",
        episodes.len()
    );
    for e in &episodes {
        assert!(e.duration_s() > 5.0 && e.duration_s() < 30.0);
    }
}

#[test]
fn breath_depth_scales_with_physical_amplitude() {
    let run = |amp: f64, seed: u64| {
        let subject = Subject::paper_default(1, 2.5).with_amplitude_m(amp);
        let scenario = Scenario::builder().subject(subject).build();
        let reports = Reader::new(
            ReaderConfig::paper_default().with_seed(seed),
            vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
        )
        .unwrap()
        .run(&ScenarioWorld::new(scenario), 90.0);
        let user = BreathMonitor::paper_default()
            .analyze(&reports, &EmbeddedIdentity::new([1]))
            .users
            .remove(&1)
            .and_then(Result::ok)
            .unwrap();
        analyze_pattern(&user.breath_signal, &user.rate).mean_depth
    };
    let shallow = run(0.003, 10);
    let deep = run(0.009, 10);
    assert!(
        deep > 1.8 * shallow,
        "deep {deep:.2e} vs shallow {shallow:.2e}"
    );
}

#[test]
fn quality_grade_tracks_distance() {
    let grade = |d: f64| {
        let scenario = Scenario::builder()
            .subject(Subject::paper_default(1, d))
            .build();
        let reports = Reader::paper_default().run(&ScenarioWorld::new(scenario), 60.0);
        BreathMonitor::paper_default()
            .analyze(&reports, &EmbeddedIdentity::new([1]))
            .users
            .remove(&1)
            .and_then(Result::ok)
            .map(|a| assess(&a, &QualityThresholds::default_thresholds()).confidence)
    };
    let near = grade(1.5).expect("near analysable");
    assert_eq!(near, Confidence::High);
    if let Some(far) = grade(6.0) {
        assert!(far <= near);
    }
}

#[test]
fn demographic_presets_are_monitorable_end_to_end() {
    use tagbreathe_suite::breathing::Demographic;
    for (demo, seed) in [
        (Demographic::Adult, 31u64),
        (Demographic::Elderly, 32),
        (Demographic::Athlete, 33),
    ] {
        let subject = demo.subject(1, 2.5);
        let truth = subject.nominal_rate_bpm();
        let scenario = Scenario::builder().subject(subject).build();
        let reports = Reader::new(
            ReaderConfig::paper_default().with_seed(seed),
            vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
        )
        .unwrap()
        .run(&ScenarioWorld::new(scenario), 120.0);
        let bpm = BreathMonitor::paper_default()
            .analyze(&reports, &EmbeddedIdentity::new([1]))
            .users[&1]
            .as_ref()
            .unwrap()
            .mean_rate_bpm()
            .unwrap();
        assert!(
            (bpm - truth).abs() < 2.0,
            "{demo:?}: true {truth}, got {bpm}"
        );
        assert!(
            demo.rate_is_normal(bpm),
            "{demo:?}: {bpm} outside normal range"
        );
    }
}

#[test]
fn infant_monitoring_needs_a_wider_band() {
    use tagbreathe_suite::breathing::Demographic;
    // A newborn breathes ~40 bpm — at the very edge of the paper's adult
    // 0.67 Hz cutoff. Raising the cutoff (a config knob) makes the same
    // pipeline work.
    let subject = Demographic::Infant.subject(1, 1.5);
    let truth = subject.nominal_rate_bpm();
    let scenario = Scenario::builder().subject(subject).build();
    let reports = Reader::new(
        ReaderConfig::paper_default().with_seed(34),
        vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
    )
    .unwrap()
    .run(&ScenarioWorld::new(scenario), 120.0);
    let mut cfg = PipelineConfig::paper_default();
    cfg.cutoff_hz = 1.5; // 90 bpm ceiling for neonates
                         // At 40 bpm the breath period (1.5 s) is shorter than the channel
                         // revisit interval (2 s), so the increment path aliases; the
                         // channel-track-merge preprocessing keeps full amplitude at every
                         // read instant instead.
    cfg.preprocess = tagbreathe_suite::tagbreathe::PreprocessKind::ChannelTrackMerge;
    let bpm = BreathMonitor::new(cfg)
        .unwrap()
        .analyze(&reports, &EmbeddedIdentity::new([1]))
        .users[&1]
        .as_ref()
        .unwrap()
        .mean_rate_bpm()
        .unwrap();
    assert!((bpm - truth).abs() < 3.0, "infant: true {truth}, got {bpm}");
}

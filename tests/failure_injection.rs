//! Failure-injection tests: the pipeline must degrade gracefully — never
//! panic, and either keep estimating correctly or abstain — under corrupted
//! report streams and non-respiratory motion.

use prng::Rng;
use prng::Xoshiro256;
use tagbreathe_suite::breathing::BodyMotion;
use tagbreathe_suite::prelude::*;

fn capture(secs: f64, seed: u64) -> Vec<TagReport> {
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(1, 2.0))
        .build();
    let reader = Reader::new(
        ReaderConfig::paper_default().with_seed(seed),
        vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
    )
    .unwrap();
    reader.run(&ScenarioWorld::new(scenario), secs)
}

fn estimate(reports: &[TagReport]) -> Option<f64> {
    BreathMonitor::paper_default()
        .analyze(reports, &EmbeddedIdentity::new([1]))
        .users
        .get(&1)
        .and_then(|r| r.as_ref().ok())
        .and_then(|a| a.mean_rate_bpm())
}

#[test]
fn survives_random_report_loss() {
    let reports = capture(90.0, 1);
    let mut rng = Xoshiro256::seed_from_u64(42);
    for keep_fraction in [0.8, 0.5, 0.3] {
        let thinned: Vec<TagReport> = reports
            .iter()
            .filter(|_| rng.gen_f64() < keep_fraction)
            .copied()
            .collect();
        let bpm = estimate(&thinned);
        if let Some(bpm) = bpm {
            assert!(
                (bpm - 10.0).abs() < 2.5,
                "keep {keep_fraction}: estimated {bpm}"
            );
        }
        // None (abstention) is acceptable at heavy loss; garbage is not.
    }
}

#[test]
fn survives_duplicated_reports() {
    let reports = capture(60.0, 2);
    let mut doubled = Vec::with_capacity(reports.len() * 2);
    for r in &reports {
        doubled.push(*r);
        doubled.push(*r); // exact duplicate (same timestamp)
    }
    let bpm = estimate(&doubled).expect("duplicates must not break analysis");
    assert!((bpm - 10.0).abs() < 1.5, "estimated {bpm}");
}

#[test]
fn survives_out_of_order_delivery() {
    let reports = capture(60.0, 3);
    let mut shuffled = reports.clone();
    Xoshiro256::seed_from_u64(7).shuffle(&mut shuffled);
    let a = estimate(&reports).expect("baseline");
    let b = estimate(&shuffled).expect("shuffled");
    assert!((a - b).abs() < 1e-9, "order dependence: {a} vs {b}");
}

#[test]
fn survives_corrupted_phase_values() {
    // 5% of reports get a uniformly random phase (decoder glitches).
    let mut reports = capture(90.0, 4);
    let mut rng = Xoshiro256::seed_from_u64(11);
    for r in reports.iter_mut() {
        if rng.gen_f64() < 0.05 {
            r.phase_rad = rng.gen_f64() * 2.0 * std::f64::consts::PI;
        }
    }
    let bpm = estimate(&reports).expect("corruption-tolerant");
    assert!((bpm - 10.0).abs() < 2.5, "estimated {bpm}");
}

#[test]
fn survives_alien_epcs_in_stream() {
    // Tags from a neighbouring deployment appear mid-stream.
    let mut reports = capture(60.0, 5);
    let alien: Vec<TagReport> = (0..500)
        .map(|i| TagReport {
            time_s: i as f64 * 0.1,
            epc: Epc96::monitor(0xBAD0_BEEF, i),
            antenna_port: 1,
            channel_index: (i % 10) as u16,
            phase_rad: 1.0,
            rssi_dbm: -60.0,
            doppler_hz: 0.0,
        })
        .collect();
    reports.extend(alien);
    let analysis = BreathMonitor::paper_default().analyze(&reports, &EmbeddedIdentity::new([1]));
    assert_eq!(analysis.unknown_reports, 500);
    let bpm = analysis.users[&1]
        .as_ref()
        .unwrap()
        .mean_rate_bpm()
        .unwrap();
    assert!((bpm - 10.0).abs() < 1.5, "estimated {bpm}");
}

#[test]
fn sway_below_breathing_band_is_tolerated() {
    let subject = Subject::paper_default(1, 2.0).with_motion(BodyMotion::Sway {
        amplitude_m: 0.01,
        period_s: 25.0, // 0.04 Hz, below the band
    });
    let scenario = Scenario::builder().subject(subject).build();
    let reports = Reader::paper_default().run(&ScenarioWorld::new(scenario), 90.0);
    let bpm = estimate(&reports).expect("sway-tolerant");
    assert!((bpm - 10.0).abs() < 2.0, "estimated {bpm} under sway");
}

#[test]
fn fidgeting_degrades_quality_grade() {
    use tagbreathe_suite::tagbreathe::quality::{assess, QualityThresholds};

    let run = |motion: BodyMotion, seed: u64| {
        let subject = Subject::paper_default(1, 2.0).with_motion(motion);
        let scenario = Scenario::builder().subject(subject).build();
        let reader = Reader::new(
            ReaderConfig::paper_default().with_seed(seed),
            vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
        )
        .unwrap();
        let reports = reader.run(&ScenarioWorld::new(scenario), 60.0);
        BreathMonitor::paper_default()
            .analyze(&reports, &EmbeddedIdentity::new([1]))
            .users
            .remove(&1)
            .and_then(Result::ok)
            .map(|a| assess(&a, &QualityThresholds::default_thresholds()))
    };
    let still = run(BodyMotion::Still, 21).expect("still analysable");
    let fidgety = run(
        BodyMotion::Fidget {
            amplitude_m: 0.04,
            rate_per_min: 8.0,
            seed: 3,
        },
        21,
    );
    // Fidgeting must not crash; when analysable, its quality must not
    // exceed the still subject's.
    if let Some(q) = fidgety {
        assert!(
            q.confidence <= still.confidence,
            "fidgeting graded {q:?} above still {still:?}"
        );
    }
}

#[test]
fn walking_subject_is_flagged_as_gross_motion() {
    use tagbreathe_suite::tagbreathe::AnalysisFailure;
    // Slow walk toward the antenna: the tag stays in the beam for the
    // whole capture but the trajectory spans metres.
    let subject = Subject::paper_default(1, 5.0).with_motion(BodyMotion::Walk { speed_mps: 0.03 });
    let scenario = Scenario::builder().subject(subject).build();
    let reports = Reader::paper_default().run(&ScenarioWorld::new(scenario), 60.0);
    assert!(!reports.is_empty(), "walker left the beam entirely");
    let analysis = BreathMonitor::paper_default().analyze(&reports, &EmbeddedIdentity::new([1]));
    match &analysis.users[&1] {
        Err(AnalysisFailure::GrossMotion { range_m }) => {
            assert!(*range_m > 1.0, "range {range_m}");
        }
        other => panic!("walking subject not flagged: {other:?}"),
    }
}

#[test]
fn stationary_subject_is_not_flagged_as_gross_motion() {
    use tagbreathe_suite::tagbreathe::AnalysisFailure;
    let reports = capture(60.0, 7);
    let analysis = BreathMonitor::paper_default().analyze(&reports, &EmbeddedIdentity::new([1]));
    assert!(
        !matches!(analysis.users[&1], Err(AnalysisFailure::GrossMotion { .. })),
        "false gross-motion alarm"
    );
}

#[test]
fn empty_and_single_report_streams() {
    assert!(estimate(&[]).is_none());
    let one = capture(1.0, 6).into_iter().take(1).collect::<Vec<_>>();
    assert!(estimate(&one).is_none());
}

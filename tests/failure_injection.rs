//! Failure-injection tests: the pipeline must degrade gracefully — never
//! panic, and either keep estimating correctly or abstain — under corrupted
//! report streams and non-respiratory motion.

use prng::Rng;
use prng::Xoshiro256;
use tagbreathe_suite::breathing::BodyMotion;
use tagbreathe_suite::prelude::*;

fn capture(secs: f64, seed: u64) -> Vec<TagReport> {
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(1, 2.0))
        .build();
    let reader = Reader::new(
        ReaderConfig::paper_default().with_seed(seed),
        vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
    )
    .unwrap();
    reader.run(&ScenarioWorld::new(scenario), secs)
}

fn estimate(reports: &[TagReport]) -> Option<f64> {
    BreathMonitor::paper_default()
        .analyze(reports, &EmbeddedIdentity::new([1]))
        .users
        .get(&1)
        .and_then(|r| r.as_ref().ok())
        .and_then(|a| a.mean_rate_bpm())
}

#[test]
fn survives_random_report_loss() {
    let reports = capture(90.0, 1);
    let mut rng = Xoshiro256::seed_from_u64(42);
    for keep_fraction in [0.8, 0.5, 0.3] {
        let thinned: Vec<TagReport> = reports
            .iter()
            .filter(|_| rng.gen_f64() < keep_fraction)
            .copied()
            .collect();
        let bpm = estimate(&thinned);
        if let Some(bpm) = bpm {
            assert!(
                (bpm - 10.0).abs() < 2.5,
                "keep {keep_fraction}: estimated {bpm}"
            );
        }
        // None (abstention) is acceptable at heavy loss; garbage is not.
    }
}

#[test]
fn survives_duplicated_reports() {
    let reports = capture(60.0, 2);
    let mut doubled = Vec::with_capacity(reports.len() * 2);
    for r in &reports {
        doubled.push(*r);
        doubled.push(*r); // exact duplicate (same timestamp)
    }
    let bpm = estimate(&doubled).expect("duplicates must not break analysis");
    assert!((bpm - 10.0).abs() < 1.5, "estimated {bpm}");
}

#[test]
fn survives_out_of_order_delivery() {
    let reports = capture(60.0, 3);
    let mut shuffled = reports.clone();
    Xoshiro256::seed_from_u64(7).shuffle(&mut shuffled);
    let a = estimate(&reports).expect("baseline");
    let b = estimate(&shuffled).expect("shuffled");
    assert!((a - b).abs() < 1e-9, "order dependence: {a} vs {b}");
}

#[test]
fn survives_corrupted_phase_values() {
    // 5% of reports get a uniformly random phase (decoder glitches).
    let mut reports = capture(90.0, 4);
    let mut rng = Xoshiro256::seed_from_u64(11);
    for r in reports.iter_mut() {
        if rng.gen_f64() < 0.05 {
            r.phase_rad = rng.gen_f64() * 2.0 * std::f64::consts::PI;
        }
    }
    let bpm = estimate(&reports).expect("corruption-tolerant");
    assert!((bpm - 10.0).abs() < 2.5, "estimated {bpm}");
}

#[test]
fn survives_alien_epcs_in_stream() {
    // Tags from a neighbouring deployment appear mid-stream.
    let mut reports = capture(60.0, 5);
    let alien: Vec<TagReport> = (0..500)
        .map(|i| TagReport {
            time_s: i as f64 * 0.1,
            epc: Epc96::monitor(0xBAD0_BEEF, i),
            antenna_port: 1,
            channel_index: (i % 10) as u16,
            phase_rad: 1.0,
            rssi_dbm: -60.0,
            doppler_hz: 0.0,
        })
        .collect();
    reports.extend(alien);
    let analysis = BreathMonitor::paper_default().analyze(&reports, &EmbeddedIdentity::new([1]));
    assert_eq!(analysis.unknown_reports, 500);
    let bpm = analysis.users[&1]
        .as_ref()
        .unwrap()
        .mean_rate_bpm()
        .unwrap();
    assert!((bpm - 10.0).abs() < 1.5, "estimated {bpm}");
}

#[test]
fn sway_below_breathing_band_is_tolerated() {
    let subject = Subject::paper_default(1, 2.0).with_motion(BodyMotion::Sway {
        amplitude_m: 0.01,
        period_s: 25.0, // 0.04 Hz, below the band
    });
    let scenario = Scenario::builder().subject(subject).build();
    let reports = Reader::paper_default().run(&ScenarioWorld::new(scenario), 90.0);
    let bpm = estimate(&reports).expect("sway-tolerant");
    assert!((bpm - 10.0).abs() < 2.0, "estimated {bpm} under sway");
}

#[test]
fn fidgeting_degrades_quality_grade() {
    use tagbreathe_suite::tagbreathe::quality::{assess, QualityThresholds};

    let run = |motion: BodyMotion, seed: u64| {
        let subject = Subject::paper_default(1, 2.0).with_motion(motion);
        let scenario = Scenario::builder().subject(subject).build();
        let reader = Reader::new(
            ReaderConfig::paper_default().with_seed(seed),
            vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
        )
        .unwrap();
        let reports = reader.run(&ScenarioWorld::new(scenario), 60.0);
        BreathMonitor::paper_default()
            .analyze(&reports, &EmbeddedIdentity::new([1]))
            .users
            .remove(&1)
            .and_then(Result::ok)
            .map(|a| assess(&a, &QualityThresholds::default_thresholds()))
    };
    let still = run(BodyMotion::Still, 21).expect("still analysable");
    let fidgety = run(
        BodyMotion::Fidget {
            amplitude_m: 0.04,
            rate_per_min: 8.0,
            seed: 3,
        },
        21,
    );
    // Fidgeting must not crash; when analysable, its quality must not
    // exceed the still subject's.
    if let Some(q) = fidgety {
        assert!(
            q.confidence <= still.confidence,
            "fidgeting graded {q:?} above still {still:?}"
        );
    }
}

#[test]
fn walking_subject_is_flagged_as_gross_motion() {
    use tagbreathe_suite::tagbreathe::AnalysisFailure;
    // Slow walk toward the antenna: the tag stays in the beam for the
    // whole capture but the trajectory spans metres.
    let subject = Subject::paper_default(1, 5.0).with_motion(BodyMotion::Walk { speed_mps: 0.03 });
    let scenario = Scenario::builder().subject(subject).build();
    let reports = Reader::paper_default().run(&ScenarioWorld::new(scenario), 60.0);
    assert!(!reports.is_empty(), "walker left the beam entirely");
    let analysis = BreathMonitor::paper_default().analyze(&reports, &EmbeddedIdentity::new([1]));
    match &analysis.users[&1] {
        Err(AnalysisFailure::GrossMotion { range_m }) => {
            assert!(*range_m > 1.0, "range {range_m}");
        }
        other => panic!("walking subject not flagged: {other:?}"),
    }
}

#[test]
fn stationary_subject_is_not_flagged_as_gross_motion() {
    use tagbreathe_suite::tagbreathe::AnalysisFailure;
    let reports = capture(60.0, 7);
    let analysis = BreathMonitor::paper_default().analyze(&reports, &EmbeddedIdentity::new([1]));
    assert!(
        !matches!(analysis.users[&1], Err(AnalysisFailure::GrossMotion { .. })),
        "false gross-motion alarm"
    );
}

#[test]
fn empty_and_single_report_streams() {
    assert!(estimate(&[]).is_none());
    let one = capture(1.0, 6).into_iter().take(1).collect::<Vec<_>>();
    assert!(estimate(&one).is_none());
}

// ---------------------------------------------------------------------------
// Wire-protocol failure injection: the ingest server must shed or close on
// hostile bytes — truncated frames, oversized length prefixes, garbage,
// mid-frame disconnects, duplicate Hellos — without ever panicking, and the
// sheds must be visible at /metrics.
// ---------------------------------------------------------------------------

mod wire_abuse {
    use epcgen2::wire::{encode_frame, read_frame, ErrorCode, Message};
    use server::{ServerConfig, ServerHandle};
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    fn start_server() -> ServerHandle {
        server::start(ServerConfig {
            window_s: 10.0,
            update_every_s: 2.0,
            shards: 1,
            ..ServerConfig::default()
        })
        .expect("server must start")
    }

    fn hello(reader: u32) -> Vec<u8> {
        encode_frame(&Message::Hello {
            reader_id: reader,
            features: 0,
            clock_offset_s: 0.0,
            reader_clock_s: 0.0,
        })
    }

    /// Writes raw bytes, then reads whatever the server answers until it
    /// closes the connection. Returns the decoded replies.
    fn exchange(handle: &ServerHandle, payload: &[u8]) -> Vec<Message> {
        let mut stream = TcpStream::connect(handle.ingest_addr()).expect("connect");
        stream.write_all(payload).expect("write");
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let mut replies = Vec::new();
        while let Ok(Some(msg)) = read_frame(&mut stream) {
            replies.push(msg);
        }
        replies
    }

    fn metrics_body(handle: &ServerHandle) -> String {
        let mut stream = TcpStream::connect(handle.http_addr()).expect("http connect");
        write!(
            stream,
            "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .expect("http write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("http read");
        response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default()
    }

    fn shed_count(handle: &ServerHandle) -> u64 {
        handle
            .registry()
            .counter("tagbreathe_server_frames_shed_total")
    }

    #[test]
    fn survives_wire_abuse_and_counts_sheds() {
        let handle = start_server();

        // 1. Garbage bytes: an absurd length prefix → Reject(Oversized).
        let replies = exchange(&handle, b"\xFF\xFF\xFF\xFFGARBAGEGARBAGE");
        assert!(
            matches!(
                replies.last(),
                Some(Message::Reject {
                    code: ErrorCode::Oversized
                })
            ),
            "garbage replies: {replies:?}"
        );

        // 2. Plausible-length garbage → checksum or structure reject.
        let mut plausible = 32u32.to_be_bytes().to_vec();
        plausible.extend_from_slice(&[0xA5; 32]);
        let replies = exchange(&handle, &plausible);
        assert!(
            matches!(replies.last(), Some(Message::Reject { .. })),
            "plausible-garbage replies: {replies:?}"
        );

        // 3. Truncated frame then disconnect (mid-frame hangup).
        let full = hello(7);
        let cut = &full[..full.len() - 3];
        let replies = exchange(&handle, cut);
        assert!(replies.is_empty(), "truncated hello got: {replies:?}");

        // 4. Corrupted CRC on an otherwise valid frame.
        let mut corrupt = hello(8);
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        let replies = exchange(&handle, &corrupt);
        assert!(
            matches!(
                replies.last(),
                Some(Message::Reject {
                    code: ErrorCode::BadChecksum
                })
            ),
            "bad-crc replies: {replies:?}"
        );

        // 5. Duplicate Hello on one session.
        let mut two_hellos = hello(9);
        two_hellos.extend_from_slice(&hello(9));
        let replies = exchange(&handle, &two_hellos);
        assert!(
            matches!(
                replies.last(),
                Some(Message::Reject {
                    code: ErrorCode::DuplicateHello
                })
            ),
            "duplicate-hello replies: {replies:?}"
        );

        // 6. Batch before Hello.
        let early = encode_frame(&Message::Heartbeat {
            reader_clock_s: 1.0,
        });
        let replies = exchange(&handle, &early);
        assert!(
            matches!(
                replies.last(),
                Some(Message::Reject {
                    code: ErrorCode::NotHelloed
                })
            ),
            "not-helloed replies: {replies:?}"
        );

        // The sheds are all counted and visible over HTTP.
        assert!(shed_count(&handle) >= 5, "sheds: {}", shed_count(&handle));
        let body = metrics_body(&handle);
        let shed_line = body
            .lines()
            .find(|l| l.starts_with("tagbreathe_server_frames_shed_total"));
        assert!(
            shed_line.is_some(),
            "shed counter missing from /metrics:\n{body}"
        );

        // And the server is still fully alive: a clean session works.
        let stream = TcpStream::connect(handle.ingest_addr()).expect("connect");
        let client = epcgen2::client::ReaderClient::connect(stream, 1, 0).expect("clean hello");
        client.goodbye().expect("clean goodbye");

        let snapshots = handle.shutdown();
        // Nothing analysable was fed; the point is that we got here
        // without a panic and with sheds counted.
        drop(snapshots);
    }

    #[test]
    fn slow_trickled_hello_still_handshakes() {
        // One byte at a time across many TCP segments: framing must
        // reassemble rather than treat each read as a frame.
        let handle = start_server();
        let mut stream = TcpStream::connect(handle.ingest_addr()).expect("connect");
        for b in hello(3) {
            stream.write_all(&[b]).expect("write byte");
            stream.flush().expect("flush");
        }
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let reply = read_frame(&mut stream).expect("read ack");
        assert!(
            matches!(reply, Some(Message::Ack { .. })),
            "trickled hello got {reply:?}"
        );
        drop(stream);
        let _ = handle.shutdown();
    }

    #[test]
    fn oversized_batch_count_is_rejected_cleanly() {
        // A frame whose Batch body claims more reports than it carries.
        let handle = start_server();
        let mut session = hello(4);
        let batch = encode_frame(&Message::Batch {
            seq: 0,
            reader_clock_s: 0.0,
            reports: Vec::new(),
        });
        // Rewrite the count field (payload offset 4+4+8 = 16 after the
        // length word) and fix up nothing else: CRC now fails first.
        let mut broken = batch.clone();
        broken[4 + 17] = 0xFF;
        session.extend_from_slice(&broken);
        let replies = exchange(&handle, &session);
        assert!(
            matches!(replies.last(), Some(Message::Reject { .. })),
            "broken batch got: {replies:?}"
        );
        assert!(shed_count(&handle) >= 1);
        let _ = handle.shutdown();
    }
}

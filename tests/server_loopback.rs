//! Loopback integration tests for the ingest server: a simulated reader
//! fleet streams over real TCP and the served snapshots must be
//! bit-identical to an inline `FleetEngine` run. The heavier sweep lives
//! in the `loopback_soak` bench binary (wired into ci.sh); these tests
//! pin the same property at unit-test scale plus the HTTP endpoints.

use server::{LaneMerger, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use tagbreathe_suite::prelude::*;

fn capture(user: u64, seed: u64, secs: f64) -> Vec<TagReport> {
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(user, 2.0))
        .build();
    let reader = Reader::new(
        ReaderConfig::paper_default().with_seed(seed),
        vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
    )
    .unwrap();
    reader.run(&ScenarioWorld::new(scenario), secs)
}

fn test_config() -> ServerConfig {
    ServerConfig {
        window_s: 12.5,
        update_every_s: 2.5,
        shards: 2,
        ..ServerConfig::default()
    }
}

fn start_server() -> ServerHandle {
    server::start(test_config()).expect("server must start")
}

fn http_get(handle: &ServerHandle, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(handle.http_addr()).expect("http connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("http write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("http read");
    let (head, body) = response.split_once("\r\n\r\n").expect("http headers");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

fn feed_and_shutdown(handle: ServerHandle, streams: &[Vec<TagReport>]) -> Vec<RateSnapshot> {
    let ingest = handle.ingest_addr();
    let feeders: Vec<_> = streams
        .iter()
        .enumerate()
        .map(|(idx, reports)| {
            let reports = reports.clone();
            let reader_id = idx as u32 + 1;
            std::thread::spawn(move || {
                let stream = TcpStream::connect(ingest).expect("connect");
                let mut client =
                    epcgen2::client::ReaderClient::connect(stream, reader_id, 0).expect("hello");
                for chunk in reports.chunks(64) {
                    let clock = chunk.last().map_or(0.0, |r| r.time_s);
                    client.send_batch(chunk, clock).expect("batch");
                }
                client.goodbye().expect("goodbye");
            })
        })
        .collect();
    for f in feeders {
        f.join().expect("feeder");
    }
    handle.shutdown()
}

fn inline_reference(streams: &[Vec<TagReport>]) -> Vec<RateSnapshot> {
    let mut merger = LaneMerger::new();
    for (idx, reports) in streams.iter().enumerate() {
        let reader_id = idx as u32 + 1;
        let last = reports.last().map_or(0.0, |r| r.time_s);
        merger.push(reader_id, reports.clone(), last);
    }
    let merged = merger.drain_all();
    let cfg = test_config();
    let mut fleet = tagbreathe::FleetEngine::new(
        PipelineConfig::paper_default(),
        epcgen2::OpenAdmission,
        cfg.window_s,
        cfg.update_every_s,
        cfg.shards,
    )
    .expect("fleet");
    let mut snapshots = fleet.push(merged);
    snapshots.extend(fleet.finish());
    snapshots
}

fn assert_bit_identical(served: &[RateSnapshot], reference: &[RateSnapshot]) {
    assert_eq!(served.len(), reference.len(), "snapshot count");
    for (s, r) in served.iter().zip(reference) {
        assert_eq!(s.time_s.to_bits(), r.time_s.to_bits(), "snapshot time");
        assert_eq!(s.rates_bpm.len(), r.rates_bpm.len(), "user count");
        for ((su, sv), (ru, rv)) in s.rates_bpm.iter().zip(&r.rates_bpm) {
            assert_eq!(su, ru, "user set");
            assert_eq!(sv.to_bits(), rv.to_bits(), "rate bits for user {su}");
        }
        for ((su, sv), (ru, rv)) in s.effort_rms.iter().zip(&r.effort_rms) {
            assert_eq!(su, ru, "effort user set");
            assert_eq!(sv.to_bits(), rv.to_bits(), "effort bits for user {su}");
        }
    }
}

#[test]
fn single_reader_snapshots_bit_identical_to_inline() {
    let streams = vec![capture(1, 11, 15.0)];
    let reference = inline_reference(&streams);
    let served = feed_and_shutdown(start_server(), &streams);
    assert!(!served.is_empty(), "server must emit snapshots");
    assert_bit_identical(&served, &reference);
}

#[test]
fn two_readers_merge_bit_identical_to_inline() {
    let streams = vec![capture(1, 21, 15.0), capture(2, 22, 15.0)];
    let reference = inline_reference(&streams);
    let served = feed_and_shutdown(start_server(), &streams);
    assert!(!served.is_empty(), "server must emit snapshots");
    assert_bit_identical(&served, &reference);
}

#[test]
fn http_surface_serves_metrics_snapshots_and_health() {
    let handle = start_server();
    let streams = [capture(1, 31, 30.0)];
    let ingest = handle.ingest_addr();

    let reports = streams[0].clone();
    let feeder = std::thread::spawn(move || {
        let stream = TcpStream::connect(ingest).expect("connect");
        let mut client = epcgen2::client::ReaderClient::connect(stream, 1, 0).expect("hello");
        client
            .send_batch(&reports, reports.last().map_or(0.0, |r| r.time_s))
            .expect("batch");
        client.goodbye().expect("goodbye");
    });
    feeder.join().expect("feeder");

    // Wait until the engine has emitted an analysable snapshot for the
    // user, so the HTTP surface has something substantive to serve.
    for _ in 0..200 {
        if handle.latest_for(1).is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(
        handle.latest_for(1).is_some(),
        "user 1 must be analysed live"
    );

    let (status, body) = http_get(&handle, "/healthz");
    assert!(status.contains("200"), "healthz: {status}");
    assert_eq!(body.trim(), "ok");

    let (status, body) = http_get(&handle, "/metrics");
    assert!(status.contains("200"), "metrics: {status}");
    assert!(
        body.contains("tagbreathe_server_reports_total"),
        "prometheus body must carry server counters"
    );

    let (status, body) = http_get(&handle, "/metrics.json");
    assert!(status.contains("200"), "metrics.json: {status}");
    obs::json::validate(&body).expect("metrics.json must be valid JSON");

    let (status, body) = http_get(&handle, "/snapshots");
    assert!(status.contains("200"), "snapshots: {status}");
    obs::json::validate(&body).expect("/snapshots must be valid JSON");
    assert!(body.contains("rate_bpm_bits"), "bit-faithful floats served");

    // The analysed user is servable; an unknown one is a 404.
    let (status, body) = http_get(&handle, "/snapshot/1");
    assert!(status.contains("200"), "snapshot/1: {status} {body}");
    obs::json::validate(&body).expect("/snapshot/1 must be valid JSON");
    let (status, _) = http_get(&handle, "/snapshot/999");
    assert!(status.contains("404"), "unknown user: {status}");

    // No anomaly fired in a calm capture: /bundle is a 404, not a crash.
    let (status, _) = http_get(&handle, "/bundle");
    assert!(
        status.contains("404") || status.contains("200"),
        "bundle: {status}"
    );

    // Unknown paths and non-GET are clean errors.
    let (status, _) = http_get(&handle, "/nope");
    assert!(status.contains("404"), "unknown path: {status}");

    let snapshots = handle.shutdown();
    assert!(!snapshots.is_empty());
}

#[test]
fn latest_for_matches_final_snapshot() {
    let streams = [capture(1, 41, 30.0)];
    let handle = start_server();
    let ingest = handle.ingest_addr();
    let reports = streams[0].clone();
    std::thread::spawn(move || {
        let stream = TcpStream::connect(ingest).expect("connect");
        let mut client = epcgen2::client::ReaderClient::connect(stream, 1, 0).expect("hello");
        client
            .send_batch(&reports, reports.last().map_or(0.0, |r| r.time_s))
            .expect("batch");
        client.goodbye().expect("goodbye");
    })
    .join()
    .expect("feeder");
    // The live per-user view fills in as the engine catches up.
    let mut live = None;
    for _ in 0..100 {
        live = handle.latest_for(1);
        if live.is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let snapshots = handle.shutdown();
    let last_rate = snapshots
        .iter()
        .rev()
        .find_map(|s| s.rates_bpm.get(&1).copied());
    assert!(last_rate.is_some(), "user 1 must be analysed");
    let live = live.expect("live view must surface user 1");
    assert!(
        snapshots
            .iter()
            .any(|s| s.rates_bpm.get(&1).map(|r| r.to_bits()) == Some(live.rate_bpm.to_bits())),
        "live view must match one of the emitted snapshots"
    );
}

//! Sharded-vs-single-thread equivalence for the fleet engine.
//!
//! The fleet engine's contract is stronger than "statistically close": for
//! any shard count, the merged snapshot stream must be **bit-identical**
//! to what the single-threaded `StreamingMonitor` produces from the same
//! trace. Reports travel to shards as `f64::to_bits` words, each shard
//! drives the same `UserStreamState` operators in the same stream order,
//! and parts merge in epoch order — so equality here is `to_bits`
//! equality, not a tolerance.

use tagbreathe_suite::prelude::*;
use tagbreathe_suite::tagbreathe::fleet::FleetEngine;

const WINDOW_S: f64 = 15.0;
const CADENCE_S: f64 = 5.0;

fn capture_multi_user(secs: f64) -> (Vec<TagReport>, Vec<u64>) {
    let scenario = Scenario::builder()
        .users_side_by_side(3, 3.0, &[9.0, 12.0, 16.0])
        .contending_items(10)
        .build();
    let ids: Vec<u64> = scenario.subjects().iter().map(|s| s.user_id()).collect();
    let reader = Reader::new(
        ReaderConfig::paper_default().with_seed(11),
        vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
    )
    .unwrap();
    (reader.run(&ScenarioWorld::new(scenario), secs), ids)
}

fn single_thread(reports: &[TagReport], ids: &[u64]) -> Vec<RateSnapshot> {
    let mut sm = StreamingMonitor::new(
        PipelineConfig::paper_default(),
        EmbeddedIdentity::new(ids.to_vec()),
        WINDOW_S,
        CADENCE_S,
    )
    .unwrap();
    sm.push(reports.iter().cloned())
}

fn sharded(reports: &[TagReport], ids: &[u64], shards: usize) -> Vec<RateSnapshot> {
    let mut fleet = FleetEngine::new(
        PipelineConfig::paper_default(),
        EmbeddedIdentity::new(ids.to_vec()),
        WINDOW_S,
        CADENCE_S,
        shards,
    )
    .unwrap();
    let mut snaps = fleet.push(reports.iter().cloned());
    snaps.extend(fleet.finish());
    snaps
}

/// `assert_eq!` on `RateSnapshot` compares floats with `==`; make the
/// bit-level claim explicit as well, so `-0.0 == 0.0`-style coincidences
/// cannot mask a real divergence.
fn assert_bit_identical(a: &[RateSnapshot], b: &[RateSnapshot], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: snapshot count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.time_s.to_bits(), y.time_s.to_bits(), "{what}: time");
        let pairs = |m: &std::collections::BTreeMap<u64, f64>| -> Vec<(u64, u64)> {
            m.iter().map(|(&k, v)| (k, v.to_bits())).collect()
        };
        assert_eq!(
            pairs(&x.rates_bpm),
            pairs(&y.rates_bpm),
            "{what}: rates at t={}",
            x.time_s
        );
        assert_eq!(
            pairs(&x.effort_rms),
            pairs(&y.effort_rms),
            "{what}: efforts at t={}",
            x.time_s
        );
    }
}

#[test]
fn sharded_matches_single_thread_at_every_width() {
    let (reports, ids) = capture_multi_user(60.0);
    let reference = single_thread(&reports, &ids);
    assert!(
        reference.iter().any(|s| !s.rates_bpm.is_empty()),
        "reference run produced no rates — test would be vacuous"
    );
    for shards in [1, 2, 4, 8] {
        let fleet = sharded(&reports, &ids, shards);
        assert_bit_identical(&reference, &fleet, &format!("{shards} shards"));
    }
}

#[test]
fn watermark_advances_across_shards_with_disjoint_activity() {
    // User 1 reports only early, user 2 only late. With 2+ shards the two
    // live on (usually) different shards, so the late user's reports must
    // still drive cadence snapshots of the idle shard — the cross-shard
    // watermark handoff.
    let mk = |user: u64, t: f64, phase: f64| TagReport {
        time_s: t,
        epc: Epc96::monitor(user, 0),
        antenna_port: 1,
        channel_index: 0,
        phase_rad: phase.rem_euclid(std::f64::consts::TAU),
        rssi_dbm: -55.0,
        doppler_hz: 0.0,
    };
    let mut reports = Vec::new();
    let mut t = 0.0;
    while t < 10.0 {
        reports.push(mk(
            1,
            t,
            1.0 + (2.0 * std::f64::consts::PI * 0.2 * t).sin() * 0.1,
        ));
        t += 0.03;
    }
    let mut t = 20.0;
    while t < 31.0 {
        reports.push(mk(
            2,
            t,
            1.5 + (2.0 * std::f64::consts::PI * 0.25 * t).sin() * 0.1,
        ));
        t += 0.03;
    }
    let ids = [1u64, 2];
    let reference = single_thread(&reports, &ids);
    assert!(
        reference.len() >= 6,
        "expected cadence points through the idle gap, got {}",
        reference.len()
    );
    for shards in [2, 4, 8] {
        let fleet = sharded(&reports, &ids, shards);
        assert_bit_identical(&reference, &fleet, &format!("watermark/{shards} shards"));
    }
}

#[test]
fn out_of_order_timestamps_are_handled_identically() {
    // Swap adjacent reports pairwise: small local reordering, as an LLRP
    // event stream can deliver. Both engines must process the perturbed
    // stream identically (watermarks are max-monotone, not assumed
    // sorted).
    let (mut reports, ids) = capture_multi_user(40.0);
    for pair in reports.chunks_mut(2) {
        pair.reverse();
    }
    let reference = single_thread(&reports, &ids);
    for shards in [2, 8] {
        let fleet = sharded(&reports, &ids, shards);
        assert_bit_identical(&reference, &fleet, &format!("ooo/{shards} shards"));
    }
}

#[test]
fn fleet_snapshots_drain_on_finish_even_mid_cadence() {
    // Pushing a stream that ends between cadence points: finish() must
    // return exactly the snapshots the single-thread engine produced, no
    // trailing partial epoch.
    let (reports, ids) = capture_multi_user(23.0);
    let reference = single_thread(&reports, &ids);
    let fleet = sharded(&reports, &ids, 4);
    assert_bit_identical(&reference, &fleet, "mid-cadence finish");
}

//! Integration tests of the Gen2 protocol features through the full stack:
//! Select filtering, sessions, EPC commissioning, and regional channel
//! plans.

use tagbreathe_suite::epcgen2::select::SelectMask;
use tagbreathe_suite::epcgen2::session::Session;
use tagbreathe_suite::epcgen2::writer::{commission, CommissionPlan, WriteConfig};
use tagbreathe_suite::prelude::*;
use tagbreathe_suite::rfchannel::channel_plan::ChannelPlan;

fn antenna() -> Antenna {
    Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))
}

#[test]
fn select_restores_accuracy_under_extreme_contention() {
    // 60 contending tags — beyond the paper's sweep. Select on the user's
    // EPC prefix keeps the monitoring tags at full rate.
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(1, 2.0))
        .contending_items(60)
        .build();
    let world = ScenarioWorld::new(scenario);

    let with_select = Reader::new(
        ReaderConfig::paper_default().with_select(SelectMask::for_user(1)),
        vec![antenna()],
    )
    .unwrap()
    .run(&world, 60.0);
    let without = Reader::paper_default().run(&world, 60.0);

    let worn = |rs: &[TagReport]| rs.iter().filter(|r| r.epc.user_id() == 1).count();
    assert!(worn(&with_select) > 3 * worn(&without));

    let monitor = BreathMonitor::paper_default();
    let bpm = monitor
        .analyze(&with_select, &EmbeddedIdentity::new([1]))
        .users[&1]
        .as_ref()
        .unwrap()
        .mean_rate_bpm()
        .unwrap();
    assert!((bpm - 10.0).abs() < 1.0, "selected estimate {bpm}");
}

#[test]
fn s1_session_breaks_breath_monitoring() {
    // The ablation's point as a hard invariant: S1 flag persistence
    // reduces per-tag rates below the breathing Nyquist rate, so the
    // pipeline must abstain or fail — silently wrong answers are the one
    // forbidden outcome.
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(1, 2.0))
        .build();
    let world = ScenarioWorld::new(scenario);
    let reports = Reader::new(
        ReaderConfig::paper_default().with_session(Session::S1 { persistence_s: 5.0 }),
        vec![antenna()],
    )
    .unwrap()
    .run(&world, 60.0);
    // ~0.2 reads/s/tag: far below the 1.34 Hz Nyquist rate for 40 bpm.
    assert!(reports.len() < 60, "{} reads", reports.len());
    let analysis = BreathMonitor::paper_default().analyze(&reports, &EmbeddedIdentity::new([1]));
    match analysis.users.get(&1) {
        None | Some(Err(_)) => {} // abstained, as required
        Some(Ok(a)) => {
            // If anything was produced, it must carry almost no crossings —
            // a visibly unusable estimate rather than a confident wrong one.
            assert!(
                a.rate.instantaneous.len() < 3,
                "confident estimate from starved data: {:?}",
                a.mean_rate_bpm()
            );
        }
    }
}

#[test]
fn commissioning_fallback_flows_into_the_pipeline() {
    // Some writes fail; the commissioning report's fallback table must
    // resolve those tags so monitoring still covers them. Simulate by
    // resolving a captured stream through (embedded ∪ fallback).
    let mut plan = CommissionPlan::new();
    let factory = [
        Epc96::monitor(0xFAC7_0000_0000_0001, 100),
        Epc96::monitor(0xFAC7_0000_0000_0002, 200),
        Epc96::monitor(0xFAC7_0000_0000_0003, 300),
    ];
    plan.add_user(factory, 1);
    let config = WriteConfig {
        word_success_probability: 0.5, // hostile: many writes fail
        max_retries: 2,
    };
    let report = commission(&plan, &config, 7).expect("valid write configuration");
    assert_eq!(report.written() + report.failed(), 3);
    // Every failed tag is covered by the fallback.
    assert_eq!(report.fallback.len(), report.failed());
}

#[test]
fn etsi_channel_plan_works_end_to_end() {
    // European 4-channel plan: fewer channels means fewer per-channel
    // groups; the pipeline must be configured with the same plan.
    let mut reader_cfg = ReaderConfig::paper_default();
    reader_cfg.plan = ChannelPlan::etsi_4();
    let reader = Reader::new(reader_cfg, vec![antenna()]).unwrap();
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(1, 2.0))
        .build();
    let reports = reader.run(&ScenarioWorld::new(scenario), 60.0);
    assert!(reports.iter().all(|r| (r.channel_index as usize) < 4));

    let mut pipeline_cfg = PipelineConfig::paper_default();
    pipeline_cfg.plan = ChannelPlan::etsi_4();
    let monitor = BreathMonitor::new(pipeline_cfg).unwrap();
    let bpm = monitor.analyze(&reports, &EmbeddedIdentity::new([1])).users[&1]
        .as_ref()
        .unwrap()
        .mean_rate_bpm()
        .unwrap();
    assert!((bpm - 10.0).abs() < 1.0, "ETSI estimate {bpm}");
}

#[test]
fn fixed_channel_plan_works_end_to_end() {
    // The paper notes a fixed channel is not FCC-legal but is the simplest
    // configuration conceptually — no hop discontinuities at all.
    let mut reader_cfg = ReaderConfig::paper_default();
    reader_cfg.plan =
        ChannelPlan::fixed(tagbreathe_suite::rfchannel::units::Hertz::from_mhz(915.0));
    let reader = Reader::new(reader_cfg, vec![antenna()]).unwrap();
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(1, 3.0))
        .build();
    let reports = reader.run(&ScenarioWorld::new(scenario), 60.0);
    assert!(reports.iter().all(|r| r.channel_index == 0));

    let mut pipeline_cfg = PipelineConfig::paper_default();
    pipeline_cfg.plan =
        ChannelPlan::fixed(tagbreathe_suite::rfchannel::units::Hertz::from_mhz(915.0));
    let monitor = BreathMonitor::new(pipeline_cfg).unwrap();
    let bpm = monitor.analyze(&reports, &EmbeddedIdentity::new([1])).users[&1]
        .as_ref()
        .unwrap()
        .mean_rate_bpm()
        .unwrap();
    assert!((bpm - 10.0).abs() < 1.0, "fixed-channel estimate {bpm}");
}

#[test]
fn select_prefix_covers_multiple_users_but_not_items() {
    // Allocate all monitor users under the 32-bit-zero prefix; items use
    // user_id = u64::MAX and must be excluded.
    let scenario = Scenario::builder()
        .users_side_by_side(2, 3.0, &[10.0, 14.0])
        .contending_items(20)
        .build();
    let ids: Vec<u64> = scenario.subjects().iter().map(|s| s.user_id()).collect();
    let reader = Reader::new(
        ReaderConfig::paper_default().with_select(SelectMask::for_user_prefix(0, 32)),
        vec![antenna()],
    )
    .unwrap();
    let reports = reader.run(&ScenarioWorld::new(scenario), 60.0);
    assert!(!reports.is_empty());
    assert!(reports.iter().all(|r| r.epc.user_id() != u64::MAX));
    let monitor = BreathMonitor::paper_default();
    let analysis = monitor.analyze(&reports, &EmbeddedIdentity::new(ids.clone()));
    for id in ids {
        assert!(analysis.users[&id].is_ok(), "user {id} lost under Select");
    }
}

#[test]
fn two_ray_propagation_works_end_to_end() {
    use tagbreathe_suite::rfchannel::link::Propagation;
    let mut cfg = ReaderConfig::paper_default().with_seed(42);
    cfg.propagation = Propagation::TwoRay {
        reflection_coeff: 0.5,
    };
    let reader = Reader::new(cfg, vec![antenna()]).unwrap();
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(1, 3.0))
        .build();
    let reports = reader.run(&ScenarioWorld::new(scenario), 90.0);
    assert!(!reports.is_empty());
    let bpm = BreathMonitor::paper_default()
        .analyze(&reports, &EmbeddedIdentity::new([1]))
        .users[&1]
        .as_ref()
        .unwrap()
        .mean_rate_bpm()
        .unwrap();
    assert!((bpm - 10.0).abs() < 1.0, "two-ray estimate {bpm}");
}

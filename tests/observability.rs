//! Observability integration suite.
//!
//! Two guarantees, stated over a realistic replayed capture:
//!
//! 1. **Coverage** — with a `Registry` attached, the reader simulator, the
//!    streaming pipeline, the batch stage timers and the quality assessor
//!    together emit non-zero values for at least 12 distinct metrics, and
//!    both renderings (Prometheus text, JSON) are well-formed.
//! 2. **Non-perturbation** — the no-op recorder and a live registry
//!    produce bit-identical outputs on every path (`PartialEq` over `f64`
//!    fields compares the actual bits of the computed values), so turning
//!    observability on can never change a breathing estimate.

use std::sync::Arc;
use tagbreathe_suite::obs::{Registry, SharedRecorder};
use tagbreathe_suite::prelude::*;
use tagbreathe_suite::tagbreathe::quality::{assess, assess_observed, QualityThresholds};

fn capture(secs: f64) -> (Vec<TagReport>, Vec<u64>) {
    let scenario = Scenario::builder()
        .users_side_by_side(2, 3.0, &[10.0, 16.0])
        .contending_items(5)
        .build();
    let ids: Vec<u64> = scenario.subjects().iter().map(|s| s.user_id()).collect();
    let reports = Reader::paper_default().run(&ScenarioWorld::new(scenario), secs);
    (reports, ids)
}

#[test]
fn replayed_scenario_populates_every_instrumented_stage() {
    let scenario = Scenario::builder()
        .users_side_by_side(2, 3.0, &[10.0, 16.0])
        .contending_items(5)
        .build();
    let ids: Vec<u64> = scenario.subjects().iter().map(|s| s.user_id()).collect();
    let registry = Arc::new(Registry::new());

    // Reader-simulator metrics.
    let reports = Reader::paper_default().run_observed(
        &ScenarioWorld::new(scenario),
        40.0,
        registry.as_ref(),
    );
    assert!(!reports.is_empty());

    // Streaming-pipeline metrics (ingest, operators, eviction, snapshots,
    // link quality).
    let mut sm = StreamingMonitor::new(
        PipelineConfig::paper_default(),
        EmbeddedIdentity::new(ids.clone()),
        15.0,
        5.0,
    )
    .expect("valid config")
    .with_recorder(SharedRecorder::new(registry.clone()));
    let snaps = sm.push(reports.iter().copied());
    assert!(!snaps.is_empty());

    // Batch stage timers + quality metrics.
    let analysis = BreathMonitor::paper_default().analyze_observed(
        &reports,
        &EmbeddedIdentity::new(ids),
        registry.as_ref(),
    );
    for (_, user) in analysis.successes() {
        assess_observed(
            user,
            &QualityThresholds::default_thresholds(),
            registry.as_ref(),
        );
    }

    let snapshot = registry.snapshot();
    let names = snapshot.nonzero_names();
    assert!(
        names.len() >= 12,
        "only {} distinct non-zero metrics: {names:?}",
        names.len()
    );

    // Every instrumented subsystem is represented.
    for required in [
        // reader simulator
        "epcgen2_inventory_rounds_total",
        "epcgen2_reads_total",
        "epcgen2_round_participants",
        // streaming ingest + operator graph
        "tagbreathe_reports_ingested_total",
        "tagbreathe_reports_unknown_total",
        "tagbreathe_graph_reports_total",
        "tagbreathe_phase_increments_total",
        "tagbreathe_fusion_bins_created_total",
        "tagbreathe_fusion_bins_evicted_total",
        "tagbreathe_snapshots_total",
        "tagbreathe_snapshot_latency_ns",
        "tagbreathe_evict_latency_ns",
        // link quality gauges (per-port labels stripped by nonzero_names)
        "tagbreathe_port_rssi_ewma_dbm",
        "tagbreathe_port_read_rate_hz",
        // batch stage timers
        "tagbreathe_stage_demux_ns",
        "tagbreathe_stage_fold_ns",
        "tagbreathe_stage_analyze_ns",
        // quality assessor
        "tagbreathe_quality_grades_total",
    ] {
        assert!(names.contains(&required.to_string()), "missing {required}");
    }

    // Both renderings are well-formed and carry the data.
    let prom = registry.render_prometheus();
    assert!(prom.contains("# TYPE tagbreathe_snapshot_latency_ns histogram"));
    assert!(prom.contains("tagbreathe_port_rssi_ewma_dbm{port=\"1\"}"));
    let json = registry.render_json();
    tagbreathe_suite::obs::json::validate(&json).expect("registry JSON parses");
    assert!(json.contains("\"tagbreathe_reports_ingested_total\""));
}

#[test]
fn recording_never_perturbs_streaming_output() {
    let (reports, ids) = capture(45.0);
    let make = || {
        StreamingMonitor::new(
            PipelineConfig::paper_default(),
            EmbeddedIdentity::new(ids.clone()),
            20.0,
            5.0,
        )
        .expect("valid config")
    };

    let mut plain = make();
    let mut observed = make().with_recorder(SharedRecorder::new(Arc::new(Registry::new())));

    let plain_snaps = plain.push(reports.iter().copied());
    let observed_snaps = observed.push(reports.iter().copied());

    // RateSnapshot derives PartialEq over its f64 maps, so this compares
    // the computed rates bit for bit.
    assert_eq!(plain_snaps, observed_snaps);
    assert_eq!(plain.snapshot_now(), observed.snapshot_now());
    assert!(
        plain_snaps.iter().any(|s| !s.rates_bpm.is_empty()),
        "trace produced no rates at all — vacuous equality"
    );
}

#[test]
fn recording_never_perturbs_batch_or_reader_output() {
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(1, 2.0))
        .build();
    let world = ScenarioWorld::new(scenario);
    let registry = Registry::new();

    let plain_reports = Reader::paper_default().run(&world, 20.0);
    let observed_reports = Reader::paper_default().run_observed(&world, 20.0, &registry);
    assert_eq!(plain_reports, observed_reports);

    let resolver = EmbeddedIdentity::new([1]);
    let monitor = BreathMonitor::paper_default();
    let plain = monitor.analyze(&plain_reports, &resolver);
    let observed = monitor.analyze_observed(&plain_reports, &resolver, &registry);
    assert_eq!(plain, observed);

    let user = plain.users[&1].as_ref().expect("analysable");
    let q_plain = assess(user, &QualityThresholds::default_thresholds());
    let q_observed = assess_observed(user, &QualityThresholds::default_thresholds(), &registry);
    assert_eq!(q_plain, q_observed);
}

#[test]
fn tracing_never_perturbs_streaming_output() {
    use tagbreathe_suite::obs::trace::FlightRecorder;
    use tagbreathe_suite::obs::SharedTracer;

    let (reports, ids) = capture(45.0);
    let make = || {
        StreamingMonitor::new(
            PipelineConfig::paper_default(),
            EmbeddedIdentity::new(ids.clone()),
            20.0,
            5.0,
        )
        .expect("valid config")
    };

    let ring = Arc::new(FlightRecorder::with_capacity(1 << 16).expect("capacity"));
    let mut plain = make();
    let mut traced = make().with_tracer(SharedTracer::new(ring.clone()));

    let plain_snaps = plain.push(reports.iter().copied());
    let traced_snaps = traced.push(reports.iter().copied());

    // Bit-identical estimates: PartialEq over the f64 rate maps.
    assert_eq!(plain_snaps, traced_snaps);
    assert_eq!(plain.snapshot_now(), traced.snapshot_now());
    assert!(
        plain_snaps.iter().any(|s| !s.rates_bpm.is_empty()),
        "trace produced no rates at all — vacuous equality"
    );
    // The flight recorder actually saw the session: reads, accepted phase
    // samples, rate instants.
    let events = ring.snapshot();
    assert!(!events.is_empty(), "tracer recorded nothing");
    for name in ["read", "phase_accept", "rate", "snapshot"] {
        assert!(
            events.iter().any(|e| e.name == name),
            "no {name:?} events in {} recorded",
            events.len()
        );
    }
}

#[test]
fn noop_monitor_reports_disabled_recorder_and_empty_link_quality() {
    let sm = StreamingMonitor::new(
        PipelineConfig::paper_default(),
        EmbeddedIdentity::new([1]),
        25.0,
        5.0,
    )
    .expect("valid config");
    assert!(!sm.recorder().enabled());
    assert!(sm.link_quality().ports().is_empty());
}

//! Integration tests of the real-time modes and the trace record/replay
//! path.

use epcgen2::report::{read_csv, write_csv};
use tagbreathe_suite::prelude::*;

fn capture(secs: f64, seed: u64) -> Vec<TagReport> {
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(1, 3.0))
        .build();
    let reader = Reader::new(
        ReaderConfig::paper_default().with_seed(seed),
        vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
    )
    .unwrap();
    reader.run(&ScenarioWorld::new(scenario), secs)
}

#[test]
fn streaming_matches_batch_on_final_window() {
    let reports = capture(60.0, 1);
    let batch = {
        let window: Vec<TagReport> = reports
            .iter()
            .filter(|r| r.time_s >= 60.0 - 30.0)
            .copied()
            .collect();
        BreathMonitor::paper_default()
            .analyze(&window, &EmbeddedIdentity::new([1]))
            .users[&1]
            .as_ref()
            .ok()
            .and_then(|a| a.mean_rate_bpm())
            .expect("batch rate")
    };
    let mut sm = StreamingMonitor::new(
        PipelineConfig::paper_default(),
        EmbeddedIdentity::new([1]),
        30.0,
        60.0,
    )
    .unwrap();
    sm.push(reports);
    let snap = sm.snapshot_now();
    let streamed = snap.rates_bpm[&1];
    assert!(
        (streamed - batch).abs() < 0.5,
        "streaming {streamed} vs batch {batch}"
    );
}

#[test]
fn pipelined_thread_produces_live_estimates() {
    let reports = capture(50.0, 2);
    let handle = spawn_pipelined(
        PipelineConfig::paper_default(),
        EmbeddedIdentity::new([1]),
        25.0,
        10.0,
    )
    .unwrap();
    for r in &reports {
        assert!(handle.send(*r));
    }
    let snaps = handle.finish();
    assert!(snaps.len() >= 3, "only {} snapshots", snaps.len());
    let with_rates = snaps
        .iter()
        .filter(|s| s.rates_bpm.contains_key(&1))
        .count();
    assert!(with_rates >= 2, "only {with_rates} snapshots carried rates");
    for s in &snaps {
        if let Some(&bpm) = s.rates_bpm.get(&1) {
            assert!(
                (bpm - 10.0).abs() < 3.0,
                "live estimate {bpm} at t={}",
                s.time_s
            );
        }
    }
}

#[test]
fn csv_replay_reproduces_the_analysis_exactly() {
    let reports = capture(45.0, 3);
    let mut buf = Vec::new();
    write_csv(&mut buf, &reports).unwrap();
    let replayed = read_csv(buf.as_slice()).unwrap();
    assert_eq!(replayed.len(), reports.len());

    let monitor = BreathMonitor::paper_default();
    let resolver = EmbeddedIdentity::new([1]);
    let live = monitor.analyze(&reports, &resolver);
    let offline = monitor.analyze(&replayed, &resolver);
    let a = live.users[&1].as_ref().unwrap().mean_rate_bpm().unwrap();
    let b = offline.users[&1].as_ref().unwrap().mean_rate_bpm().unwrap();
    // CSV rounds floats; the estimates must agree to well under the
    // paper's 1 bpm error budget.
    assert!((a - b).abs() < 0.05, "live {a} vs replay {b}");
}

#[test]
fn mapping_table_fallback_matches_embedded_identity() {
    let reports = capture(45.0, 4);
    let monitor = BreathMonitor::paper_default();
    let embedded = monitor.analyze(&reports, &EmbeddedIdentity::new([1]));

    let mut table = MappingTable::new();
    for r in &reports {
        if r.epc.user_id() == 1 {
            table.insert(r.epc, 1, r.epc.tag_id());
        }
    }
    let mapped = monitor.analyze(&reports, &table);
    let a = embedded.users[&1]
        .as_ref()
        .unwrap()
        .mean_rate_bpm()
        .unwrap();
    let b = mapped.users[&1].as_ref().unwrap().mean_rate_bpm().unwrap();
    assert_eq!(a, b, "resolvers disagreed");
}

#[test]
fn apnea_suppresses_breathing_effort() {
    let subject = Subject::new(
        1,
        Vec3::new(2.0, 0.0, 0.0),
        Vec3::new(-1.0, 0.0, 0.0),
        Posture::Lying,
        Waveform::WithApnea {
            rate_bpm: 18.0,
            breathe_s: 25.0,
            apnea_s: 15.0,
        },
        TagSite::ALL.to_vec(),
    );
    let scenario = Scenario::builder().subject(subject).build();
    let reader = Reader::new(
        ReaderConfig::paper_default().with_seed(5),
        vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
    )
    .unwrap();
    let reports = reader.run(&ScenarioWorld::new(scenario), 80.0);
    let analysis = BreathMonitor::paper_default().analyze(&reports, &EmbeddedIdentity::new([1]));
    let user = analysis.users[&1].as_ref().expect("analysable");
    let signal = user.breath_signal.values();
    let dt = user.breath_signal.dt_s();
    let rms = |lo: f64, hi: f64| {
        let a = (lo / dt) as usize;
        let b = ((hi / dt) as usize).min(signal.len());
        let w = &signal[a..b];
        (w.iter().map(|x| x * x).sum::<f64>() / w.len() as f64).sqrt()
    };
    // Breathing effort in a mid-breathing window vs a mid-apnea window.
    let breathing = rms(10.0, 20.0);
    let apnea = rms(29.0, 37.0);
    assert!(
        apnea < breathing * 0.5,
        "apnea RMS {apnea:.2e} vs breathing {breathing:.2e}"
    );
}

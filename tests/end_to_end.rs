//! Full-stack integration tests: breathing kinematics → RF channel →
//! EPC Gen2 MAC → low-level reports → TagBreathe pipeline → rates.

use tagbreathe_suite::prelude::*;

fn capture(scenario: &Scenario, seed: u64, secs: f64) -> Vec<TagReport> {
    let reader = Reader::new(
        ReaderConfig::paper_default().with_seed(seed),
        vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
    )
    .unwrap();
    reader.run(&ScenarioWorld::new(scenario.clone()), secs)
}

fn estimate(scenario: &Scenario, reports: &[TagReport]) -> Vec<Option<f64>> {
    let ids: Vec<u64> = scenario.subjects().iter().map(|s| s.user_id()).collect();
    let analysis =
        BreathMonitor::paper_default().analyze(reports, &EmbeddedIdentity::new(ids.clone()));
    ids.iter()
        .map(|id| {
            analysis
                .users
                .get(id)
                .and_then(|r| r.as_ref().ok())
                .and_then(|a| a.mean_rate_bpm())
        })
        .collect()
}

#[test]
fn rates_recovered_across_breathing_band() {
    // The paper's Table I range: 5–20 bpm, all within ~1 bpm at 3 m.
    for (i, bpm) in [5.0, 10.0, 15.0, 20.0].into_iter().enumerate() {
        let subject = Subject::new(
            1,
            Vec3::new(3.0, 0.0, 0.0),
            Vec3::new(-1.0, 0.0, 0.0),
            Posture::Sitting,
            Waveform::Sinusoid { rate_bpm: bpm },
            TagSite::ALL.to_vec(),
        );
        let scenario = Scenario::builder().subject(subject).build();
        let reports = capture(&scenario, 100 + i as u64, 90.0);
        let got = estimate(&scenario, &reports)[0].expect("estimate");
        assert!((got - bpm).abs() < 1.0, "true {bpm}: got {got}");
    }
}

#[test]
fn distance_degrades_but_does_not_break() {
    let mut accuracies = Vec::new();
    for (i, d) in [1.0, 4.0, 6.0].into_iter().enumerate() {
        let scenario = Scenario::builder()
            .subject(Subject::paper_default(1, d))
            .build();
        let reports = capture(&scenario, 200 + i as u64, 90.0);
        let got = estimate(&scenario, &reports)[0];
        let acc = got.map(|bpm| accuracy(bpm, 10.0)).unwrap_or(0.0);
        accuracies.push(acc);
    }
    assert!(accuracies[0] > 0.95, "1 m accuracy {}", accuracies[0]);
    assert!(accuracies[2] > 0.80, "6 m accuracy {}", accuracies[2]);
}

#[test]
fn four_users_with_distinct_rates_are_separated() {
    let rates = [6.0, 10.0, 14.0, 18.0];
    let scenario = Scenario::builder()
        .users_side_by_side(4, 4.0, &rates)
        .build();
    let reports = capture(&scenario, 300, 120.0);
    let got = estimate(&scenario, &reports);
    for (want, est) in rates.iter().zip(&got) {
        let est = est.expect("every user estimated");
        assert!((est - want).abs() < 1.5, "want {want}, got {est}");
    }
}

#[test]
fn contending_tags_slow_but_do_not_corrupt() {
    let base = Subject::paper_default(1, 2.0);
    let clean = Scenario::builder().subject(base.clone()).build();
    let busy = Scenario::builder()
        .subject(base)
        .contending_items(30)
        .build();
    let clean_reports = capture(&clean, 400, 90.0);
    let busy_reports = capture(&busy, 401, 90.0);
    // Read rate on the worn tags must drop under contention...
    let worn = |rs: &[TagReport]| rs.iter().filter(|r| r.epc.user_id() == 1).count();
    assert!(worn(&busy_reports) < worn(&clean_reports) / 2);
    // ...while the estimate stays close.
    let bpm = estimate(&busy, &busy_reports)[0].expect("estimate under contention");
    assert!((bpm - 10.0).abs() < 2.0, "got {bpm}");
}

#[test]
fn orientation_beyond_ninety_degrees_blocks_monitoring() {
    let antenna = Vec3::new(0.0, 0.0, 1.0);
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(1, 4.0).facing_away_from(antenna, 160.0))
        .build();
    let reports = capture(&scenario, 500, 30.0);
    assert!(
        reports.is_empty() || estimate(&scenario, &reports)[0].is_none(),
        "a fully shadowed user must not be monitored"
    );
}

#[test]
fn postures_all_work() {
    for (i, posture) in [Posture::Sitting, Posture::Standing, Posture::Lying]
        .into_iter()
        .enumerate()
    {
        let subject = Subject::new(
            1,
            Vec3::new(3.0, 0.0, 0.0),
            Vec3::new(-1.0, 0.0, 0.0),
            posture,
            Waveform::Sinusoid { rate_bpm: 12.0 },
            TagSite::ALL.to_vec(),
        );
        let scenario = Scenario::builder().subject(subject).build();
        let reports = capture(&scenario, 600 + i as u64, 90.0);
        let bpm = estimate(&scenario, &reports)[0].expect("estimate");
        assert!((bpm - 12.0).abs() < 1.2, "{posture:?}: got {bpm}");
    }
}

#[test]
fn fir_filter_configuration_is_equivalent_end_to_end() {
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(1, 3.0))
        .build();
    let reports = capture(&scenario, 700, 90.0);
    let mut cfg = PipelineConfig::paper_default();
    cfg.filter = FilterKind::Fir { taps: 129 };
    let analysis = BreathMonitor::new(cfg)
        .unwrap()
        .analyze(&reports, &EmbeddedIdentity::new([1]));
    let bpm = analysis.users[&1]
        .as_ref()
        .ok()
        .and_then(|a| a.mean_rate_bpm())
        .expect("FIR estimate");
    assert!((bpm - 10.0).abs() < 1.0, "FIR path got {bpm}");
}

#[test]
fn lower_tx_power_shrinks_range() {
    // Table I sweeps 15–30 dBm: at 15 dBm a 4 m user becomes unreadable.
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(1, 4.0))
        .build();
    let mut config = ReaderConfig::paper_default().with_seed(800);
    config.link = LinkConfig::paper_default().with_tx_power(rfchannel::units::Dbm(15.0));
    let reader = Reader::new(
        config,
        vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
    )
    .unwrap();
    let weak = reader.run(&ScenarioWorld::new(scenario.clone()), 20.0);
    let strong = capture(&scenario, 800, 20.0);
    assert!(
        weak.len() < strong.len() / 10,
        "15 dBm: {} reads vs 30 dBm: {}",
        weak.len(),
        strong.len()
    );
}

#[test]
fn opposing_antennas_cover_back_to_back_users() {
    // The paper: "a commodity reader can connect multiple antennas to
    // ensure line-of-sight paths to the tags". Two users stand back to
    // back; each blocks one antenna's path with their body, so neither is
    // monitorable from a single port — but the round-robin pair covers
    // both, and per-user antenna selection picks the right port for each.
    let east = Antenna::new(
        Vec3::new(6.0, 0.0, 1.0),
        Vec3::new(-1.0, 0.0, 0.0),
        8.5,
        65.0,
        25.0,
    );
    let west = Antenna::paper_default(Vec3::new(-2.0, 0.0, 1.0));
    let reader = Reader::new(
        ReaderConfig::paper_default().with_seed(950),
        vec![west, east],
    )
    .unwrap();

    // User 1 at x=2 faces west (toward the west antenna); user 2 at x=2.6
    // faces east. Each has their back to the other antenna.
    let user1 = Subject::new(
        1,
        Vec3::new(2.0, 0.0, 0.0),
        Vec3::new(-1.0, 0.0, 0.0),
        Posture::Standing,
        Waveform::Sinusoid { rate_bpm: 9.0 },
        TagSite::ALL.to_vec(),
    );
    let user2 = Subject::new(
        2,
        Vec3::new(2.6, 0.0, 0.0),
        Vec3::new(1.0, 0.0, 0.0),
        Posture::Standing,
        Waveform::Sinusoid { rate_bpm: 15.0 },
        TagSite::ALL.to_vec(),
    );
    let scenario = Scenario::builder().subject(user1).subject(user2).build();
    let reports = reader.run(&ScenarioWorld::new(scenario), 120.0);

    let analysis = BreathMonitor::paper_default().analyze(&reports, &EmbeddedIdentity::new([1, 2]));
    let a1 = analysis.users[&1].as_ref().expect("user 1 covered");
    let a2 = analysis.users[&2].as_ref().expect("user 2 covered");
    // Each user is served by a different port.
    assert_ne!(a1.antenna_port, a2.antenna_port, "both users on one port");
    let bpm1 = a1.mean_rate_bpm().expect("rate 1");
    let bpm2 = a2.mean_rate_bpm().expect("rate 2");
    assert!((bpm1 - 9.0).abs() < 1.5, "user 1: {bpm1}");
    assert!((bpm2 - 15.0).abs() < 1.5, "user 2: {bpm2}");
}

#[test]
fn multi_antenna_selects_a_working_port() {
    // Antenna 1 is aimed away from the user; antenna 2 covers them. The
    // per-user antenna-selection rule must pick port 2.
    let mut cfg = ReaderConfig::paper_default().with_seed(900);
    cfg.dwell_s = 0.2;
    let away = Antenna::new(
        Vec3::new(0.0, -3.0, 1.0),
        Vec3::new(0.0, -1.0, 0.0),
        8.5,
        65.0,
        25.0,
    );
    let covering = Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0));
    let reader = Reader::new(cfg, vec![away, covering]).unwrap();
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(1, 3.0))
        .build();
    let reports = reader.run(&ScenarioWorld::new(scenario), 90.0);
    let analysis = BreathMonitor::paper_default().analyze(&reports, &EmbeddedIdentity::new([1]));
    let user = analysis.users[&1].as_ref().expect("analysable");
    assert_eq!(user.antenna_port, 2, "picked the wrong antenna");
    let bpm = user.mean_rate_bpm().expect("rate");
    assert!((bpm - 10.0).abs() < 1.5, "got {bpm}");
}

#[test]
fn merge_all_antennas_strategy_works_with_split_coverage() {
    use tagbreathe_suite::tagbreathe::AntennaStrategy;
    // Two side-facing antennas each see the user obliquely; merging the
    // two half-rate streams must recover the rate as well as the best
    // single port does.
    let left = Antenna::new(
        Vec3::new(0.0, -1.5, 1.0),
        Vec3::new(1.0, 0.5, 0.0),
        8.5,
        65.0,
        25.0,
    );
    let right = Antenna::new(
        Vec3::new(0.0, 1.5, 1.0),
        Vec3::new(1.0, -0.5, 0.0),
        8.5,
        65.0,
        25.0,
    );
    let reader = Reader::new(
        ReaderConfig::paper_default().with_seed(1000),
        vec![left, right],
    )
    .unwrap();
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(1, 3.5))
        .build();
    let reports = reader.run(&ScenarioWorld::new(scenario), 90.0);

    let mut merge_cfg = PipelineConfig::paper_default();
    merge_cfg.antenna = AntennaStrategy::MergeAll;
    let merged = BreathMonitor::new(merge_cfg)
        .unwrap()
        .analyze(&reports, &EmbeddedIdentity::new([1]));
    let merged_user = merged.users[&1].as_ref().expect("merged analysable");
    let merged_bpm = merged_user.mean_rate_bpm().expect("merged rate");
    assert!((merged_bpm - 10.0).abs() < 1.0, "merged {merged_bpm}");

    let best = BreathMonitor::paper_default().analyze(&reports, &EmbeddedIdentity::new([1]));
    let best_user = best.users[&1].as_ref().expect("best-port analysable");
    // Merging consumes reports from both ports.
    assert!(merged_user.report_count > best_user.report_count);
}

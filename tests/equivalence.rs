//! Batch-vs-streaming equivalence suite.
//!
//! `BreathMonitor::analyze` (batch) and `StreamingMonitor::push` (real
//! time) are both thin drivers over the same per-user operator graph
//! (`tagbreathe::operators::UserStreamState`), so feeding the same
//! `TagReport` trace through both paths must produce the same breathing
//! rates — the refactor's central invariant. The tolerance of 0.1 bpm
//! absorbs nothing but floating-point summation-order noise inside fusion
//! bins; any structural divergence shows up orders of magnitude larger.

use tagbreathe_suite::prelude::*;

const EQUIV_TOL_BPM: f64 = 0.1;

fn capture(secs: f64, seed: u64) -> Vec<TagReport> {
    let scenario = Scenario::builder()
        .subject(Subject::paper_default(1, 3.0))
        .build();
    let reader = Reader::new(
        ReaderConfig::paper_default().with_seed(seed),
        vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
    )
    .unwrap();
    reader.run(&ScenarioWorld::new(scenario), secs)
}

fn batch_rate(cfg: &PipelineConfig, reports: &[TagReport], ids: &[u64], user: u64) -> Option<f64> {
    BreathMonitor::new(cfg.clone())
        .unwrap()
        .analyze(reports, &EmbeddedIdentity::new(ids.to_vec()))
        .users
        .get(&user)?
        .as_ref()
        .ok()?
        .mean_rate_bpm()
}

/// Streams the whole trace with a window wider than the trace (so nothing
/// is evicted) and takes one final snapshot — the configuration in which
/// streaming must reproduce batch.
fn stream_rate(cfg: &PipelineConfig, reports: &[TagReport], ids: &[u64], user: u64) -> Option<f64> {
    let mut sm = StreamingMonitor::new(
        cfg.clone(),
        EmbeddedIdentity::new(ids.to_vec()),
        1.0e4,
        1.0e4,
    )
    .unwrap();
    sm.push(reports.iter().copied());
    sm.snapshot_now().rates_bpm.get(&user).copied()
}

fn assert_equivalent(cfg: &PipelineConfig, reports: &[TagReport], ids: &[u64], user: u64) {
    let batch = batch_rate(cfg, reports, ids, user).expect("batch produced no rate");
    let stream = stream_rate(cfg, reports, ids, user).expect("streaming produced no rate");
    assert!(
        (batch - stream).abs() < EQUIV_TOL_BPM,
        "batch {batch} bpm vs streaming {stream} bpm ({:?}/{:?})",
        cfg.preprocess,
        cfg.antenna,
    );
}

#[test]
fn equivalence_on_default_configuration() {
    let reports = capture(60.0, 11);
    assert_equivalent(&PipelineConfig::paper_default(), &reports, &[1], 1);
}

#[test]
fn equivalence_across_all_strategy_combinations() {
    let reports = capture(60.0, 12);
    for preprocess in [
        PreprocessKind::IncrementBinning,
        PreprocessKind::ChannelTrackMerge,
    ] {
        for antenna in [AntennaStrategy::BestPort, AntennaStrategy::MergeAll] {
            let mut cfg = PipelineConfig::paper_default();
            cfg.preprocess = preprocess;
            cfg.antenna = antenna;
            assert_equivalent(&cfg, &reports, &[1], 1);
        }
    }
}

#[test]
fn equivalence_with_multiple_users() {
    let scenario = Scenario::builder()
        .users_side_by_side(2, 3.0, &[8.0, 16.0])
        .build();
    let ids: Vec<u64> = scenario.subjects().iter().map(|s| s.user_id()).collect();
    let reports = Reader::new(
        ReaderConfig::paper_default().with_seed(13),
        vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
    )
    .unwrap()
    .run(&ScenarioWorld::new(scenario), 90.0);
    for &user in &ids {
        assert_equivalent(&PipelineConfig::paper_default(), &reports, &ids, user);
    }
}

/// Synthetic trace with hard channel-hop seams: the reader dwells on one
/// channel for 200 reads, then hops (per-channel phase offsets differ, as
/// in paper Figure 4). Both paths must stay hop-immune and agree.
fn hopping_trace() -> Vec<TagReport> {
    let cfg = PipelineConfig::paper_default();
    let n = 32 * 120; // 32 Hz for 120 s
    (0..n)
        .map(|i| {
            let t = f64::from(i) / 32.0;
            let channel = ((i / 200) % 10) as u16;
            let lambda = cfg.plan.wavelength_m(channel as usize);
            // 5 mm breathing displacement at 12 bpm plus a per-channel
            // circuit offset that would wreck a naive unwrap across hops.
            let d = 0.005 * (2.0 * std::f64::consts::PI * 0.2 * t).sin();
            let offset = f64::from(channel) * 1.3;
            TagReport {
                time_s: t,
                epc: Epc96::monitor(1, 0),
                antenna_port: 1,
                channel_index: channel,
                phase_rad: (4.0 * std::f64::consts::PI * d / lambda + offset)
                    .rem_euclid(2.0 * std::f64::consts::PI),
                rssi_dbm: -55.0,
                doppler_hz: 0.0,
            }
        })
        .collect()
}

#[test]
fn equivalence_across_channel_hop_seams() {
    let reports = hopping_trace();
    let cfg = PipelineConfig::paper_default();
    let batch = batch_rate(&cfg, &reports, &[1], 1).expect("batch rate");
    let stream = stream_rate(&cfg, &reports, &[1], 1).expect("streaming rate");
    assert!(
        (batch - stream).abs() < EQUIV_TOL_BPM,
        "batch {batch} vs streaming {stream}"
    );
    assert!((batch - 12.0).abs() < 1.0, "hop-seam estimate {batch} bpm");
}

#[test]
fn equivalence_with_out_of_order_timestamps() {
    // Perturb the trace: swap adjacent reports at regular intervals. The
    // batch path re-sorts; the incremental preprocessor must absorb the
    // reversed pairs (dropping the affected increments, never panicking)
    // without moving the estimate.
    let mut reports = capture(60.0, 14);
    let mut i = 0;
    while i + 1 < reports.len() {
        reports.swap(i, i + 1);
        i += 50;
    }
    assert_equivalent(&PipelineConfig::paper_default(), &reports, &[1], 1);
}

#[test]
fn ten_thousand_distinct_tags_keep_state_bounded() {
    // Satellite guarantee: per-(tag, channel) state is evicted past the
    // gap/window horizon, so an adversarial stream of 10 000 distinct tag
    // IDs cannot grow memory without bound.
    let mut sm = StreamingMonitor::new(
        PipelineConfig::paper_default(),
        EmbeddedIdentity::new([1]),
        5.0,
        5.0,
    )
    .unwrap();
    let mut peak_tags = 0usize;
    let mut peak_cells = 0usize;
    for i in 0..10_000u32 {
        let t = f64::from(i) * 0.01; // one new tag every 10 ms, 100 s total
        let report = TagReport {
            time_s: t,
            epc: Epc96::monitor(1, i),
            antenna_port: 1,
            channel_index: (i % 10) as u16,
            phase_rad: 0.0,
            rssi_dbm: -60.0,
            doppler_hz: 0.0,
        };
        sm.push(std::iter::once(report));
        peak_tags = peak_tags.max(sm.tracked_tags());
        peak_cells = peak_cells.max(sm.buffered());
    }
    // The 5 s gap/window horizon holds ~500 live tags; eviction cadence
    // can at most double that transiently. 10 000 would mean no eviction.
    assert!(peak_tags < 1_500, "peak tag slots {peak_tags}");
    assert!(peak_cells < 5_000, "peak state cells {peak_cells}");
    assert!(
        sm.tracked_tags() < 1_200,
        "final tag slots {}",
        sm.tracked_tags()
    );
}

//! Integration tests of the `tagbreathe-cli` binary: the
//! simulate → analyze round trip a downstream user would run.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tagbreathe-cli"))
}

#[test]
fn help_prints_usage() {
    let out = cli().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("simulate"));
    assert!(text.contains("analyze"));
    assert!(text.contains("live"));
}

#[test]
fn no_arguments_is_an_error_with_usage() {
    let out = cli().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("simulate"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = cli().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn simulate_then_analyze_round_trip() {
    let dir = std::env::temp_dir();
    let trace = dir.join(format!("tagbreathe_cli_test_{}.csv", std::process::id()));
    let trace_str = trace.to_str().unwrap();

    let out = cli()
        .args([
            "simulate",
            "--users",
            "2",
            "--distance",
            "3",
            "--rates",
            "10,15",
            "--duration",
            "60",
            "--seed",
            "7",
            "--out",
            trace_str,
        ])
        .output()
        .expect("simulate runs");
    assert!(
        out.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    let out = cli()
        .args(["analyze", trace_str])
        .output()
        .expect("analyze runs");
    assert!(
        out.status.success(),
        "analyze failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Both users estimated near their metronome rates.
    assert!(text.contains("2 user(s)"), "{text}");
    let found_10 =
        text.contains("10.0 bpm") || text.contains(" 9.9 bpm") || text.contains("10.1 bpm");
    let found_15 =
        text.contains("15.0 bpm") || text.contains("14.9 bpm") || text.contains("15.1 bpm");
    assert!(found_10, "user at 10 bpm not found:\n{text}");
    assert!(found_15, "user at 15 bpm not found:\n{text}");
    assert!(text.contains("pattern"), "{text}");
    assert!(text.contains("quality"), "{text}");

    std::fs::remove_file(&trace).ok();
}

#[test]
fn simulate_validates_inputs() {
    let out = cli()
        .args(["simulate", "--users", "0", "--out", "/tmp/never.csv"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let out = cli()
        .args(["simulate", "--rates", "99", "--out", "/tmp/never.csv"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let out = cli().args(["simulate"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}

#[test]
fn analyze_rejects_missing_and_empty_traces() {
    let out = cli()
        .args(["analyze", "/nonexistent/trace.csv"])
        .output()
        .expect("runs");
    assert!(!out.status.success());

    let dir = std::env::temp_dir();
    let empty = dir.join(format!("tagbreathe_cli_empty_{}.csv", std::process::id()));
    std::fs::write(
        &empty,
        "time_s,epc,antenna_port,channel_index,phase_rad,rssi_dbm,doppler_hz\n",
    )
    .unwrap();
    let out = cli()
        .args(["analyze", empty.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    std::fs::remove_file(&empty).ok();
}

#[test]
fn metrics_rejects_unknown_format_with_usage() {
    let out = cli()
        .args(["metrics", "--duration", "10", "--format", "xml"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("--format must be prom or json"), "{text}");
    // The usage banner accompanies the error so the fix is discoverable.
    assert!(text.contains("metrics [--users N]"), "{text}");
}

#[test]
fn trace_writes_validated_chrome_trace_and_bundle() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let trace = dir.join(format!("tagbreathe_cli_trace_{pid}.json"));
    let bundle = dir.join(format!("tagbreathe_cli_bundle_{pid}.json"));
    let out = cli()
        .args([
            "trace",
            "--rate",
            "15",
            "--duration",
            "90",
            "--seed",
            "5",
            "--waveform",
            "apnea",
            "--out",
            trace.to_str().unwrap(),
            "--bundle",
            bundle.to_str().unwrap(),
        ])
        .output()
        .expect("trace runs");
    assert!(
        out.status.success(),
        "trace failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bundle(s) captured"), "{stderr}");

    let chrome = std::fs::read_to_string(&trace).expect("trace written");
    tagbreathe_suite::obs::json::validate(&chrome).expect("chrome trace is valid JSON");
    assert!(chrome.contains("\"traceEvents\""));
    let dump = std::fs::read_to_string(&bundle).expect("bundle written");
    tagbreathe_suite::obs::json::validate(&dump).expect("bundle is valid JSON");
    assert!(dump.contains("\"anomaly\""), "{dump}");

    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&bundle).ok();
}

#[test]
fn trace_requires_out_and_validates_waveform() {
    let out = cli().args(["trace"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
    let out = cli()
        .args(["trace", "--waveform", "square", "--out", "/tmp/never.json"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("sine or apnea"));
}

#[test]
fn serve_then_feed_round_trip() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let trace = dir.join(format!("tagbreathe_cli_feed_{pid}.csv"));
    let trace_str = trace.to_str().unwrap().to_string();

    let out = cli()
        .args([
            "simulate",
            "--users",
            "1",
            "--distance",
            "3",
            "--rates",
            "12",
            "--duration",
            "20",
            "--seed",
            "9",
            "--out",
            &trace_str,
        ])
        .output()
        .expect("simulate runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Ephemeral ports so parallel test runs never collide; the server
    // prints the bound addresses on stdout before serving.
    let mut server = cli()
        .args([
            "serve",
            "--ingest",
            "127.0.0.1:0",
            "--http",
            "127.0.0.1:0",
            "--duration",
            "30",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("serve starts");
    let mut addrs = String::new();
    {
        use std::io::BufRead;
        let stdout = server.stdout.take().expect("piped stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        for _ in 0..2 {
            addrs.push_str(&lines.next().expect("addr line").expect("addr line"));
            addrs.push('\n');
        }
    }
    let ingest = addrs
        .lines()
        .find_map(|l| l.strip_prefix("ingest "))
        .expect("ingest address printed")
        .to_string();

    let out = cli()
        .args(["feed", &trace_str, "--addr", &ingest, "--reader", "3"])
        .output()
        .expect("feed runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "feed failed: {stderr}");
    assert!(stderr.contains("as reader 3"), "{stderr}");

    server.kill().ok();
    server.wait().ok();
    std::fs::remove_file(&trace).ok();
}

#[test]
fn feed_validates_inputs() {
    let out = cli().args(["feed"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("trace file"));
    let out = cli()
        .args(["feed", "/nonexistent/trace.csv"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--addr"));
}

#[test]
fn live_dashboard_emits_snapshots() {
    let out = cli()
        .args(["live", "--rate", "12", "--duration", "45", "--seed", "3"])
        .output()
        .expect("live runs");
    assert!(
        out.status.success(),
        "live failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Snapshots at t=5..45 plus a final sparkline.
    assert!(text.matches("t=").count() >= 5, "{text}");
    assert!(text.contains("breath:"), "{text}");
}

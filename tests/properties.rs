//! Property-based tests of cross-crate invariants.
//!
//! Formerly `proptest`-driven; now dependency-free deterministic sweeps.
//! Each property draws its cases from a seeded [`prng::Xoshiro256`]
//! stream, so every run exercises the same (broad) slice of the input
//! space and failures are exactly reproducible. Helper `uniform` maps
//! the generator onto an arbitrary closed range.

use dsp::phase::{wrap_to_2pi, wrap_to_pi};
use prng::{Rng, Xoshiro256};
use tagbreathe_suite::prelude::*;

/// Number of cases per property — matches the old proptest budget.
const CASES: usize = 64;

/// Uniform draw in `[lo, hi)`.
fn uniform(rng: &mut Xoshiro256, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen_f64()
}

/// EPC encode/parse round-trips for arbitrary identities.
#[test]
fn epc_roundtrip() {
    let mut rng = Xoshiro256::seed_from_u64(0xE9C0);
    for _ in 0..CASES {
        let user = rng.next_u64();
        let tag = rng.next_u64() as u32;
        let epc = Epc96::monitor(user, tag);
        let parsed: Epc96 = epc.to_string().parse().expect("EPC text round-trip");
        assert_eq!(parsed, epc);
        assert_eq!(Epc96::from_bytes(epc.to_bytes()), epc);
    }
}

/// Wrapping identities hold for arbitrary angles.
#[test]
fn phase_wrapping_invariants() {
    let mut rng = Xoshiro256::seed_from_u64(0x9A5E);
    for _ in 0..CASES {
        let theta = uniform(&mut rng, -1e4, 1e4);
        let w = wrap_to_2pi(theta);
        assert!((0.0..2.0 * std::f64::consts::PI).contains(&w));
        let d = wrap_to_pi(theta);
        assert!(d > -std::f64::consts::PI - 1e-9);
        assert!(d <= std::f64::consts::PI + 1e-9);
        // Both agree with theta modulo 2π.
        let tau = 2.0 * std::f64::consts::PI;
        assert!(((w - theta) / tau - ((w - theta) / tau).round()).abs() < 1e-6);
        assert!(((d - theta) / tau - ((d - theta) / tau).round()).abs() < 1e-6);
    }
}

/// The accuracy metric (Eq. 8) is 1 iff exact, symmetric in error sign,
/// and decreasing in |error|.
#[test]
fn accuracy_metric_properties() {
    let mut rng = Xoshiro256::seed_from_u64(0xACC);
    for _ in 0..CASES {
        let r = uniform(&mut rng, 1.0, 40.0);
        let err = uniform(&mut rng, 0.0, 20.0);
        assert!((accuracy(r, r) - 1.0).abs() < 1e-12);
        let over = accuracy(r + err, r);
        let under = accuracy(r - err, r);
        assert!((over - under).abs() < 1e-9);
        assert!(over <= 1.0 + 1e-12);
        let worse = accuracy(r + err + 1.0, r);
        assert!(worse <= over);
    }
}

/// The link budget is monotone: more distance or blockage never helps.
#[test]
fn link_budget_monotonicity() {
    let mut rng = Xoshiro256::seed_from_u64(0x117);
    for _ in 0..CASES {
        let d = uniform(&mut rng, 0.5, 10.0);
        let extra = uniform(&mut rng, 0.1, 3.0);
        let blockage = uniform(&mut rng, 0.0, 20.0);
        let cfg = LinkConfig::paper_default();
        let near = LinkBudget::evaluate(&cfg, d, 0.3276, 8.5, blockage, 0.0);
        let far = LinkBudget::evaluate(&cfg, d + extra, 0.3276, 8.5, blockage, 0.0);
        assert!(far.forward_margin <= near.forward_margin);
        assert!(far.read_probability(&cfg) <= near.read_probability(&cfg) + 1e-12);
        let blocked = LinkBudget::evaluate(&cfg, d, 0.3276, 8.5, blockage + 5.0, 0.0);
        assert!(blocked.forward_margin < near.forward_margin);
    }
}

/// Phase of Eq. 1 stays in the principal range and is λ/2-periodic in
/// distance.
#[test]
fn phase_model_periodicity() {
    let mut rng = Xoshiro256::seed_from_u64(0x9E2);
    for _ in 0..CASES {
        let d = uniform(&mut rng, 0.1, 20.0);
        let offset = uniform(&mut rng, 0.0, std::f64::consts::TAU);
        let lambda = 0.3276;
        let p = rfchannel::observation::ideal_phase(d, lambda, offset);
        assert!((0.0..2.0 * std::f64::consts::PI).contains(&p));
        let q = rfchannel::observation::ideal_phase(d + lambda / 2.0, lambda, offset);
        assert!((p - q).abs() < 1e-6 || (p - q).abs() > 2.0 * std::f64::consts::PI - 1e-6);
    }
}

/// Waveform excursions stay in [-1, 1] for any time and rate.
#[test]
fn waveform_bounds() {
    let mut rng = Xoshiro256::seed_from_u64(0x3AFE);
    for _ in 0..CASES {
        let t = uniform(&mut rng, 0.0, 1e4);
        let rate = uniform(&mut rng, 1.0, 40.0);
        let seed = rng.next_u64();
        let w = Waveform::realistic(rate, seed);
        let x = w.excursion(t);
        assert!((-1.001..=1.001).contains(&x));
        let s = Waveform::Sinusoid { rate_bpm: rate };
        assert!(s.excursion(t).abs() <= 1.0 + 1e-12);
    }
}

/// Q adaptation never leaves [0, 15].
#[test]
fn q_state_bounds() {
    let mut rng = Xoshiro256::seed_from_u64(0x0B5);
    for _ in 0..CASES {
        let mut q = epcgen2::q_algorithm::QState::standard_default();
        let ops = rng.gen_range(0..200);
        for _ in 0..ops {
            match rng.gen_range(0..3) {
                0 => q.on_empty(),
                1 => q.on_single(),
                _ => q.on_collision(),
            }
            assert!((0.0..=15.0).contains(&q.qfp()));
            assert!(q.current_q() <= 15);
        }
    }
}

/// Fusion is linear: scaling every increment scales the trajectory.
#[test]
fn fusion_linearity() {
    use dsp::resample::Sample;
    use tagbreathe::fusion::fuse_displacement;
    let mut rng = Xoshiro256::seed_from_u64(0xF051);
    for _ in 0..CASES {
        let n = rng.gen_range(2..50);
        let values: Vec<f64> = (0..n).map(|_| uniform(&mut rng, -1.0, 1.0)).collect();
        let k = uniform(&mut rng, 0.1, 5.0);
        let stream: Vec<Sample> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| Sample::new(i as f64 * 0.05, v))
            .collect();
        let scaled: Vec<Sample> = stream
            .iter()
            .map(|s| Sample::new(s.time, s.value * k))
            .collect();
        let a = fuse_displacement(&[stream], 0.25, None).expect("fuse unscaled");
        let b = fuse_displacement(&[scaled], 0.25, None).expect("fuse scaled");
        for (x, y) in a.values().iter().zip(b.values()) {
            assert!((x * k - y).abs() < 1e-9);
        }
    }
}

/// The FFT low-pass never increases signal energy.
#[test]
fn lowpass_is_contractive() {
    use dsp::filter::FftLowPass;
    let mut rng = Xoshiro256::seed_from_u64(0x10F);
    for _ in 0..CASES {
        let n = rng.gen_range(64..256);
        let values: Vec<f64> = (0..n).map(|_| uniform(&mut rng, -10.0, 10.0)).collect();
        let f = FftLowPass::breathing_band(16.0).expect("breathing band");
        let out = f.filter(&values);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let in_energy: f64 = values.iter().map(|x| (x - mean) * (x - mean)).sum();
        let out_energy: f64 = out.iter().map(|x| x * x).sum();
        assert!(out_energy <= in_energy * (1.0 + 1e-9));
    }
}

/// Hop sequences are permutations for any seed.
#[test]
fn hop_sequence_permutation() {
    let mut rng = Xoshiro256::seed_from_u64(0x40B);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let seq = rfchannel::channel_plan::HopSequence::paper_default(seed);
        let mut order = seq.order().to_vec();
        order.sort_unstable();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }
}

/// MAC conservation: in any inventory round, every participant appears
/// at most once as Read/Failed, never both, and slot-event offsets are
/// consistent with the declared duration.
#[test]
fn inventory_round_conservation() {
    use epcgen2::inventory::{run_round, Participant, SlotEvent, SlotTiming};
    use epcgen2::q_algorithm::QState;
    let mut rng = Xoshiro256::seed_from_u64(0x1C0);
    for _ in 0..CASES {
        let n = rng.gen_range(0..40);
        let p = rng.gen_f64();
        let seed = rng.next_u64();
        let mut round_rng = Xoshiro256::seed_from_u64(seed);
        let mut q = QState::standard_default();
        let participants: Vec<Participant> = (0..n)
            .map(|i| Participant {
                tag_index: i,
                read_probability: p,
            })
            .collect();
        let out = run_round(
            &mut round_rng,
            &mut q,
            &participants,
            &SlotTiming::paper_default(),
        );
        let mut seen = std::collections::HashSet::new();
        let mut last_offset = 0u64;
        for &(offset, event) in &out.events {
            assert!(offset >= last_offset);
            assert!(offset < out.duration_us);
            last_offset = offset;
            match event {
                SlotEvent::Read { tag_index } | SlotEvent::Failed { tag_index } => {
                    assert!(tag_index < n, "phantom tag {tag_index}");
                    assert!(seen.insert(tag_index), "tag {tag_index} singulated twice");
                }
                _ => {}
            }
        }
        // Never more reads than tags.
        assert!(out.reads().count() <= n);
    }
}

/// Select masks match exactly the EPCs they were built from.
#[test]
fn select_mask_soundness() {
    use epcgen2::select::SelectMask;
    let mut rng = Xoshiro256::seed_from_u64(0x5E1);
    for _ in 0..CASES {
        let user = rng.next_u64();
        let tag = rng.next_u64() as u32;
        let other = rng.next_u64();
        let mask = SelectMask::for_user(user);
        assert!(mask.matches(Epc96::monitor(user, tag)));
        if other != user {
            assert!(!mask.matches(Epc96::monitor(other, tag)));
        }
    }
}

/// LLRP encode/decode round-trips arbitrary reports to within wire
/// resolution.
#[test]
fn llrp_roundtrip() {
    use epcgen2::llrp::{decode_ro_access_report, encode_ro_access_report};
    let mut rng = Xoshiro256::seed_from_u64(0x11F);
    for _ in 0..CASES {
        let report = TagReport {
            time_s: uniform(&mut rng, 0.0, 1e5),
            epc: Epc96::monitor(rng.next_u64(), rng.next_u64() as u32),
            antenna_port: rng.gen_range(1..5) as u8,
            channel_index: rng.gen_range(0..50) as u16,
            phase_rad: uniform(&mut rng, 0.0, std::f64::consts::TAU),
            rssi_dbm: uniform(&mut rng, -90.0, -20.0),
            doppler_hz: uniform(&mut rng, -100.0, 100.0),
        };
        let decoded =
            decode_ro_access_report(&encode_ro_access_report(&[report], 1)).expect("LLRP decode");
        assert_eq!(decoded.len(), 1);
        let d = decoded[0];
        assert_eq!(d.epc, report.epc);
        assert_eq!(d.antenna_port, report.antenna_port);
        assert_eq!(d.channel_index, report.channel_index);
        assert!((d.time_s - report.time_s).abs() < 1e-6);
        assert!((d.phase_rad - report.phase_rad).abs() <= 2.0 * std::f64::consts::PI / 4096.0);
        assert!((d.rssi_dbm - report.rssi_dbm).abs() <= 0.005 + 1e-9);
        assert!((d.doppler_hz - report.doppler_hz).abs() <= 1.0 / 32.0 + 1e-9);
    }
}

/// Gen2 link profiles always derive ordered slot timings.
#[test]
fn link_profile_timing_ordering() {
    use epcgen2::timing::LinkProfile;
    let mut rng = Xoshiro256::seed_from_u64(0x717);
    for _ in 0..CASES {
        let profile = LinkProfile {
            tari_us: uniform(&mut rng, 6.25, 25.0),
            blf_khz: uniform(&mut rng, 40.0, 640.0),
            miller_m: [1u8, 2, 4, 8][rng.gen_range(0..4)],
            round_overhead_us: 1_000,
        };
        let t = profile.slot_timing().expect("profile drawn in-range");
        assert!(t.empty_us < t.collision_us);
        assert!(t.collision_us < t.success_us);
        assert!(t.failed_us <= t.success_us);
    }
}

/// Whole-pipeline robustness: arbitrary (valid) single-user scenarios
/// never panic, and when an estimate is produced it lies in the
/// physically configured band.
#[test]
fn pipeline_never_panics_and_estimates_are_plausible() {
    let mut rng = Xoshiro256::seed_from_u64(0x919);
    // The heavy whole-pipeline sweep keeps the old 6-case budget.
    for _ in 0..6 {
        let distance = uniform(&mut rng, 1.0, 6.0);
        let rate = uniform(&mut rng, 6.0, 20.0);
        let n_tags = rng.gen_range(1..4);
        let seed = rng.gen_range(0..1000) as u64;
        let sites = TagSite::ALL[..n_tags].to_vec();
        let subject = Subject::new(
            1,
            Vec3::new(distance, 0.0, 0.0),
            Vec3::new(-1.0, 0.0, 0.0),
            Posture::Sitting,
            Waveform::Sinusoid { rate_bpm: rate },
            sites,
        );
        let scenario = Scenario::builder().subject(subject).build();
        let reader = Reader::new(
            ReaderConfig::paper_default().with_seed(seed),
            vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
        )
        .expect("reader config");
        let reports = reader.run(&ScenarioWorld::new(scenario), 40.0);
        let analysis =
            BreathMonitor::paper_default().analyze(&reports, &EmbeddedIdentity::new([1]));
        if let Some(Ok(user)) = analysis.users.get(&1).map(|r| r.as_ref()) {
            if let Some(bpm) = user.mean_rate_bpm() {
                assert!(bpm > 0.0 && bpm < 45.0, "estimate {bpm} out of band");
            }
        }
    }
}

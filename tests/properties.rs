//! Property-based tests of cross-crate invariants.

use dsp::phase::{wrap_to_2pi, wrap_to_pi};
use proptest::prelude::*;
use tagbreathe_suite::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// EPC encode/parse round-trips for arbitrary identities.
    #[test]
    fn epc_roundtrip(user in any::<u64>(), tag in any::<u32>()) {
        let epc = Epc96::monitor(user, tag);
        let parsed: Epc96 = epc.to_string().parse().unwrap();
        prop_assert_eq!(parsed, epc);
        prop_assert_eq!(Epc96::from_bytes(epc.to_bytes()), epc);
    }

    /// Wrapping identities hold for arbitrary angles.
    #[test]
    fn phase_wrapping_invariants(theta in -1e4f64..1e4) {
        let w = wrap_to_2pi(theta);
        prop_assert!((0.0..2.0 * std::f64::consts::PI).contains(&w));
        let d = wrap_to_pi(theta);
        prop_assert!(d > -std::f64::consts::PI - 1e-9);
        prop_assert!(d <= std::f64::consts::PI + 1e-9);
        // Both agree with theta modulo 2π.
        let tau = 2.0 * std::f64::consts::PI;
        prop_assert!(((w - theta) / tau - ((w - theta) / tau).round()).abs() < 1e-6);
        prop_assert!(((d - theta) / tau - ((d - theta) / tau).round()).abs() < 1e-6);
    }

    /// The accuracy metric (Eq. 8) is 1 iff exact, symmetric in error sign,
    /// and decreasing in |error|.
    #[test]
    fn accuracy_metric_properties(r in 1.0f64..40.0, err in 0.0f64..20.0) {
        prop_assert!((accuracy(r, r) - 1.0).abs() < 1e-12);
        let over = accuracy(r + err, r);
        let under = accuracy(r - err, r);
        prop_assert!((over - under).abs() < 1e-9);
        prop_assert!(over <= 1.0 + 1e-12);
        let worse = accuracy(r + err + 1.0, r);
        prop_assert!(worse <= over);
    }

    /// The link budget is monotone: more distance or blockage never helps.
    #[test]
    fn link_budget_monotonicity(
        d in 0.5f64..10.0,
        extra in 0.1f64..3.0,
        blockage in 0.0f64..20.0,
    ) {
        let cfg = LinkConfig::paper_default();
        let near = LinkBudget::evaluate(&cfg, d, 0.3276, 8.5, blockage, 0.0);
        let far = LinkBudget::evaluate(&cfg, d + extra, 0.3276, 8.5, blockage, 0.0);
        prop_assert!(far.forward_margin <= near.forward_margin);
        prop_assert!(far.read_probability(&cfg) <= near.read_probability(&cfg) + 1e-12);
        let blocked = LinkBudget::evaluate(&cfg, d, 0.3276, 8.5, blockage + 5.0, 0.0);
        prop_assert!(blocked.forward_margin < near.forward_margin);
    }

    /// Phase of Eq. 1 stays in the principal range and is λ/2-periodic in
    /// distance.
    #[test]
    fn phase_model_periodicity(d in 0.1f64..20.0, offset in 0.0f64..6.28) {
        let lambda = 0.3276;
        let p = rfchannel::observation::ideal_phase(d, lambda, offset);
        prop_assert!((0.0..2.0 * std::f64::consts::PI).contains(&p));
        let q = rfchannel::observation::ideal_phase(d + lambda / 2.0, lambda, offset);
        prop_assert!((p - q).abs() < 1e-6 || (p - q).abs() > 2.0 * std::f64::consts::PI - 1e-6);
    }

    /// Waveform excursions stay in [-1, 1] for any time and rate.
    #[test]
    fn waveform_bounds(t in 0.0f64..1e4, rate in 1.0f64..40.0, seed in any::<u64>()) {
        let w = Waveform::realistic(rate, seed);
        let x = w.excursion(t);
        prop_assert!((-1.001..=1.001).contains(&x));
        let s = Waveform::Sinusoid { rate_bpm: rate };
        prop_assert!(s.excursion(t).abs() <= 1.0 + 1e-12);
    }

    /// Q adaptation never leaves [0, 15].
    #[test]
    fn q_state_bounds(ops in proptest::collection::vec(0u8..3, 0..200)) {
        let mut q = epcgen2::q_algorithm::QState::standard_default();
        for op in ops {
            match op {
                0 => q.on_empty(),
                1 => q.on_single(),
                _ => q.on_collision(),
            }
            prop_assert!((0.0..=15.0).contains(&q.qfp()));
            prop_assert!(q.current_q() <= 15);
        }
    }

    /// Fusion is linear: scaling every increment scales the trajectory.
    #[test]
    fn fusion_linearity(values in proptest::collection::vec(-1.0f64..1.0, 2..50), k in 0.1f64..5.0) {
        use dsp::resample::Sample;
        use tagbreathe::fusion::fuse_displacement;
        let stream: Vec<Sample> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| Sample::new(i as f64 * 0.05, v))
            .collect();
        let scaled: Vec<Sample> = stream.iter().map(|s| Sample::new(s.time, s.value * k)).collect();
        let a = fuse_displacement(&[stream], 0.25, None).unwrap();
        let b = fuse_displacement(&[scaled], 0.25, None).unwrap();
        for (x, y) in a.values().iter().zip(b.values()) {
            prop_assert!((x * k - y).abs() < 1e-9);
        }
    }

    /// The FFT low-pass never increases signal energy.
    #[test]
    fn lowpass_is_contractive(values in proptest::collection::vec(-10.0f64..10.0, 64..256)) {
        use dsp::filter::FftLowPass;
        let f = FftLowPass::breathing_band(16.0).unwrap();
        let out = f.filter(&values);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let in_energy: f64 = values.iter().map(|x| (x - mean) * (x - mean)).sum();
        let out_energy: f64 = out.iter().map(|x| x * x).sum();
        prop_assert!(out_energy <= in_energy * (1.0 + 1e-9));
    }

    /// Hop sequences are permutations for any seed.
    #[test]
    fn hop_sequence_permutation(seed in any::<u64>()) {
        let seq = rfchannel::channel_plan::HopSequence::paper_default(seed);
        let mut order = seq.order().to_vec();
        order.sort_unstable();
        prop_assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    /// MAC conservation: in any inventory round, every participant appears
    /// at most once as Read/Failed, never both, and slot-event offsets are
    /// consistent with the declared duration.
    #[test]
    fn inventory_round_conservation(
        n in 0usize..40,
        p in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        use epcgen2::inventory::{run_round, Participant, SlotEvent, SlotTiming};
        use epcgen2::q_algorithm::QState;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut q = QState::standard_default();
        let participants: Vec<Participant> = (0..n)
            .map(|i| Participant { tag_index: i, read_probability: p })
            .collect();
        let out = run_round(&mut rng, &mut q, &participants, &SlotTiming::paper_default());
        let mut seen = std::collections::HashSet::new();
        let mut last_offset = 0u64;
        for &(offset, event) in &out.events {
            prop_assert!(offset >= last_offset);
            prop_assert!(offset < out.duration_us);
            last_offset = offset;
            match event {
                SlotEvent::Read { tag_index } | SlotEvent::Failed { tag_index } => {
                    prop_assert!(tag_index < n, "phantom tag {tag_index}");
                    prop_assert!(seen.insert(tag_index), "tag {tag_index} singulated twice");
                }
                _ => {}
            }
        }
        // With p = 1, reads + collided tags = n; never more reads than tags.
        prop_assert!(out.reads().count() <= n);
    }

    /// Select masks match exactly the EPCs they were built from.
    #[test]
    fn select_mask_soundness(user in any::<u64>(), tag in any::<u32>(), other in any::<u64>()) {
        use epcgen2::select::SelectMask;
        let mask = SelectMask::for_user(user);
        prop_assert!(mask.matches(Epc96::monitor(user, tag)));
        if other != user {
            prop_assert!(!mask.matches(Epc96::monitor(other, tag)));
        }
    }

    /// LLRP encode/decode round-trips arbitrary reports to within wire
    /// resolution.
    #[test]
    fn llrp_roundtrip(
        t in 0.0f64..1e5,
        user in any::<u64>(),
        tag in any::<u32>(),
        port in 1u8..=4,
        channel in 0u16..50,
        phase in 0.0f64..6.28,
        rssi in -90.0f64..-20.0,
        doppler in -100.0f64..100.0,
    ) {
        use epcgen2::llrp::{decode_ro_access_report, encode_ro_access_report};
        let report = TagReport {
            time_s: t,
            epc: Epc96::monitor(user, tag),
            antenna_port: port,
            channel_index: channel,
            phase_rad: phase,
            rssi_dbm: rssi,
            doppler_hz: doppler,
        };
        let decoded = decode_ro_access_report(&encode_ro_access_report(&[report], 1)).unwrap();
        prop_assert_eq!(decoded.len(), 1);
        let d = decoded[0];
        prop_assert_eq!(d.epc, report.epc);
        prop_assert_eq!(d.antenna_port, report.antenna_port);
        prop_assert_eq!(d.channel_index, report.channel_index);
        prop_assert!((d.time_s - report.time_s).abs() < 1e-6);
        prop_assert!((d.phase_rad - report.phase_rad).abs() <= 2.0 * std::f64::consts::PI / 4096.0);
        prop_assert!((d.rssi_dbm - report.rssi_dbm).abs() <= 0.005 + 1e-9);
        prop_assert!((d.doppler_hz - report.doppler_hz).abs() <= 1.0 / 32.0 + 1e-9);
    }

    /// Gen2 link profiles always derive ordered slot timings.
    #[test]
    fn link_profile_timing_ordering(
        tari in 6.25f64..=25.0,
        blf in 40.0f64..=640.0,
        m_idx in 0usize..4,
    ) {
        use epcgen2::timing::LinkProfile;
        let profile = LinkProfile {
            tari_us: tari,
            blf_khz: blf,
            miller_m: [1u8, 2, 4, 8][m_idx],
            round_overhead_us: 1_000,
        };
        let t = profile.slot_timing();
        prop_assert!(t.empty_us < t.collision_us);
        prop_assert!(t.collision_us < t.success_us);
        prop_assert!(t.failed_us <= t.success_us);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whole-pipeline robustness: arbitrary (valid) single-user scenarios
    /// never panic, and when an estimate is produced it lies in the
    /// physically configured band.
    #[test]
    fn pipeline_never_panics_and_estimates_are_plausible(
        distance in 1.0f64..6.0,
        rate in 6.0f64..20.0,
        n_tags in 1usize..=3,
        seed in 0u64..1000,
    ) {
        let sites = TagSite::ALL[..n_tags].to_vec();
        let subject = Subject::new(
            1,
            Vec3::new(distance, 0.0, 0.0),
            Vec3::new(-1.0, 0.0, 0.0),
            Posture::Sitting,
            Waveform::Sinusoid { rate_bpm: rate },
            sites,
        );
        let scenario = Scenario::builder().subject(subject).build();
        let reader = Reader::new(
            ReaderConfig::paper_default().with_seed(seed),
            vec![Antenna::paper_default(Vec3::new(0.0, 0.0, 1.0))],
        ).unwrap();
        let reports = reader.run(&ScenarioWorld::new(scenario), 40.0);
        let analysis = BreathMonitor::paper_default()
            .analyze(&reports, &EmbeddedIdentity::new([1]));
        if let Some(Ok(user)) = analysis.users.get(&1).map(|r| r.as_ref()) {
            if let Some(bpm) = user.mean_rate_bpm() {
                prop_assert!(bpm > 0.0 && bpm < 45.0, "estimate {bpm} out of band");
            }
        }
    }
}
